"""The production serving tier: concurrency with a failure budget.

The paper's platform (§4.3.1, §4.4) is a shared surface — many teams'
dashboards and ``/ds/`` consumers hit one server at once.  This module
wraps the plain WSGI app (:class:`~repro.server.app.ShareInsightsApp`)
in the machinery that makes that survivable:

* a **fixed worker pool** draining a **bounded admission queue** — when
  the queue is full the request is rejected immediately with ``503`` +
  ``Retry-After`` instead of queuing unboundedly;
* a per-request :class:`~repro.resilience.Deadline` enforced end to end
  — covering queue wait *and* execution, threaded into engine stage
  loops via :func:`~repro.resilience.deadline_scope`, surfacing as
  ``504`` on expiry;
* a **token-bucket rate limiter** per (route, tenant) answering ``429``
  with the exact ``Retry-After`` until the next token;
* an **overload controller** watching queue depth and windowed p95
  request latency (from the shared
  :class:`~repro.observability.metrics.MetricsRegistry`): past the high
  watermark the tier flips to *shed mode* — cheap routes (``/metrics``,
  ``/health``, ``/ready``, cached ``/ds/`` reads) keep serving while
  expensive recomputes (``run``, ``create``/``save``, uncached ad-hoc
  queries) are shed with structured ``503`` bodies, reusing the
  resilience layer's ``degraded: true`` last-known-good path;
* **graceful drain**: stop admitting, finish in-flight work within a
  drain deadline, checkpoint last-known-good endpoint tables through a
  :class:`~repro.resilience.CheckpointStore`.

Lock ordering (see ``docs/serving.md``): serving-tier queue lock →
platform lock → per-dashboard run lock → query-cache lock → metrics
registry lock.  Code only ever acquires locks left-to-right (skipping
levels is fine); nothing calls back into the tier while holding a
deeper lock, so the hierarchy is deadlock-free by construction.
"""

from __future__ import annotations

import math
import socketserver
import threading
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Iterable

from repro.observability.instruments import (
    HTTP_REQUEST_DURATION,
    SERVING_DEADLINE_EXPIRED,
    SERVING_INFLIGHT,
    SERVING_QUEUE_DEPTH,
    SERVING_SHED_STATE,
    record_admission,
    record_rejection,
    record_request,
)
from repro.observability.metrics import Histogram, MetricsRegistry
from repro.resilience import (
    CheckpointStore,
    Clock,
    Deadline,
    WallClock,
    deadline_scope,
)

__all__ = [
    "ServingConfig",
    "ServingTier",
    "ServingServer",
    "TokenBucket",
    "RateLimiter",
    "OverloadController",
    "serve",
]

#: routes answered inline on the I/O thread — liveness must not depend
#: on worker availability, and metrics must stay readable under overload
BYPASS_ROUTES = frozenset({"health", "ready", "metrics"})

#: actions shed outright in overload (full recomputes / mutations);
#: ``/ds/`` reads are *not* here — they degrade to cache/last-known-good
EXPENSIVE_ACTIONS = frozenset(
    {
        "create", "save", "run", "fork", "explorer", "render",
        "profile", "bottlenecks", "select", "diagnose",
    }
)

NORMAL = "normal"
SHED = "shed"


@dataclass
class ServingConfig:
    """Tuning knobs for the serving tier (see docs/serving.md)."""

    #: worker threads executing requests
    workers: int = 4
    #: bounded admission queue length (0 = no queuing: a request is
    #: only admitted when a worker is free)
    queue_depth: int = 16
    #: per-request end-to-end deadline in seconds (queue wait included)
    request_timeout: float = 10.0
    #: sustained requests/second allowed per (route, tenant); None = off
    rate_limit: float | None = None
    #: token-bucket burst size for the rate limiter
    rate_burst: int = 8
    #: seconds granted to in-flight requests during graceful drain
    drain_timeout: float = 5.0
    #: queue fill fraction that trips shed mode
    shed_queue_high: float = 0.8
    #: queue fill fraction below which shed mode can recover
    shed_queue_low: float = 0.25
    #: windowed p95 request latency (seconds) that trips shed mode;
    #: None disables the latency trigger
    shed_p95: float | None = None
    #: minimum seconds between overload-controller evaluations — also
    #: the recovery granularity the load harness measures against
    controller_window: float = 0.25
    #: Retry-After hint (seconds) on 503 rejections
    retry_after: float = 1.0

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        if self.request_timeout <= 0:
            raise ValueError("request_timeout must be positive")


# ---------------------------------------------------------------------------
# rate limiting
# ---------------------------------------------------------------------------


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/second, ``burst`` capacity.

    ``try_acquire`` is non-blocking; on refusal it returns the seconds
    until the next token, which becomes the ``Retry-After`` header.
    """

    __slots__ = ("rate", "burst", "_tokens", "_updated", "_clock", "_lock")

    def __init__(self, rate: float, burst: int, clock: Clock | None = None):
        if rate <= 0:
            raise ValueError("rate must be positive")
        if burst < 1:
            raise ValueError("burst must be >= 1")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock or WallClock()
        self._tokens = self.burst
        self._updated = self._clock.now()
        self._lock = threading.Lock()

    def try_acquire(self) -> tuple[bool, float]:
        """(admitted, seconds-until-next-token)."""
        with self._lock:
            now = self._clock.now()
            self._tokens = min(
                self.burst, self._tokens + (now - self._updated) * self.rate
            )
            self._updated = now
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                return True, 0.0
            return False, (1.0 - self._tokens) / self.rate


class RateLimiter:
    """Per-(route, tenant) token buckets behind one lock."""

    def __init__(
        self, rate: float, burst: int, clock: Clock | None = None
    ):
        self._rate = rate
        self._burst = burst
        self._clock = clock or WallClock()
        self._buckets: dict[tuple[str, str], TokenBucket] = {}
        self._lock = threading.Lock()

    def try_acquire(self, route: str, tenant: str) -> tuple[bool, float]:
        key = (route, tenant)
        with self._lock:
            bucket = self._buckets.get(key)
            if bucket is None:
                bucket = TokenBucket(
                    self._rate, self._burst, clock=self._clock
                )
                self._buckets[key] = bucket
        return bucket.try_acquire()


# ---------------------------------------------------------------------------
# overload controller
# ---------------------------------------------------------------------------


class OverloadController:
    """Queue-depth + windowed-p95 hysteresis between NORMAL and SHED.

    Reads latency straight from the shared registry's
    ``repro_http_request_duration_seconds`` histogram: each evaluation
    merges all route series' bucket counts, diffs them against the
    previous evaluation's snapshot, and interpolates a p95 over *that
    window only* — so the signal decays as soon as load drops, instead
    of averaging over the whole process lifetime.
    """

    def __init__(
        self,
        config: ServingConfig,
        metrics: MetricsRegistry,
        clock: Clock | None = None,
    ):
        self._config = config
        self._metrics = metrics
        self._clock = clock or WallClock()
        self._lock = threading.Lock()
        self._state = NORMAL
        self._last_eval = float("-inf")
        self._last_counts: list[int] | None = None
        self._window_p95 = 0.0
        self.transitions: int = 0
        self._gauge().set(0)

    def _gauge(self):
        return self._metrics.gauge(
            SERVING_SHED_STATE,
            "1 while the overload controller is shedding, else 0",
        )

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    @property
    def shedding(self) -> bool:
        return self.state == SHED

    @property
    def window_p95(self) -> float:
        with self._lock:
            return self._window_p95

    def evaluate(self, queue_depth: int, queue_limit: int) -> str:
        """Re-evaluate at most once per controller window."""
        config = self._config
        with self._lock:
            now = self._clock.now()
            if now - self._last_eval < config.controller_window:
                return self._state
            self._last_eval = now
            self._window_p95 = self._windowed_p95()
            high = max(1, math.ceil(queue_limit * config.shed_queue_high))
            low = math.floor(queue_limit * config.shed_queue_low)
            hot_latency = (
                config.shed_p95 is not None
                and self._window_p95 > config.shed_p95
            )
            if self._state == NORMAL:
                if queue_depth >= high or hot_latency:
                    self._state = SHED
                    self.transitions += 1
                    self._gauge().set(1)
            else:
                if queue_depth <= low and not hot_latency:
                    self._state = NORMAL
                    self.transitions += 1
                    self._gauge().set(0)
            return self._state

    def _windowed_p95(self) -> float:
        """p95 of request latencies observed since the last evaluation."""
        instrument = self._metrics.get(HTTP_REQUEST_DURATION)
        if not isinstance(instrument, Histogram):
            return 0.0
        bounds = instrument.buckets
        merged = [0] * (len(bounds) + 1)
        for _labels, series in instrument.series():
            for i, count in enumerate(series.counts):
                merged[i] += count
        previous = self._last_counts or [0] * len(merged)
        if len(previous) != len(merged):
            previous = [0] * len(merged)
        delta = [m - p for m, p in zip(merged, previous)]
        self._last_counts = merged
        total = sum(delta)
        if total == 0:
            return 0.0
        target = 0.95 * total
        cumulative = 0
        lower = 0.0
        for i, bound in enumerate(bounds):
            in_bucket = delta[i]
            if cumulative + in_bucket >= target and in_bucket:
                fraction = (target - cumulative) / in_bucket
                return lower + fraction * (bound - lower)
            cumulative += in_bucket
            lower = bound
        return bounds[-1]


# ---------------------------------------------------------------------------
# admission queue + jobs
# ---------------------------------------------------------------------------


class _Job:
    """One admitted request travelling from I/O thread to worker."""

    __slots__ = (
        "environ", "deadline", "done", "lock",
        "started", "cancelled", "response",
    )

    def __init__(self, environ: dict[str, Any], deadline: Deadline):
        self.environ = environ
        self.deadline = deadline
        self.done = threading.Event()
        self.lock = threading.Lock()
        self.started = False
        self.cancelled = False
        #: (status, headers, body) once a worker finished it
        self.response: tuple[str, list[tuple[str, str]], bytes] | None = None


class AdmissionQueue:
    """A bounded FIFO of jobs; ``offer`` never blocks."""

    def __init__(self, limit: int):
        if limit < 1:
            raise ValueError("queue limit must be >= 1")
        self.limit = limit
        self._jobs: deque[_Job] = deque()
        self._condition = threading.Condition()

    def offer(self, job: _Job) -> bool:
        """Enqueue unless full; full means *reject now*, never wait."""
        with self._condition:
            if len(self._jobs) >= self.limit:
                return False
            self._jobs.append(job)
            self._condition.notify()
            return True

    def take(self, timeout: float) -> _Job | None:
        with self._condition:
            if not self._jobs:
                self._condition.wait(timeout)
            if self._jobs:
                return self._jobs.popleft()
            return None

    def depth(self) -> int:
        with self._condition:
            return len(self._jobs)


# ---------------------------------------------------------------------------
# the tier
# ---------------------------------------------------------------------------


class ServingTier:
    """WSGI middleware: admission control in front of a worker pool.

    The HTTP server's I/O threads call :meth:`__call__`; the request is
    classified, rate-limited and (possibly) shed, then enqueued for one
    of ``config.workers`` worker threads.  The I/O thread parks on the
    job's completion event for at most the request deadline, so a
    wedged worker converts to a clean ``504`` instead of a hang.
    """

    def __init__(
        self,
        app: Callable,
        config: ServingConfig | None = None,
        metrics: MetricsRegistry | None = None,
        clock: Clock | None = None,
        on_drain: Callable[[], None] | None = None,
    ):
        self.app = app
        self.config = config or ServingConfig()
        platform = getattr(app, "platform", None)
        if metrics is None and platform is not None:
            metrics = platform.observability.metrics
        self.metrics = metrics or MetricsRegistry()
        self._clock = clock or WallClock()
        self._on_drain = on_drain
        self.queue = AdmissionQueue(self.config.queue_depth)
        self.controller = OverloadController(
            self.config, self.metrics, clock=self._clock
        )
        self.limiter = (
            RateLimiter(
                self.config.rate_limit,
                self.config.rate_burst,
                clock=self._clock,
            )
            if self.config.rate_limit
            else None
        )
        self._inflight = 0
        self._inflight_lock = threading.Lock()
        self._idle = threading.Event()
        self._idle.set()
        self._draining = False
        self._stopped = False
        self._workers: list[threading.Thread] = []

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> "ServingTier":
        if self._workers:
            return self
        for index in range(self.config.workers):
            thread = threading.Thread(
                target=self._worker_loop,
                name=f"serving-worker-{index}",
                daemon=True,
            )
            thread.start()
            self._workers.append(thread)
        return self

    @property
    def draining(self) -> bool:
        return self._draining

    def inflight(self) -> int:
        with self._inflight_lock:
            return self._inflight

    def snapshot(self) -> dict[str, Any]:
        """Tier state for ``/ready`` and the load harness."""
        return {
            "workers": self.config.workers,
            "queue_depth": self.queue.depth(),
            "queue_limit": self.config.queue_depth,
            "inflight": self.inflight(),
            "draining": self._draining,
            "state": self.controller.state,
            "window_p95_seconds": round(self.controller.window_p95, 6),
        }

    def drain(self, timeout: float | None = None) -> bool:
        """Graceful shutdown: reject new work, finish in-flight, then
        checkpoint.  Returns True when everything finished in time."""
        self._draining = True
        budget = self.config.drain_timeout if timeout is None else timeout
        deadline = Deadline.after(budget, clock=self._clock)
        drained = False
        while True:
            if self.queue.depth() == 0 and self.inflight() == 0:
                drained = True
                break
            if deadline.expired:
                break
            self._idle.wait(min(0.05, max(deadline.remaining(), 0.001)))
        if self._on_drain is not None:
            self._on_drain()
        self._stopped = True
        for thread in self._workers:
            thread.join(timeout=1.0)
        self._workers = []
        return drained

    close = drain

    # -- WSGI entry --------------------------------------------------------
    def __call__(
        self, environ: dict[str, Any], start_response
    ) -> Iterable[bytes]:
        path = environ.get("PATH_INFO", "/")
        method = environ.get("REQUEST_METHOD", "GET").upper()
        segments = [s for s in path.split("/") if s]
        route = _route_label(path)
        environ["repro.serving"] = self

        # Liveness/metrics bypass the queue entirely: they must answer
        # even when every worker is busy or the tier is draining.
        if segments and segments[0] in BYPASS_ROUTES and method == "GET":
            return self.app(environ, start_response)

        if self._draining or self._stopped:
            record_rejection(self.metrics, route, "draining")
            return _reject(
                start_response, self.metrics, route, method,
                503, "ServerDraining",
                "server is draining; retry against another replica",
                retry_after=self.config.retry_after,
            )

        if self.limiter is not None:
            tenant = _tenant(environ)
            admitted, wait = self.limiter.try_acquire(route, tenant)
            if not admitted:
                record_rejection(self.metrics, route, "rate_limited")
                return _reject(
                    start_response, self.metrics, route, method,
                    429, "RateLimited",
                    f"rate limit exceeded for tenant {tenant!r} "
                    f"on route {route!r}",
                    retry_after=wait,
                )

        state = self.controller.evaluate(
            self.queue.depth(), self.config.queue_depth
        )
        if state == SHED:
            action = segments[2] if len(segments) > 2 else (
                segments[0] if segments else ""
            )
            if action in EXPENSIVE_ACTIONS:
                record_rejection(self.metrics, route, "shed")
                return _reject(
                    start_response, self.metrics, route, method,
                    503, "Overloaded",
                    "server is shedding expensive requests; "
                    "cached reads are still served",
                    retry_after=self.config.retry_after,
                    shed=True,
                )
            # /ds/ reads degrade instead of shedding: the app serves
            # only from the query cache / last-known-good copies.
            environ["repro.serving.shed"] = True

        deadline = Deadline.after(
            self.config.request_timeout, clock=self._clock
        )
        environ["repro.deadline"] = deadline
        job = _Job(environ, deadline)
        if not self.queue.offer(job):
            record_rejection(self.metrics, route, "queue_full")
            return _reject(
                start_response, self.metrics, route, method,
                503, "QueueFull",
                f"admission queue is full "
                f"({self.config.queue_depth} waiting)",
                retry_after=self.config.retry_after,
            )
        record_admission(
            self.metrics, route, self.queue.depth(), self.inflight()
        )

        finished = job.done.wait(deadline.remaining() + 0.05)
        if not finished and job.response is None:
            with job.lock:
                if not job.started:
                    job.cancelled = True
            if job.cancelled or job.response is None:
                self.metrics.counter(
                    SERVING_DEADLINE_EXPIRED,
                    "Requests that blew their deadline in queue or "
                    "on a worker",
                ).inc(route=route)
                return _reject(
                    start_response, self.metrics, route, method,
                    504, "DeadlineExceededError",
                    f"request exceeded its "
                    f"{self.config.request_timeout:.3f}s deadline",
                    retry_after=self.config.retry_after,
                )
        if job.response is None:  # pragma: no cover - defensive
            return _reject(
                start_response, self.metrics, route, method,
                503, "WorkerUnavailable", "no worker produced a response",
                retry_after=self.config.retry_after,
            )
        status, headers, body = job.response
        start_response(status, headers)
        return [body]

    # -- workers -----------------------------------------------------------
    def _worker_loop(self) -> None:
        while not self._stopped:
            job = self.queue.take(timeout=0.05)
            if job is None:
                continue
            self._update_gauges()
            with job.lock:
                if job.cancelled:
                    job.done.set()
                    continue
                if job.deadline.expired:
                    # Expired while queued: answer 504 without running.
                    job.response = _error_response(
                        504, "DeadlineExceededError",
                        f"deadline of {job.deadline.budget:.3f}s "
                        f"expired while queued",
                        retry_after=self.config.retry_after,
                    )
                    job.done.set()
                    continue
                job.started = True
            self._enter()
            try:
                job.response = self._execute(job)
            finally:
                self._exit()
                job.done.set()

    def _execute(
        self, job: _Job
    ) -> tuple[str, list[tuple[str, str]], bytes]:
        captured: dict[str, Any] = {}

        def start_response(status, headers):
            captured["status"] = status
            captured["headers"] = list(headers)

        try:
            with deadline_scope(job.deadline):
                chunks = self.app(job.environ, start_response)
                body = b"".join(chunks)
        except Exception as exc:  # noqa: BLE001 - the tier must answer
            return _error_response(
                500, type(exc).__name__,
                f"unhandled error in worker: {exc}",
            )
        return (
            captured.get("status", "200 OK"),
            captured.get("headers", []),
            body,
        )

    def _enter(self) -> None:
        with self._inflight_lock:
            self._inflight += 1
            self._idle.clear()

    def _exit(self) -> None:
        with self._inflight_lock:
            self._inflight -= 1
            if self._inflight == 0:
                self._idle.set()
        self._update_gauges()

    def _update_gauges(self) -> None:
        self.metrics.gauge(
            SERVING_QUEUE_DEPTH,
            "Requests waiting in the admission queue",
        ).set(self.queue.depth())
        self.metrics.gauge(
            SERVING_INFLIGHT,
            "Requests currently executing on workers",
        ).set(self.inflight())


# ---------------------------------------------------------------------------
# rejection / response helpers
# ---------------------------------------------------------------------------

_REASONS = {
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


def _error_response(
    code: int,
    error_type: str,
    detail: str,
    retry_after: float | None = None,
    **extra: Any,
) -> tuple[str, list[tuple[str, str]], bytes]:
    import json

    payload: dict[str, Any] = {
        "error": {
            "type": error_type,
            "retryable": code in (429, 503, 504),
            "detail": detail,
        }
    }
    payload.update(extra)
    body = json.dumps(payload).encode("utf-8")
    headers = [
        ("Content-Type", "application/json"),
        ("Content-Length", str(len(body))),
    ]
    if retry_after is not None:
        headers.append(
            ("Retry-After", str(max(1, math.ceil(retry_after))))
        )
    status = f"{code} {_REASONS.get(code, 'Error')}"
    return status, headers, body


def _reject(
    start_response,
    metrics: MetricsRegistry,
    route: str,
    method: str,
    code: int,
    error_type: str,
    detail: str,
    retry_after: float | None = None,
    **extra: Any,
) -> Iterable[bytes]:
    """Answer a rejection from the I/O thread, recording it as a
    request so RPS/latency series include intentional sheds."""
    status, headers, body = _error_response(
        code, error_type, detail, retry_after=retry_after, **extra
    )
    record_request(metrics, route, method, status, 0.0)
    start_response(status, headers)
    return [body]


def _tenant(environ: dict[str, Any]) -> str:
    tenant = environ.get("HTTP_X_TENANT")
    if tenant:
        return str(tenant)
    query = environ.get("QUERY_STRING", "")
    if "tenant=" in query:
        from urllib.parse import parse_qsl

        for key, value in parse_qsl(query):
            if key == "tenant":
                return value
    return "anonymous"


def _route_label(path: str) -> str:
    """Kept in sync with ``repro.server.app._route_label`` (imported
    lazily there to avoid a module cycle)."""
    from repro.server.app import _route_label as app_route_label

    return app_route_label(path)


# ---------------------------------------------------------------------------
# the socket server
# ---------------------------------------------------------------------------


class ServingServer:
    """A threaded HTTP server fronting a :class:`ServingTier`.

    Connection threads (one per client, cheap I/O only) parse HTTP and
    call the tier; actual work happens on the tier's fixed worker pool.
    ``port=0`` binds an ephemeral port (read ``server_address``), and
    ``ready_event`` is set once the socket is listening *and* workers
    are started — integration tests start :meth:`serve_forever` in a
    thread and wait on it instead of sleeping.
    """

    def __init__(
        self,
        tier: ServingTier,
        host: str = "127.0.0.1",
        port: int = 8350,
        ready_event: threading.Event | None = None,
    ):
        from wsgiref.simple_server import WSGIServer, WSGIRequestHandler

        class _Handler(WSGIRequestHandler):
            def log_message(self, *args):  # silence per-request stderr
                pass

        class _ThreadedServer(socketserver.ThreadingMixIn, WSGIServer):
            daemon_threads = True
            # A burst beyond the admission queue parks in the kernel
            # backlog; the tier answers each quickly (admit or reject).
            request_queue_size = 128

        self.tier = tier
        self._server = _ThreadedServer((host, port), _Handler)
        self._server.set_app(tier)
        self.ready_event = ready_event or threading.Event()
        self._thread: threading.Thread | None = None

    @property
    def server_address(self) -> tuple[str, int]:
        return self._server.server_address

    def serve_forever(self) -> None:
        self.tier.start()
        self.ready_event.set()
        self._server.serve_forever(poll_interval=0.05)

    def start_background(self) -> "ServingServer":
        """Serve on a daemon thread; returns once the tier is ready."""
        self._thread = threading.Thread(
            target=self.serve_forever, daemon=True, name="serving-accept"
        )
        self._thread.start()
        self.ready_event.wait(5.0)
        return self

    def shutdown(self, drain_timeout: float | None = None) -> bool:
        """Graceful: drain the tier, then stop accepting."""
        drained = self.tier.drain(timeout=drain_timeout)
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None
        return drained

    def __enter__(self) -> "ServingServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


def serve(
    platform,
    host: str = "127.0.0.1",
    port: int = 8350,
    config: ServingConfig | None = None,
    ready_event: threading.Event | None = None,
    checkpoints: CheckpointStore | None = None,
    pool_warm: int = 0,
) -> ServingServer:
    """Build app + tier + threaded server over one platform.

    On drain, every dashboard's last-known-good endpoint tables are
    checkpointed into ``checkpoints`` (one is created if not given) so
    a restarted server can serve degraded reads immediately; a store
    that already holds checkpoints (a :class:`DiskCheckpointStore`
    from a previous process) is restored into the app at startup.

    ``pool_warm > 0`` preforks the platform's warm process pool with
    that many workers **before** the first request — forking from the
    single-threaded startup path is safe, and recompute requests that
    ask for ``?executor=processes`` then pay zero fork cost.  The
    drain hook reaps the pool along with the worker threads, so no
    worker processes or arena files outlive the server.
    """
    from repro.server.app import ShareInsightsApp

    app = ShareInsightsApp(platform)
    store = checkpoints if checkpoints is not None else CheckpointStore()
    if len(store):
        app.restore_last_good(store)
    if pool_warm > 0:
        platform.warm_pool(workers=pool_warm)

    def on_drain() -> None:
        app.checkpoint_last_good(store)
        platform.close_pool()

    tier = ServingTier(
        app,
        config=config,
        metrics=platform.observability.metrics,
        on_drain=on_drain,
    ).start()
    server = ServingServer(
        tier, host=host, port=port, ready_event=ready_event
    )
    server.checkpoints = store
    return server
