"""Platform REST services (paper §4.3–4.4).

A dependency-free WSGI application over a :class:`~repro.platform.Platform`:
dashboard CRUD/run routes, endpoint-data browsing (Figs. 27–28), the
headless data explorer (Fig. 29) and the simplified ad-hoc query language
(Fig. 30).
"""

from repro.server.app import ShareInsightsApp, serve
from repro.server.query_language import AdhocQuery, parse_adhoc_query

__all__ = ["ShareInsightsApp", "serve", "AdhocQuery", "parse_adhoc_query"]
