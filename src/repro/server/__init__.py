"""Platform REST services (paper §4.3–4.4).

A dependency-free WSGI application over a :class:`~repro.platform.Platform`:
dashboard CRUD/run routes, endpoint-data browsing (Figs. 27–28), the
headless data explorer (Fig. 29) and the simplified ad-hoc query language
(Fig. 30) — fronted in production by the serving tier
(:mod:`repro.server.serving`): a fixed worker pool with bounded
admission, per-request deadlines, rate limiting, overload shedding and
graceful drain (see ``docs/serving.md``).
"""

from repro.server.app import ShareInsightsApp, serve
from repro.server.query_language import AdhocQuery, parse_adhoc_query
from repro.server.serving import (
    OverloadController,
    RateLimiter,
    ServingConfig,
    ServingServer,
    ServingTier,
    TokenBucket,
)

__all__ = [
    "ShareInsightsApp",
    "serve",
    "AdhocQuery",
    "parse_adhoc_query",
    "ServingConfig",
    "ServingTier",
    "ServingServer",
    "TokenBucket",
    "RateLimiter",
    "OverloadController",
]
