"""The simplified ad-hoc query language (paper §4.4, Fig. 30).

Queries are URL path segments over an endpoint data object::

    /ds/<dataset>/groupby/<column>/<aggregate>/<column>

e.g. ``/ds/projects/groupby/category/count/project`` returns the count
of projects per category.  We extend the same path style with the other
cube verbs (the paper's "group, filter etc."):

    .../filter/<column>/<op>/<value>     op: eq, ne, lt, le, gt, ge, contains
    .../orderby/<column>/<asc|desc>
    .../limit/<n>
    .../select/<col1,col2,...>

Verbs chain left to right: ``/ds/x/filter/year/ge/2013/groupby/team/sum/
tweets/orderby/tweets/desc/limit/5``.

:meth:`AdhocQuery.canonicalized` is the planner pass over a parsed
chain.  It rewrites a query into a canonical equivalent — normalized
operator spelling, group-key filters pushed ahead of the group-by they
follow, adjacent ``orderby``+``limit`` fused into one top-n step — so
that URL chains which *mean* the same thing execute the same plan and
share one entry in the server's result cache
(:meth:`AdhocQuery.fingerprint` is the cache key).  Every rewrite is
result-preserving byte for byte: pushing a filter on a group *key*
before the group-by touches exactly the rows of the surviving groups
(every row in a group shares the key, and first-seen group order is a
subsequence of row order), and the fused top-n kernel is documented
equivalent to ``sorted(...)[:n]``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from repro.data import Table
from repro.data.schema import ColumnType
from repro.data.kernels import (
    ComparePredicate,
    ContainsPredicate,
    top_n_indices,
)
from repro.errors import QueryError
from repro.tasks.base import TaskContext
from repro.tasks.groupby import GroupByTask, aggregate_names
from repro.tasks.misc import LimitTask, ProjectTask, SortTask

_FILTER_OPS = {
    "eq": "==",
    "ne": "!=",
    "lt": "<",
    "le": "<=",
    "gt": ">",
    "ge": ">=",
    "contains": "contains",
}


@dataclass
class AdhocQuery:
    """A parsed chain of query steps."""

    dataset: str
    steps: list[tuple[str, tuple[str, ...]]] = field(default_factory=list)

    def execute(self, table: Table) -> Table:
        """Run the chain against the endpoint table."""
        context = TaskContext()
        for i, (verb, args) in enumerate(self.steps):
            table = _apply_step(table, verb, args, context, i)
        return table

    def canonicalized(self) -> "AdhocQuery":
        """The planner pass: an equivalent query in canonical form.

        Three result-preserving rewrites:

        1. filter ops are spelled lowercase (``GE`` → ``ge``);
        2. a filter on a group *key* column is pushed ahead of the
           group-by it follows (skipped when the aggregate's output
           column shadows the key, since the filter then reads the
           aggregate);
        3. ``orderby`` immediately followed by ``limit`` fuses into an
           internal ``topn`` step served by the heap kernel.

        Chains that differ only in these spellings canonicalize to the
        same step list and therefore the same :meth:`fingerprint`.
        """
        steps = [_canonical_step(verb, args) for verb, args in self.steps]
        moved = True
        while moved:
            moved = False
            for i in range(len(steps) - 1):
                verb, args = steps[i]
                next_verb, next_args = steps[i + 1]
                if (
                    verb == "groupby"
                    and next_verb == "filter"
                    and next_args[0] == args[0]
                    and _groupby_out_field(args) != args[0]
                ):
                    steps[i], steps[i + 1] = steps[i + 1], steps[i]
                    moved = True
        fused: list[tuple[str, tuple[str, ...]]] = []
        i = 0
        while i < len(steps):
            verb, args = steps[i]
            if (
                verb == "orderby"
                and i + 1 < len(steps)
                and steps[i + 1][0] == "limit"
            ):
                fused.append(
                    ("topn", (args[0], args[1], steps[i + 1][1][0]))
                )
                i += 2
                continue
            fused.append((verb, args))
            i += 1
        return AdhocQuery(dataset=self.dataset, steps=fused)

    def fingerprint(self) -> str:
        """Stable cache key: canonical JSON of the canonicalized chain."""
        canonical = self.canonicalized()
        return json.dumps(
            [canonical.dataset, canonical.steps], sort_keys=True
        )


def _canonical_step(
    verb: str, args: tuple[str, ...]
) -> tuple[str, tuple[str, ...]]:
    if verb == "filter":
        return ("filter", (args[0], args[1].lower(), args[2]))
    if verb == "limit":
        return ("limit", (str(int(args[0])),))
    return (verb, tuple(args))


def _groupby_out_field(args: tuple[str, ...]) -> str:
    # Mirrors _apply_step's out_field choice exactly (including its
    # case-sensitive treatment of "count").
    _group_col, aggregate, apply_col = args
    if aggregate == "count":
        return apply_col
    return f"{aggregate}_{apply_col}"


def parse_adhoc_query(path_segments: list[str]) -> AdhocQuery:
    """Parse the path segments after ``/ds/``.

    The first segment is the dataset name; the rest are verb chains.
    """
    if not path_segments or not path_segments[0]:
        raise QueryError("missing dataset name")
    query = AdhocQuery(dataset=path_segments[0])
    rest = path_segments[1:]
    i = 0
    while i < len(rest):
        verb = rest[i].lower()
        if verb == "groupby":
            args = rest[i + 1: i + 4]
            if len(args) != 3:
                raise QueryError(
                    "groupby needs /groupby/<column>/<aggregate>/<column>"
                )
            if args[1].lower() not in aggregate_names():
                raise QueryError(
                    f"unknown aggregate {args[1]!r}; "
                    f"known: {aggregate_names()}"
                )
            query.steps.append(("groupby", tuple(args)))
            i += 4
        elif verb == "filter":
            args = rest[i + 1: i + 4]
            if len(args) != 3:
                raise QueryError(
                    "filter needs /filter/<column>/<op>/<value>"
                )
            if args[1].lower() not in _FILTER_OPS:
                raise QueryError(
                    f"unknown filter op {args[1]!r}; "
                    f"known: {sorted(_FILTER_OPS)}"
                )
            query.steps.append(("filter", tuple(args)))
            i += 4
        elif verb == "orderby":
            args = rest[i + 1: i + 3]
            if len(args) < 1:
                raise QueryError("orderby needs /orderby/<column>[/<dir>]")
            direction = "asc"
            consumed = 2
            if len(args) == 2 and args[1].lower() in ("asc", "desc"):
                direction = args[1].lower()
                consumed = 3
            query.steps.append(("orderby", (args[0], direction)))
            i += consumed
        elif verb == "limit":
            if i + 1 >= len(rest):
                raise QueryError("limit needs /limit/<n>")
            try:
                n = int(rest[i + 1])
            except ValueError:
                raise QueryError(
                    f"limit must be an integer, got {rest[i + 1]!r}"
                ) from None
            if n < 0:
                # Rejecting here keeps the raw and planner-fused paths
                # uniform: a negative limit used to 422 on the raw chain
                # (LimitTask config error) but 200-with-0-rows via the
                # fused top-n kernel's n <= 0 guard.
                raise QueryError(
                    f"limit must be non-negative, got {n}"
                )
            query.steps.append(("limit", (rest[i + 1],)))
            i += 2
        elif verb == "select":
            if i + 1 >= len(rest):
                raise QueryError("select needs /select/<col1,col2,...>")
            query.steps.append(("select", (rest[i + 1],)))
            i += 2
        else:
            raise QueryError(
                f"unknown query verb {verb!r}; known: groupby, filter, "
                f"orderby, limit, select"
            )
    return query


def _apply_step(
    table: Table,
    verb: str,
    args: tuple[str, ...],
    context: TaskContext,
    index: int,
) -> Table:
    name = f"__adhoc_{index}"
    if verb == "groupby":
        group_col, aggregate, apply_col = args
        _require(table, group_col)
        spec: dict[str, Any] = {"operator": aggregate}
        if aggregate != "count":
            _require(table, apply_col)
            spec["apply_on"] = apply_col
        spec["out_field"] = (
            apply_col if aggregate == "count" else f"{aggregate}_{apply_col}"
        )
        task = GroupByTask(
            name, {"groupby": [group_col], "aggregates": [spec]}
        )
        return task.apply([table], context)
    if verb == "filter":
        column, op, value = args
        _require(table, column)
        typed = _coerce_for_column(table, column, value)
        op_symbol = _FILTER_OPS[op.lower()]
        if op_symbol == "contains":
            return table.filter_rows(
                ContainsPredicate(column, str(typed))
            )
        return table.filter_rows(
            ComparePredicate(column, op_symbol, typed)
        )
    if verb == "topn":
        column, direction, n = args
        _require(table, column)
        kept = top_n_indices(
            table.column(column), direction == "desc", int(n)
        )
        return table.take(kept)
    if verb == "orderby":
        column, direction = args
        _require(table, column)
        task = SortTask(
            name,
            {"orderby_column": [f"{column} {direction.upper()}"]},
        )
        return task.apply([table], context)
    if verb == "limit":
        task = LimitTask(name, {"limit": int(args[0])})
        return task.apply([table], context)
    if verb == "select":
        columns = [c.strip() for c in args[0].split(",") if c.strip()]
        for column in columns:
            _require(table, column)
        task = ProjectTask(name, {"columns": columns})
        return task.apply([table], context)
    raise QueryError(f"unknown verb {verb!r}")


def _require(table: Table, column: str) -> None:
    if column not in table.schema:
        raise QueryError(
            f"unknown column {column!r}; dataset has {table.schema.names}"
        )


def _coerce_for_column(table: Table, column: str, value: str) -> Any:
    """Schema-aware filter-value coercion (the ``/ds/`` coercion rules).

    URL segments are always strings; comparing against a typed column
    needs a typed value.  But coercing *unconditionally* corrupts
    string-column filters — ``/filter/zip/eq/02134`` must compare the
    string ``"02134"``, not the integer ``2134``.  The filtered
    column's effective type decides:

    * string column — the raw segment is kept as a string;
    * bool column — ``true``/``false`` parse to booleans;
    * numeric column, or a column whose type cannot be pinned down
      (mixed values, all-null, dates) — the legacy best-effort
      coercion (int, then float, then bool, else string).

    The effective type is the declared schema type when one exists;
    ``ANY`` columns (the DSL is untyped by default) fall back to a scan
    of the column's values.  Pushing a group-key filter ahead of its
    group-by (the planner rewrite) never changes the verdict: the key
    column's distinct values carry exactly the value types of the full
    column.
    """
    kind = _column_kind(table, column)
    if kind == "string":
        return value
    if kind == "bool":
        if value.lower() in ("true", "false"):
            return value.lower() == "true"
        return value
    return _coerce(value)


def _column_kind(table: Table, column: str) -> str:
    """``string`` | ``bool`` | ``numeric`` | ``other`` for one column."""
    declared = table.schema[column].type
    if declared is ColumnType.STRING:
        return "string"
    if declared is ColumnType.BOOL:
        return "bool"
    if declared in (ColumnType.INT, ColumnType.FLOAT):
        return "numeric"
    if declared is not ColumnType.ANY:
        return "other"
    saw_str = saw_bool = saw_num = saw_other = False
    for cell in table.column(column):
        if cell is None:
            continue
        if isinstance(cell, bool):
            saw_bool = True
        elif isinstance(cell, (int, float)):
            saw_num = True
        elif isinstance(cell, str):
            saw_str = True
        else:
            saw_other = True
    if saw_str and not (saw_bool or saw_num or saw_other):
        return "string"
    if saw_bool and not (saw_str or saw_num or saw_other):
        return "bool"
    if saw_num and not (saw_str or saw_bool or saw_other):
        return "numeric"
    return "other"


def _coerce(value: str) -> Any:
    try:
        return int(value)
    except ValueError:
        pass
    try:
        return float(value)
    except ValueError:
        pass
    if value.lower() in ("true", "false"):
        return value.lower() == "true"
    return value
