"""The simplified ad-hoc query language (paper §4.4, Fig. 30).

Queries are URL path segments over an endpoint data object::

    /ds/<dataset>/groupby/<column>/<aggregate>/<column>

e.g. ``/ds/projects/groupby/category/count/project`` returns the count
of projects per category.  We extend the same path style with the other
cube verbs (the paper's "group, filter etc."):

    .../filter/<column>/<op>/<value>     op: eq, ne, lt, le, gt, ge, contains
    .../orderby/<column>/<asc|desc>
    .../limit/<n>
    .../select/<col1,col2,...>

Verbs chain left to right: ``/ds/x/filter/year/ge/2013/groupby/team/sum/
tweets/orderby/tweets/desc/limit/5``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.data import Table
from repro.errors import QueryError
from repro.tasks.base import TaskContext
from repro.tasks.groupby import GroupByTask, aggregate_names
from repro.tasks.misc import LimitTask, ProjectTask, SortTask

_FILTER_OPS = {
    "eq": "==",
    "ne": "!=",
    "lt": "<",
    "le": "<=",
    "gt": ">",
    "ge": ">=",
    "contains": "contains",
}


@dataclass
class AdhocQuery:
    """A parsed chain of query steps."""

    dataset: str
    steps: list[tuple[str, tuple[str, ...]]] = field(default_factory=list)

    def execute(self, table: Table) -> Table:
        """Run the chain against the endpoint table."""
        context = TaskContext()
        for i, (verb, args) in enumerate(self.steps):
            table = _apply_step(table, verb, args, context, i)
        return table


def parse_adhoc_query(path_segments: list[str]) -> AdhocQuery:
    """Parse the path segments after ``/ds/``.

    The first segment is the dataset name; the rest are verb chains.
    """
    if not path_segments or not path_segments[0]:
        raise QueryError("missing dataset name")
    query = AdhocQuery(dataset=path_segments[0])
    rest = path_segments[1:]
    i = 0
    while i < len(rest):
        verb = rest[i].lower()
        if verb == "groupby":
            args = rest[i + 1: i + 4]
            if len(args) != 3:
                raise QueryError(
                    "groupby needs /groupby/<column>/<aggregate>/<column>"
                )
            if args[1].lower() not in aggregate_names():
                raise QueryError(
                    f"unknown aggregate {args[1]!r}; "
                    f"known: {aggregate_names()}"
                )
            query.steps.append(("groupby", tuple(args)))
            i += 4
        elif verb == "filter":
            args = rest[i + 1: i + 4]
            if len(args) != 3:
                raise QueryError(
                    "filter needs /filter/<column>/<op>/<value>"
                )
            if args[1].lower() not in _FILTER_OPS:
                raise QueryError(
                    f"unknown filter op {args[1]!r}; "
                    f"known: {sorted(_FILTER_OPS)}"
                )
            query.steps.append(("filter", tuple(args)))
            i += 4
        elif verb == "orderby":
            args = rest[i + 1: i + 3]
            if len(args) < 1:
                raise QueryError("orderby needs /orderby/<column>[/<dir>]")
            direction = "asc"
            consumed = 2
            if len(args) == 2 and args[1].lower() in ("asc", "desc"):
                direction = args[1].lower()
                consumed = 3
            query.steps.append(("orderby", (args[0], direction)))
            i += consumed
        elif verb == "limit":
            if i + 1 >= len(rest):
                raise QueryError("limit needs /limit/<n>")
            try:
                int(rest[i + 1])
            except ValueError:
                raise QueryError(
                    f"limit must be an integer, got {rest[i + 1]!r}"
                ) from None
            query.steps.append(("limit", (rest[i + 1],)))
            i += 2
        elif verb == "select":
            if i + 1 >= len(rest):
                raise QueryError("select needs /select/<col1,col2,...>")
            query.steps.append(("select", (rest[i + 1],)))
            i += 2
        else:
            raise QueryError(
                f"unknown query verb {verb!r}; known: groupby, filter, "
                f"orderby, limit, select"
            )
    return query


def _apply_step(
    table: Table,
    verb: str,
    args: tuple[str, ...],
    context: TaskContext,
    index: int,
) -> Table:
    name = f"__adhoc_{index}"
    if verb == "groupby":
        group_col, aggregate, apply_col = args
        _require(table, group_col)
        spec: dict[str, Any] = {"operator": aggregate}
        if aggregate != "count":
            _require(table, apply_col)
            spec["apply_on"] = apply_col
        spec["out_field"] = (
            apply_col if aggregate == "count" else f"{aggregate}_{apply_col}"
        )
        task = GroupByTask(
            name, {"groupby": [group_col], "aggregates": [spec]}
        )
        return task.apply([table], context)
    if verb == "filter":
        column, op, value = args
        _require(table, column)
        typed = _coerce(value)
        op_symbol = _FILTER_OPS[op.lower()]
        if op_symbol == "contains":
            return table.filter_rows(
                lambda row: isinstance(row[column], str)
                and str(typed) in row[column]
            )
        from repro.data.expressions import _compare

        return table.filter_rows(
            lambda row: _compare(op_symbol, row[column], typed)
        )
    if verb == "orderby":
        column, direction = args
        _require(table, column)
        task = SortTask(
            name,
            {"orderby_column": [f"{column} {direction.upper()}"]},
        )
        return task.apply([table], context)
    if verb == "limit":
        task = LimitTask(name, {"limit": int(args[0])})
        return task.apply([table], context)
    if verb == "select":
        columns = [c.strip() for c in args[0].split(",") if c.strip()]
        for column in columns:
            _require(table, column)
        task = ProjectTask(name, {"columns": columns})
        return task.apply([table], context)
    raise QueryError(f"unknown verb {verb!r}")


def _require(table: Table, column: str) -> None:
    if column not in table.schema:
        raise QueryError(
            f"unknown column {column!r}; dataset has {table.schema.names}"
        )


def _coerce(value: str) -> Any:
    try:
        return int(value)
    except ValueError:
        pass
    try:
        return float(value)
    except ValueError:
        pass
    if value.lower() in ("true", "false"):
        return value.lower() == "true"
    return value
