"""WSGI REST application (paper §4.3.1, §4.4).

Routes (all relative to the server base path):

=====================================================  =====================
``GET  /dashboards``                                   list dashboards
``POST /dashboards/<name>/create``                     create from flow text
``POST /dashboards/<name>/save``                       save edited flow text
``GET  /dashboards/<name>``                            flow-file text
``POST /dashboards/<name>/run``                        execute flows
``POST /dashboards/<name>/fork/<new>``                 fork a dashboard
``GET  /dashboards/<name>/ds``                         endpoint names (Fig. 27)
``GET  /dashboards/<name>/ds/<dataset>``               endpoint rows (Fig. 28)
``GET  /dashboards/<name>/ds/<dataset>/<query...>``    ad-hoc query (Fig. 30)
``GET  /dashboards/<name>/explorer``                   data explorer (Fig. 29)
``GET  /dashboards/<name>/render``                     dashboard HTML
``GET  /metrics``                                      Prometheus text / JSON
``GET  /trace``                                        retained trace ids
``GET  /trace/<run_id>``                               one trace's spans
``GET  /health``                                       liveness probe
``GET  /ready``                                        readiness + tier state
=====================================================  =====================

Every request runs inside an ``http.request`` span and lands in the
request counters/histograms (see ``docs/observability.md``).

``/ds/`` reads carry an ``X-Endpoint-Version`` header (bumped when a
run or refresh changes the endpoint's table) and accept
``?refresh=incremental|full`` to pull new source rows before the read
— see ``docs/incremental.md`` for the consistency contract.

Every non-2xx response body carries one structured shape —
``{"error": {"type", "retryable", "detail", ...}}`` — so clients branch
on ``type``/``retryable`` instead of parsing prose (contract-tested in
``tests/integration/test_error_contract.py``).

The app is a plain WSGI callable — tests drive it directly, and
:func:`serve` wraps it in the threaded serving tier
(:mod:`repro.server.serving`) for real deployments.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Iterable
from urllib.parse import parse_qsl

from repro.engine.query_cache import QueryResultCache
from repro.engine.scheduler import POOL_MODES
from repro.errors import (
    DeadlineExceededError,
    QueryError,
    ShareInsightsError,
    is_retryable,
)
from repro.observability import record_request
from repro.observability.instruments import (
    DEGRADED_SERVES,
    ENDPOINT_QUERIES,
    SERVING_SHED_SERVES,
)
from repro.platform import Platform
from repro.server.query_language import parse_adhoc_query

StartResponse = Callable[[str, list[tuple[str, str]]], Any]


class ShareInsightsApp:
    """The REST surface over one platform instance.

    Engine and connector failures surface as *structured* error bodies
    (type, retryability, failing task/partition); endpoint reads keep a
    last-known-good copy per dataset and serve it with ``degraded: true``
    when a recompute fails, so consumers see stale-but-usable data
    instead of a hard 422.
    """

    def __init__(self, platform: Platform):
        self.platform = platform
        #: last successfully served endpoint tables, for degraded mode
        self._last_good: dict[tuple[str, str], Any] = {}
        #: shared ad-hoc result cache, keyed by the planner's canonical
        #: query fingerprint and scoped per (dashboard, dataset)
        self.query_cache = QueryResultCache(
            max_entries=256,
            metrics=platform.observability.metrics,
            name="server",
        )
        # Version boundaries are the consistency contract: when a
        # background refresh changes an endpoint, its cached query
        # results and last-known-good copy must die with the old
        # version so /ds/ never serves stale rows against a new one.
        platform.add_refresh_listener(self._on_refresh)

    def _on_refresh(self, name: str, report) -> None:
        """Invalidate per-endpoint caches after a dashboard refresh."""
        for endpoint in report.endpoints_changed:
            self.query_cache.invalidate(scope_prefix=(name, endpoint))
            self._last_good.pop((name, endpoint), None)

    # -- WSGI entry point --------------------------------------------------
    def __call__(
        self, environ: dict[str, Any], start_response: StartResponse
    ) -> Iterable[bytes]:
        method = environ.get("REQUEST_METHOD", "GET").upper()
        path = environ.get("PATH_INFO", "/")
        query = dict(parse_qsl(environ.get("QUERY_STRING", "")))
        obs = self.platform.observability
        extra_headers: list[tuple[str, str]] = []
        with obs.tracer.span(
            "http.request", method=method, path=path
        ) as span:
            try:
                response = self._route(method, path, query, environ)
                # Routes return (status, content_type, body) or, with
                # response headers, (status, content_type, body, headers).
                if len(response) == 4:
                    status, content_type, body, headers = response
                    extra_headers = list(headers)
                else:
                    status, content_type, body = response
            except QueryError as exc:
                status, content_type, body = _error(
                    400, str(exc), error_type="QueryError"
                )
            except DeadlineExceededError as exc:
                status, content_type, body = _error(
                    504, str(exc), error_type="DeadlineExceededError",
                    retryable=True,
                )
            except ShareInsightsError as exc:
                status, content_type, body = _error(
                    422, str(exc), **_failure_detail(exc)
                )
            except Exception as exc:  # noqa: BLE001 - structured 500
                # Bugs must not take the worker down or leak a raw
                # traceback to the wire; they surface as a structured,
                # non-retryable 500 (and in the request metrics).
                status, content_type, body = _error(
                    500, f"unhandled {type(exc).__name__}: {exc}",
                    error_type=type(exc).__name__,
                )
            span.set(status=status.split(" ", 1)[0])
            deadline = environ.get("repro.deadline")
            if deadline is not None:
                span.set(
                    deadline_budget=round(deadline.budget, 6),
                    deadline_remaining=round(deadline.remaining(), 6),
                )
        record_request(
            obs.metrics, _route_label(path), method, status, span.duration
        )
        start_response(
            status,
            [
                ("Content-Type", content_type),
                ("Content-Length", str(len(body))),
                *extra_headers,
            ],
        )
        return [body]

    # -- routing -------------------------------------------------------------
    def _route(
        self,
        method: str,
        path: str,
        query: dict[str, str],
        environ: dict[str, Any],
    ) -> tuple[str, str, bytes]:
        segments = [s for s in path.split("/") if s]
        if not segments:
            return _json({"service": "ShareInsights", "version": "1.0"})
        if segments[0] == "health" and method == "GET":
            return _json({"status": "ok"})
        if segments[0] == "ready" and method == "GET":
            return self._ready(environ)
        if segments[0] == "metrics" and method == "GET":
            return self._metrics(query, environ)
        if segments[0] == "trace" and method == "GET":
            return self._trace(segments[1:])
        if segments[0] != "dashboards":
            return _error(404, f"unknown path {path!r}")
        if len(segments) == 1:
            return _json({"dashboards": self.platform.dashboard_names()})
        name = segments[1]
        rest = segments[2:]

        if not rest:
            if method == "GET":
                return _text(self.platform.repository.read(name))
            return _error(405, "use POST .../create or .../save")
        action = rest[0]

        if action == "create" and method == "POST":
            source = _read_body(environ)
            self.platform.create_dashboard(name, source)
            self.query_cache.invalidate(scope_prefix=(name,))
            return _json({"created": name}, status="201 Created")
        if action == "save" and method == "POST":
            source = _read_body(environ)
            self.platform.save_dashboard(name, source)
            self.query_cache.invalidate(scope_prefix=(name,))
            return _json({"saved": name})
        if action == "run" and method == "POST":
            self.query_cache.invalidate(scope_prefix=(name,))
            raw_parallelism = query.get("parallelism", "1")
            try:
                parallelism = int(raw_parallelism)
                if parallelism < 1:
                    raise ValueError
            except ValueError:
                return _error(
                    400,
                    f"parallelism must be a positive integer, "
                    f"got {raw_parallelism!r}",
                )
            executor = str(query.get("executor", "threads")).lower()
            if executor not in ("threads", "processes"):
                return _error(
                    400,
                    f"executor must be 'threads' or 'processes', "
                    f"got {query.get('executor')!r}",
                )
            pool = str(query.get("pool", "auto")).lower()
            if pool not in POOL_MODES:
                return _error(
                    400,
                    f"pool must be one of {', '.join(POOL_MODES)}, "
                    f"got {query.get('pool')!r}",
                )
            raw_small = query.get("small_job_bytes")
            small_job_bytes = None
            if raw_small is not None:
                try:
                    small_job_bytes = int(raw_small)
                    if small_job_bytes < 0:
                        raise ValueError
                except ValueError:
                    return _error(
                        400,
                        f"small_job_bytes must be a non-negative "
                        f"integer, got {raw_small!r}",
                    )
            report = self.platform.run_dashboard(
                name,
                engine=query.get("engine"),
                fault_profile=query.get("fault_profile"),
                parallelism=parallelism,
                executor=executor,
                pool=pool,
                small_job_bytes=small_job_bytes,
            )
            payload = {
                "dashboard": name,
                "engine": report.engine,
                "seconds": round(report.seconds, 6),
                "rows_produced": report.rows_produced,
                "endpoints": report.endpoints,
                "published": report.published,
            }
            if report.attempts:
                payload["resilience"] = {
                    "attempts": report.attempts,
                    "retried_partitions": report.retried_partitions,
                    "speculative_wins": report.speculative_wins,
                    "recovered_stages": report.recovered_stages,
                }
            return _json(payload)
        if action == "fork" and method == "POST" and len(rest) == 2:
            self.platform.fork_dashboard(name, rest[1])
            return _json({"forked": rest[1], "from": name},
                         status="201 Created")
        if action == "ds":
            return self._route_ds(name, rest[1:], query, environ)
        if action == "explorer" and method == "GET":
            return self._explorer(name, query)
        if action == "widgets" and method == "GET" and len(rest) == 2:
            dashboard = self.platform.get_dashboard(name)
            view = dashboard.widget_view(rest[1])
            return _json(
                {
                    "widget": view.widget,
                    "type": view.type_name,
                    "payload": view.payload,
                    "text": view.text,
                }
            )
        if action == "select" and method == "POST" and len(rest) == 2:
            return self._select(name, rest[1], environ)
        if action == "diagnose" and method == "POST":
            return self._diagnose(_read_body(environ))
        if action == "profile" and method == "GET":
            return self._profile(name, query)
        if action == "bottlenecks" and method == "GET":
            dashboard = self.platform.get_dashboard(name)
            return _text(dashboard.bottleneck_report())
        if action == "edit" and method == "GET":
            return self._editor(name)
        if action == "history" and method == "GET":
            commits = self.platform.repository.history(name)
            return _json(
                {
                    "dashboard": name,
                    "commits": [
                        {
                            "id": c.id,
                            "message": c.message,
                            "author": c.author,
                            "dashboard": c.dashboard,
                            "parents": list(c.parents),
                        }
                        for c in commits
                    ],
                }
            )
        if action == "render" and method == "GET":
            dashboard = self.platform.get_dashboard(name)
            view = dashboard.render()
            # Data-processing-mode dashboards have no layout/HTML; show
            # the text summary instead of a blank page.
            return _html(view.html or f"<pre>{view.text}</pre>")
        return _error(404, f"unknown action {action!r}")

    # -- observability (docs/observability.md) -------------------------------
    def _metrics(
        self, query: dict[str, str], environ: dict[str, Any]
    ) -> tuple[str, str, bytes]:
        """The metrics registry: Prometheus text by default, JSON on
        ``?format=json`` or an ``Accept: application/json`` header."""
        registry = self.platform.observability.metrics
        accept = environ.get("HTTP_ACCEPT", "")
        fmt = query.get("format")
        if fmt == "json" or (fmt is None and "application/json" in accept):
            return _json({"metrics": registry.as_dict()})
        if fmt not in (None, "prometheus", "text"):
            return _error(400, f"unknown metrics format {fmt!r}")
        return (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            registry.to_prometheus().encode("utf-8"),
        )

    def _trace(self, segments: list[str]) -> tuple[str, str, bytes]:
        """List retained traces, or dump one trace's spans as JSON."""
        tracer = self.platform.observability.tracer
        if not segments:
            return _json({"traces": tracer.trace_ids()})
        run_id = segments[0]
        spans = tracer.trace(run_id)
        if not spans:
            return _error(
                404,
                f"no trace {run_id!r}; retained: {tracer.trace_ids()}",
            )
        return _json(
            {
                "trace_id": run_id,
                "spans": [span.to_dict() for span in spans],
            }
        )

    # -- health / readiness ----------------------------------------------
    def _ready(self, environ: dict[str, Any]) -> tuple[str, str, bytes]:
        """Readiness: drain state, serving-tier snapshot, breaker
        summary, dashboard count.  ``503`` while draining, else 200."""
        tier = environ.get("repro.serving")
        serving = tier.snapshot() if tier is not None else None
        draining = bool(serving and serving.get("draining"))
        payload = {
            "ready": not draining,
            "draining": draining,
            "dashboards": len(self.platform.dashboards),
            "serving": serving,
            "breakers": self.breaker_summary(),
        }
        if draining:
            body = json.dumps(payload, default=str).encode("utf-8")
            return "503 Service Unavailable", "application/json", body
        return _json(payload)

    def breaker_summary(self) -> dict[str, str]:
        """Per-host circuit-breaker states across registered connectors
        (empty when no connector has breaking enabled)."""
        summary: dict[str, str] = {}
        connectors = getattr(self.platform.connectors, "_connectors", {})
        for protocol, connector in sorted(connectors.items()):
            breakers = getattr(connector, "_breakers", None)
            if not breakers:
                continue
            for host, breaker in sorted(breakers.items()):
                summary[f"{protocol}://{host}"] = breaker.state
        return summary

    def checkpoint_last_good(self, store) -> list[str]:
        """Drain hook: snapshot last-known-good endpoint tables into a
        :class:`~repro.resilience.CheckpointStore` so a restarted server
        can serve degraded reads immediately."""
        names = []
        for (dashboard, dataset), table in sorted(self._last_good.items()):
            name = f"{dashboard}/{dataset}"
            store.put(name, table)
            names.append(name)
        return names

    def restore_last_good(self, store) -> list[str]:
        """Startup hook: adopt checkpointed last-known-good tables.

        The inverse of :meth:`checkpoint_last_good` — a server started
        against a :class:`~repro.resilience.DiskCheckpointStore` that a
        previous process drained into resumes degraded serving instead
        of starting empty.  Keys already populated by live runs win
        over checkpoints; malformed names are skipped.
        """
        restored = []
        for name in store.names():
            dashboard, sep, dataset = name.partition("/")
            if not sep or not dashboard or not dataset:
                continue
            key = (dashboard, dataset)
            if key in self._last_good:
                continue
            try:
                self._last_good[key] = store.get(name)
            except Exception:
                continue
            restored.append(name)
        return restored

    # -- endpoint data (Figs. 27, 28, 30) ------------------------------------
    def _route_ds(
        self,
        name: str,
        segments: list[str],
        query: dict[str, str],
        environ: dict[str, Any] | None = None,
    ) -> tuple[str, str, bytes] | tuple[
        str, str, bytes, list[tuple[str, str]]
    ]:
        dashboard = self.platform.get_dashboard(name)
        if not segments:
            return _json({"endpoints": dashboard.endpoint_names()})
        # ``?refresh=`` pulls new source rows before the read:
        # incremental by default, ``full`` forces a complete re-run.
        if "refresh" in query:
            mode = query["refresh"].strip().lower()
            if mode in ("", "1", "true", "incremental"):
                incremental = True
            elif mode == "full":
                incremental = False
            else:
                raise QueryError(
                    f"refresh must be 'incremental' or 'full', "
                    f"got {query['refresh']!r}"
                )
            self.platform.refresh_dashboard(
                name, incremental=incremental
            )
        # The planner canonicalizes the chain before execution, so
        # equivalent URL spellings run the same plan and share one
        # cache entry.
        adhoc = parse_adhoc_query(segments).canonicalized()
        obs = self.platform.observability
        obs.metrics.counter(
            ENDPOINT_QUERIES, "Endpoint dataset reads and ad-hoc queries"
        ).inc(dashboard=name, dataset=adhoc.dataset)
        shed = bool(environ and environ.get("repro.serving.shed"))
        if shed:
            return self._route_ds_shed(name, adhoc, query, obs)
        cache_key = (name, adhoc.dataset)
        degraded_error: str | None = None
        try:
            table = dashboard.endpoint(adhoc.dataset)
            self._last_good[cache_key] = table
        except ShareInsightsError as exc:
            # Recompute/fetch failed: fall back to the last-known-good
            # copy (marked degraded) rather than failing the read.
            table = self._last_good.get(cache_key)
            if table is None:
                raise
            degraded_error = str(exc)
            obs.metrics.counter(
                DEGRADED_SERVES,
                "Endpoint reads served from the last-known-good copy",
            ).inc(dashboard=name, dataset=adhoc.dataset)
        scope = (name, adhoc.dataset)
        fingerprint = adhoc.fingerprint()
        with obs.tracer.span(
            "query.eval", dataset=adhoc.dataset, steps=len(adhoc.steps)
        ) as eval_span:
            # The entry pins the endpoint table object it was computed
            # from, so a recomputed endpoint can never serve stale rows
            # even if an invalidation was missed.
            cached = self.query_cache.get(scope, fingerprint, source=table)
            if cached is not None:
                eval_span.set(cached=True)
                table = cached
            else:
                source = table
                table = adhoc.execute(table)
                self.query_cache.put(
                    scope, fingerprint, table, source=source
                )
            eval_span.set(rows_out=table.num_rows)
        limit = int(query.get("limit", 1000))
        offset = int(query.get("offset", 0))
        # Materialize only the requested page: slice the row window
        # first (list-slice semantics, negative offsets included), then
        # encode those rows straight from the columns — the full table
        # is never converted to records.
        window = range(table.num_rows)[offset: offset + limit]
        page = table.take(window)
        self.platform._log(
            "query",
            name,
            {
                "dataset": adhoc.dataset,
                "steps": len(adhoc.steps),
                "degraded": degraded_error is not None,
            },
        )
        head = json.dumps(
            {
                "dataset": adhoc.dataset,
                "columns": table.schema.names,
                "total_rows": table.num_rows,
            },
            default=str,
        )
        body = head[:-1] + ', "rows": ' + page.to_json_records()
        if degraded_error is not None:
            body += ', "degraded": true, "error": ' + json.dumps(
                degraded_error
            )
        body += "}"
        # The version header lets clients detect refresh boundaries:
        # it bumps exactly when a run/refresh changes this endpoint.
        headers = [(
            "X-Endpoint-Version",
            str(dashboard.endpoint_version(adhoc.dataset)),
        )]
        return "200 OK", "application/json", body.encode("utf-8"), headers

    def _route_ds_shed(
        self, name: str, adhoc, query: dict[str, str], obs
    ) -> tuple[str, str, bytes] | tuple[
        str, str, bytes, list[tuple[str, str]]
    ]:
        """Overload path: serve ``/ds/`` reads without any recompute.

        Only already-materialized data is touched — the last-known-good
        copy (or the dashboard's materialized table) plus the query
        cache.  Responses are marked ``degraded: true`` (+ ``shed``)
        per the resilience contract; with nothing cached the read is
        shed with a structured 503 instead of queueing a recompute.
        """
        dashboard = self.platform.get_dashboard(name)
        table = self._last_good.get((name, adhoc.dataset))
        if table is None:
            table = dashboard._materialized.get(adhoc.dataset)
        if table is None:
            return _error(
                503,
                f"server is shedding load and no cached copy of "
                f"{adhoc.dataset!r} exists; retry shortly",
                error_type="Overloaded",
                retryable=True,
                shed=True,
            )
        scope = (name, adhoc.dataset)
        fingerprint = adhoc.fingerprint()
        cached = self.query_cache.get(scope, fingerprint, source=table)
        if cached is not None:
            table_out = cached
        else:
            # Query evaluation over an in-memory table is columnar-
            # kernel cheap; what shed mode avoids is the endpoint
            # recompute/fetch, which never happens on this path.
            table_out = adhoc.execute(table)
            self.query_cache.put(
                scope, fingerprint, table_out, source=table
            )
        obs.metrics.counter(
            SERVING_SHED_SERVES,
            "Endpoint reads served from cache while shedding",
        ).inc(dashboard=name, dataset=adhoc.dataset)
        obs.metrics.counter(
            DEGRADED_SERVES,
            "Endpoint reads served from the last-known-good copy",
        ).inc(dashboard=name, dataset=adhoc.dataset)
        limit = int(query.get("limit", 1000))
        offset = int(query.get("offset", 0))
        window = range(table_out.num_rows)[offset: offset + limit]
        page = table_out.take(window)
        head = json.dumps(
            {
                "dataset": adhoc.dataset,
                "columns": table_out.schema.names,
                "total_rows": table_out.num_rows,
            },
            default=str,
        )
        body = (
            head[:-1] + ', "rows": ' + page.to_json_records()
            + ', "degraded": true, "shed": true}'
        )
        headers = [(
            "X-Endpoint-Version",
            str(dashboard.endpoint_version(adhoc.dataset)),
        )]
        return "200 OK", "application/json", body.encode("utf-8"), headers

    # -- data explorer (Fig. 29) -----------------------------------------------
    def _explorer(
        self, name: str, query: dict[str, str]
    ) -> tuple[str, str, bytes]:
        """Run the dashboard headless and show endpoint data as tables."""
        dashboard = self.platform.get_dashboard(name)
        dataset = query.get("ds")
        names = (
            [dataset] if dataset else dashboard.endpoint_names()
        )
        sections = []
        for endpoint_name in names:
            table = dashboard.endpoint(endpoint_name)
            header = "".join(
                f"<th>{column}</th>" for column in table.schema.names
            )
            rows = "".join(
                "<tr>"
                + "".join(
                    f"<td>{'' if v is None else v}</td>" for v in row
                )
                + "</tr>"
                for row in table.head(100).row_tuples()
            )
            sections.append(
                f"<h2>{endpoint_name} ({table.num_rows} rows)</h2>"
                f"<table border='1'><tr>{header}</tr>{rows}</table>"
            )
        html = (
            f"<html><head><title>Data Explorer - {name}</title></head>"
            f"<body><h1>Data Explorer: {name}</h1>"
            f"{''.join(sections)}</body></html>"
        )
        return _html(html)


    # -- dashboard editor (Fig. 26) ---------------------------------------
    def _editor(self, name: str) -> tuple[str, str, bytes]:
        """The web editor page: flow-file text, live diagnostics hook,
        endpoint links — the §4.3.1 browser development surface."""
        source = self.platform.repository.read(name)
        dashboard = self.platform.get_dashboard(name)
        endpoints = "".join(
            f'<li><a href="/dashboards/{name}/ds/{e}">{e}</a></li>'
            for e in dashboard.endpoint_names()
        )
        escaped = (
            source.replace("&", "&amp;").replace("<", "&lt;")
        )
        html = f"""<html><head><title>Edit {name}</title></head>
<body>
<h1>Dashboard editor: {name}</h1>
<div class="toolbar">
  <button onclick="save()">Save</button>
  <button onclick="diagnoseNow()">Validate</button>
  <a href="/dashboards/{name}/render">Preview</a>
  <a href="/dashboards/{name}/explorer">Data explorer</a>
  <a href="/dashboards/{name}/history">History</a>
</div>
<textarea id="flow" rows="40" cols="100">{escaped}</textarea>
<pre id="diagnostics"></pre>
<h2>Endpoint data</h2><ul>{endpoints}</ul>
<script>
async function post(path) {{
  const body = document.getElementById('flow').value;
  const response = await fetch(path, {{method: 'POST', body}});
  return response.json();
}}
async function diagnoseNow() {{
  const result = await post('/dashboards/{name}/diagnose');
  document.getElementById('diagnostics').textContent =
    result.ok ? 'flow file is valid'
              : result.diagnostics.map(
                  d => `${{d.severity}} line ${{d.line}}: ${{d.message}}`
                ).join('\\n');
}}
async function save() {{
  const result = await post('/dashboards/{name}/save');
  document.getElementById('diagnostics').textContent =
    JSON.stringify(result);
}}
</script>
</body></html>"""
        return _html(html)

    # -- interaction over REST (§3.5.1 selections as data) --------------------
    def _select(
        self, name: str, widget: str, environ: dict[str, Any]
    ) -> tuple[str, str, bytes]:
        """Apply a selection gesture: body is JSON with ``values`` or
        ``range`` (and optionally ``column``); an empty body clears."""
        dashboard = self.platform.get_dashboard(name)
        body = _read_body(environ)
        try:
            payload = json.loads(body) if body.strip() else {}
        except json.JSONDecodeError as exc:
            return _error(400, f"selection body is not JSON: {exc}")
        column = payload.get("column")
        values = payload.get("values")
        value_range = payload.get("range")
        if value_range is not None:
            if not isinstance(value_range, list) or len(value_range) != 2:
                return _error(400, "'range' must be a [low, high] pair")
            dashboard.select(
                widget, column=column,
                value_range=(value_range[0], value_range[1]),
            )
        else:
            dashboard.select(widget, column=column, values=values)
        self.platform._log(
            "select", name, {"widget": widget}, ""
        )
        return _json({"selected": widget, "dashboard": name})

    # -- §6 tooling ------------------------------------------------------------
    def _diagnose(self, source: str) -> tuple[str, str, bytes]:
        """Editor support: pin-pointed diagnostics for flow-file text."""
        from repro.dsl.diagnostics import diagnose

        report = diagnose(
            source,
            task_registry=self.platform.tasks,
            catalog_schemas=self.platform.catalog.schemas(),
        )
        return _json(
            {
                "ok": report.ok,
                "diagnostics": [
                    {
                        "severity": d.severity,
                        "line": d.line,
                        "entry": d.entry,
                        "message": d.message,
                    }
                    for d in report.diagnostics
                ],
            }
        )

    def _profile(
        self, name: str, query: dict[str, str]
    ) -> tuple[str, str, bytes]:
        """Column statistics of materialized data objects (§6
        meta-dashboards; the raw numbers behind them)."""
        from repro.dashboard.profiler import profile_table

        dashboard = self.platform.get_dashboard(name)
        target = query.get("ds")
        names = (
            [target] if target else sorted(dashboard._materialized)
        )
        payload: dict[str, Any] = {}
        for object_name in names:
            table = dashboard.materialized(object_name)
            payload[object_name] = [
                p.as_row() for p in profile_table(table)
            ]
        return _json({"dashboard": name, "profiles": payload})


# ---------------------------------------------------------------------------
# response helpers
# ---------------------------------------------------------------------------


def _route_label(path: str) -> str:
    """A low-cardinality route label for request metrics.

    ``/dashboards/<name>/ds/...`` → ``dashboards/ds``: the dashboard
    name and query segments never become label values.
    """
    segments = [s for s in path.split("/") if s]
    if not segments:
        return "root"
    if segments[0] != "dashboards":
        return segments[0]
    if len(segments) < 3:
        return "dashboards"
    return f"dashboards/{segments[2]}"


def _json(
    payload: dict[str, Any], status: str = "200 OK"
) -> tuple[str, str, bytes]:
    return (
        status,
        "application/json",
        json.dumps(payload, default=str).encode("utf-8"),
    )


def _text(text: str, status: str = "200 OK") -> tuple[str, str, bytes]:
    return status, "text/plain; charset=utf-8", text.encode("utf-8")


def _html(html: str, status: str = "200 OK") -> tuple[str, str, bytes]:
    return status, "text/html; charset=utf-8", html.encode("utf-8")


def _failure_detail(exc: ShareInsightsError) -> dict[str, Any]:
    """Structured failure fields for engine/connector errors."""
    detail: dict[str, Any] = {
        "error_type": type(exc).__name__,
        "retryable": is_retryable(exc),
    }
    task = getattr(exc, "task", None)
    partition = getattr(exc, "partition", None)
    if task is not None:
        detail["task"] = task
    if partition is not None:
        detail["partition"] = partition
    return detail


_STATUS_REASONS = {
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

_DEFAULT_ERROR_TYPES = {
    400: "BadRequest",
    404: "NotFound",
    405: "MethodNotAllowed",
    422: "UnprocessableEntity",
    429: "RateLimited",
    500: "InternalError",
    503: "Overloaded",
    504: "DeadlineExceededError",
}


def _error(
    code: int,
    message: str,
    error_type: str | None = None,
    retryable: bool = False,
    **detail: Any,
) -> tuple[str, str, bytes]:
    """One non-2xx body shape for the whole surface.

    ``{"error": {"type", "retryable", "detail", ...}}`` — extra keys
    (``task``, ``partition``, ``shed``…) land inside the error object.
    Contract-tested across every route in
    ``tests/integration/test_error_contract.py``.
    """
    status = f"{code} {_STATUS_REASONS.get(code, 'Error')}"
    error: dict[str, Any] = {
        "type": detail.pop("error_type", None)
        or error_type
        or _DEFAULT_ERROR_TYPES.get(code, "Error"),
        "retryable": bool(detail.pop("retryable", retryable)),
        "detail": message,
    }
    error.update(detail)
    return (
        status,
        "application/json",
        json.dumps({"error": error}).encode("utf-8"),
    )


def _read_body(environ: dict[str, Any]) -> str:
    try:
        length = int(environ.get("CONTENT_LENGTH") or 0)
    except ValueError:
        length = 0
    stream = environ.get("wsgi.input")
    if stream is None or length == 0:
        return ""
    return stream.read(length).decode("utf-8")


def serve(
    platform: Platform,
    host: str = "127.0.0.1",
    port: int = 8350,
    config=None,
    ready_event=None,
    checkpoints=None,
    pool_warm: int = 0,
):
    """Serve the app behind the production serving tier.

    Returns a :class:`~repro.server.serving.ServingServer`: ``port=0``
    binds an ephemeral port (read ``server_address``), ``ready_event``
    is set once the listener and worker pool are up, and
    ``shutdown()`` drains gracefully (checkpointing last-known-good
    endpoint tables into ``checkpoints``).  A ``checkpoints`` store
    that already holds tables (a ``DiskCheckpointStore`` a previous
    incarnation drained into) is restored at startup; ``pool_warm``
    pre-forks that many warm process-pool workers before the first
    request.
    """
    from repro.server.serving import serve as _serve_tier

    return _serve_tier(
        platform,
        host=host,
        port=port,
        config=config,
        ready_event=ready_event,
        checkpoints=checkpoints,
        pool_warm=pool_warm,
    )
