"""Widget section implementation (paper §3.5).

Widgets bind endpoint data to visual marks.  Every widget splits its
configuration into *data attributes* (bound to source columns) and
*visual attributes* (everything else); selections on a widget are data
(§3.5.1 treats widgets as data objects), which is what interaction flows
filter by.
"""

from repro.widgets.base import Widget, WidgetView
from repro.widgets.registry import WidgetRegistry, default_widget_registry
from repro.widgets.layout import GridRenderer

__all__ = [
    "Widget",
    "WidgetView",
    "WidgetRegistry",
    "default_widget_registry",
    "GridRenderer",
]
