"""Widget registry (extension services, paper §4.2, "Widgets").

Maps flow-file ``type:`` values (case-insensitive) to widget classes.
"Commercial and open source widgets can easily be made part of the
platform by implementing this interface" — :meth:`WidgetRegistry.register`
is that interface; registered widgets are indistinguishable from
built-ins (the Apache dashboard's weight-slider panel is exactly such a
custom widget, §3.5).
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.errors import ExtensionError, WidgetError
from repro.widgets.base import Widget
from repro.widgets.charts import (
    BarChart,
    BubbleChart,
    DataGrid,
    HtmlWidget,
    LineChart,
    ListWidget,
    MapMarker,
    PieChart,
    Slider,
    Streamgraph,
    WordCloud,
)
from repro.widgets.layout import LayoutWidget, TabLayout

_BUILTIN_WIDGETS: list[type[Widget]] = [
    BubbleChart,
    WordCloud,
    Streamgraph,
    LineChart,
    BarChart,
    PieChart,
    Slider,
    ListWidget,
    MapMarker,
    HtmlWidget,
    DataGrid,
    LayoutWidget,
    TabLayout,
]


class WidgetRegistry:
    """Widget ``type`` → class lookup with extension registration."""

    def __init__(self, include_builtins: bool = True):
        self._types: dict[str, type[Widget]] = {}
        if include_builtins:
            for cls in _BUILTIN_WIDGETS:
                self.register(cls)

    def register(self, cls: type[Widget], replace: bool = False) -> None:
        if not cls.type_name:
            raise ExtensionError(
                f"widget class {cls.__name__} has no type_name"
            )
        key = cls.type_name.lower()
        if key in self._types and not replace:
            raise ExtensionError(
                f"widget type {cls.type_name!r} already registered"
            )
        self._types[key] = cls

    def type_names(self) -> list[str]:
        return sorted(self._types)

    def __contains__(self, type_name: object) -> bool:
        return (
            isinstance(type_name, str)
            and type_name.lower() in self._types
        )

    def create(
        self, name: str, type_name: str, config: Mapping[str, Any]
    ) -> Widget:
        cls = self._types.get(type_name.lower())
        if cls is None:
            raise WidgetError(
                f"widget {name!r}: unknown type {type_name!r}; "
                f"known: {self.type_names()}"
            )
        return cls(name, config)


def default_widget_registry() -> WidgetRegistry:
    """A registry with all built-in widget types."""
    return WidgetRegistry(include_builtins=True)
