"""Layout widgets and the 12-column grid renderer (paper §3.6).

Two widget types support composition: ``Layout`` (a nested grid, used by
Appendix A.2's ``teamtweetstab`` etc.) and ``TabLayout`` (named tabs).
:class:`GridRenderer` renders the dashboard's ``L`` section — and nested
layouts — into HTML and text given the views of the leaf widgets.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

from repro.data import Table
from repro.dsl.ast_nodes import LayoutCell, LayoutSpec
from repro.errors import LayoutError
from repro.widgets.base import Widget, WidgetView, escape

#: resolves a widget name to its rendered view
ViewResolver = Callable[[str], WidgetView]


def _cells_from_config(rows: Any) -> list[list[LayoutCell]]:
    """Parse a sub-layout's ``rows`` config into layout cells."""
    parsed: list[list[LayoutCell]] = []
    for row in rows or []:
        if not isinstance(row, list):
            raise LayoutError(f"sub-layout row must be a list, got {row!r}")
        cells = []
        for cell in row:
            if not isinstance(cell, Mapping) or len(cell) != 1:
                raise LayoutError(
                    f"sub-layout cell must be one span entry, got {cell!r}"
                )
            (span_key, widget), = cell.items()
            span = str(span_key).lower().replace("span", "")
            widget_name = str(widget)
            if widget_name.startswith("W."):
                widget_name = widget_name[2:]
            try:
                cells.append(LayoutCell(span=int(span), widget=widget_name))
            except ValueError:
                raise LayoutError(
                    f"bad span key {span_key!r} in sub-layout"
                ) from None
        parsed.append(cells)
    return parsed


class LayoutWidget(Widget):
    """``type: Layout`` — a nested grid of other widgets."""

    type_name = "Layout"
    data_attributes = ()

    def _validate_config(self) -> None:
        self.cells = _cells_from_config(self.config.get("rows"))
        if not self.cells:
            raise LayoutError(f"layout widget {self.name!r} has no rows")

    def child_names(self) -> list[str]:
        return [cell.widget for row in self.cells for cell in row]

    def render(self, table: Table | None) -> WidgetView:
        # Children are rendered by the grid renderer; standalone render
        # yields a placeholder frame.
        return self._view(
            {"children": self.child_names()},
            f'<div class="sub-layout" data-widget="{escape(self.name)}">'
            f"</div>",
            f"[{self.name}] layout({', '.join(self.child_names())})",
        )

    def render_composite(self, resolve: ViewResolver) -> WidgetView:
        renderer = GridRenderer()
        spec = LayoutSpec(description="", rows=self.cells)
        html, text = renderer.render_rows(spec, resolve)
        return self._view({"children": self.child_names()}, html, text)


class TabLayout(Widget):
    """``type: TabLayout`` — named tabs, each holding a widget."""

    type_name = "TabLayout"
    data_attributes = ()

    def _validate_config(self) -> None:
        tabs = self.config.get("tabs")
        if not isinstance(tabs, list) or not tabs:
            raise LayoutError(
                f"tab layout {self.name!r} needs a 'tabs' list"
            )
        self.tabs: list[tuple[str, str]] = []
        for tab in tabs:
            if not isinstance(tab, Mapping):
                raise LayoutError(f"bad tab entry {tab!r}")
            title = str(tab.get("name", f"tab{len(self.tabs)}"))
            body = str(tab.get("body", ""))
            if body.startswith("W."):
                body = body[2:]
            if not body:
                raise LayoutError(
                    f"tab {title!r} in {self.name!r} has no body widget"
                )
            self.tabs.append((title, body))

    def child_names(self) -> list[str]:
        return [body for _title, body in self.tabs]

    def render(self, table: Table | None) -> WidgetView:
        return self._view(
            {"tabs": [t for t, _b in self.tabs]},
            f'<div class="tab-layout" data-widget="{escape(self.name)}">'
            f"</div>",
            f"[{self.name}] tabs({', '.join(t for t, _b in self.tabs)})",
        )

    def render_composite(self, resolve: ViewResolver) -> WidgetView:
        headers = "".join(
            f'<li class="tab">{escape(title)}</li>'
            for title, _body in self.tabs
        )
        bodies = "".join(
            f'<div class="tab-body" data-tab="{escape(title)}">'
            f"{resolve(body).html}</div>"
            for title, body in self.tabs
        )
        html = (
            f'<div class="tab-layout"><ul class="tab-bar">{headers}</ul>'
            f"{bodies}</div>"
        )
        text_parts = [f"[{self.name}] tabs:"]
        for title, body in self.tabs:
            text_parts.append(f"  <{title}> {resolve(body).text}")
        return self._view(
            {"tabs": [t for t, _b in self.tabs]},
            html,
            "\n".join(text_parts),
        )


class GridRenderer:
    """Renders a :class:`LayoutSpec` into the 12-column grid."""

    def render_rows(
        self, layout: LayoutSpec, resolve: ViewResolver
    ) -> tuple[str, str]:
        """Returns ``(html, text)`` for the grid."""
        html_rows = []
        text_rows = []
        for row in layout.rows:
            cells_html = []
            cells_text = []
            for cell in row:
                view = resolve(cell.widget)
                width_pct = round(cell.span / 12 * 100, 2)
                cells_html.append(
                    f'<div class="cell span{cell.span}" '
                    f'style="width:{width_pct}%">{view.html}</div>'
                )
                cells_text.append(f"({cell.span}/12) {view.text}")
            html_rows.append(
                f'<div class="row">{"".join(cells_html)}</div>'
            )
            text_rows.append(" | ".join(cells_text))
        html = (
            f'<div class="dashboard-grid">{"".join(html_rows)}</div>'
        )
        return html, "\n".join(text_rows)
