"""Built-in chart widgets.

All widget types used by the paper's two dashboards: BubbleChart,
WordCloud, Streamgraph, Slider, List, MapMarker, HTML (Figs. 3, 12, 17,
Appendix A.2) plus the generic Line/Bar/Pie/DataGrid the platform
"comes pre-loaded" with (§3.5).  Each renders to SVG/HTML and to plain
text; payloads carry the structured marks so tests assert on data, not
markup.
"""

from __future__ import annotations

import math
from typing import Any

from repro.data import Table
from repro.errors import WidgetError
from repro.widgets.base import Widget, WidgetView, escape

_SVG_WIDTH = 480
_SVG_HEIGHT = 300


def _scale(values: list[float], out_min: float, out_max: float) -> list[float]:
    numeric = [v for v in values if v is not None]
    if not numeric:
        return [out_min for _ in values]
    lo, hi = min(numeric), max(numeric)
    if hi == lo:
        mid = (out_min + out_max) / 2
        return [mid for _ in values]
    span = out_max - out_min
    return [
        out_min + span * ((v - lo) / (hi - lo)) if v is not None else out_min
        for v in values
    ]


def _as_float(value: Any) -> float | None:
    if value is None:
        return None
    try:
        return float(value)
    except (TypeError, ValueError):
        return None


class BubbleChart(Widget):
    """Sized, labelled bubbles (the Apache project cloud, Fig. 3)."""

    type_name = "BubbleChart"
    data_attributes = ("text", "size", "legend_text")
    selection_attribute = "text"

    def _validate_config(self) -> None:
        self.required_bindings("text", "size")

    def render(self, table: Table | None) -> WidgetView:
        if table is None:
            return self._view({"bubbles": []}, "", f"[{self.name}] no data")
        labels = self.column("text", table)
        sizes = [_as_float(v) or 0.0 for v in self.column("size", table)]
        legends = (
            self.column("legend_text", table)
            if "legend_text" in self.bindings
            else [None] * len(labels)
        )
        radii = _scale([math.sqrt(max(s, 0.0)) for s in sizes], 8, 40)
        bubbles = [
            {"text": t, "size": s, "legend": g, "radius": round(r, 1)}
            for t, s, g, r in zip(labels, sizes, legends, radii)
        ]
        selected = set(self.selection.values.get("text", []))
        # Simple grid packing: bubbles on a square lattice.
        per_row = max(1, int(math.sqrt(len(bubbles)) + 0.5))
        circles = []
        for i, bubble in enumerate(bubbles):
            cx = 50 + (i % per_row) * (_SVG_WIDTH - 80) / max(per_row - 1, 1)
            cy = 50 + (i // per_row) * 90
            stroke = (
                ' stroke="#333" stroke-width="3"'
                if bubble["text"] in selected
                else ""
            )
            circles.append(
                f'<circle cx="{cx:.0f}" cy="{cy:.0f}" '
                f'r="{bubble["radius"]}" fill="#69c"{stroke}>'
                f"<title>{escape(bubble['text'])}: {bubble['size']}"
                f"</title></circle>"
                f'<text x="{cx:.0f}" y="{cy:.0f}" text-anchor="middle" '
                f'font-size="10">{escape(bubble["text"])}</text>'
            )
        height = 50 + 90 * ((len(bubbles) - 1) // per_row + 1)
        html = (
            f'<svg class="bubble-chart" width="{_SVG_WIDTH}" '
            f'height="{height}">{"".join(circles)}</svg>'
        )
        top = sorted(bubbles, key=lambda b: -b["size"])[:5]
        text = f"[{self.name}] bubbles: " + ", ".join(
            f"{b['text']}({b['size']:g})" for b in top
        )
        return self._view({"bubbles": bubbles}, html, text)


class WordCloud(Widget):
    """Word cloud (tweet words/players/teams, Fig. 17)."""

    type_name = "WordCloud"
    data_attributes = ("text", "size")
    selection_attribute = "text"

    def _validate_config(self) -> None:
        self.required_bindings("text", "size")

    def render(self, table: Table | None) -> WidgetView:
        if table is None:
            return self._view({"words": []}, "", f"[{self.name}] no data")
        words = self.column("text", table)
        sizes = [_as_float(v) or 0.0 for v in self.column("size", table)]
        fonts = _scale(sizes, 10, 42)
        items = [
            {"text": w, "size": s, "font": round(f, 1)}
            for w, s, f in zip(words, sizes, fonts)
        ]
        items.sort(key=lambda i: -i["size"])
        spans = "".join(
            f'<span style="font-size:{i["font"]}px" '
            f'title="{i["size"]:g}">{escape(i["text"])}</span> '
            for i in items
        )
        html = f'<div class="word-cloud">{spans}</div>'
        text = f"[{self.name}] words: " + ", ".join(
            f"{i['text']}({i['size']:g})" for i in items[:8]
        )
        return self._view({"words": items}, html, text)


class Streamgraph(Widget):
    """Stacked stream of series over x (relative team tweet volumes)."""

    type_name = "Streamgraph"
    data_attributes = ("x", "y", "serie", "color")

    def _validate_config(self) -> None:
        self.required_bindings("x", "y", "serie")

    def render(self, table: Table | None) -> WidgetView:
        if table is None:
            return self._view({"series": {}}, "", f"[{self.name}] no data")
        xs = self.column("x", table)
        ys = [_as_float(v) or 0.0 for v in self.column("y", table)]
        series = self.column("serie", table)
        colors = (
            self.column("color", table)
            if "color" in self.bindings
            else [None] * len(xs)
        )
        by_series: dict[str, dict[Any, float]] = {}
        series_color: dict[str, Any] = {}
        for x, y, s, c in zip(xs, ys, series, colors):
            by_series.setdefault(str(s), {})[x] = (
                by_series.get(str(s), {}).get(x, 0.0) + y
            )
            if c is not None:
                series_color[str(s)] = c
        domain = sorted({x for x in xs if x is not None})
        # Stacked areas, wiggle-free (baseline at zero).
        palette = ["#4c78a8", "#f58518", "#54a24b", "#e45756", "#72b7b2",
                   "#eeca3b", "#b279a2", "#ff9da6", "#9d755d"]
        stacked: list[str] = []
        baseline = {x: 0.0 for x in domain}
        max_total = max(
            (sum(by_series[s].get(x, 0.0) for s in by_series) for x in domain),
            default=1.0,
        ) or 1.0
        for i, (name, points) in enumerate(sorted(by_series.items())):
            color = series_color.get(name) or palette[i % len(palette)]
            coords_top = []
            coords_bottom = []
            for j, x in enumerate(domain):
                px = 40 + j * (_SVG_WIDTH - 60) / max(len(domain) - 1, 1)
                y0 = baseline[x]
                y1 = y0 + points.get(x, 0.0)
                baseline[x] = y1
                py0 = _SVG_HEIGHT - 20 - (y0 / max_total) * (_SVG_HEIGHT - 40)
                py1 = _SVG_HEIGHT - 20 - (y1 / max_total) * (_SVG_HEIGHT - 40)
                coords_top.append(f"{px:.0f},{py1:.0f}")
                coords_bottom.append(f"{px:.0f},{py0:.0f}")
            path = " ".join(coords_top + list(reversed(coords_bottom)))
            stacked.append(
                f'<polygon points="{path}" fill="{escape(color)}" '
                f'opacity="0.8"><title>{escape(name)}</title></polygon>'
            )
        html = (
            f'<svg class="streamgraph" width="{_SVG_WIDTH}" '
            f'height="{_SVG_HEIGHT}">{"".join(stacked)}</svg>'
        )
        totals = {
            name: sum(points.values()) for name, points in by_series.items()
        }
        text = f"[{self.name}] series totals: " + ", ".join(
            f"{k}={v:g}" for k, v in sorted(totals.items())
        )
        return self._view(
            {
                "series": {k: dict(v) for k, v in by_series.items()},
                "domain": domain,
            },
            html,
            text,
        )


class LineChart(Widget):
    type_name = "Line"
    data_attributes = ("x", "y", "serie")

    def _validate_config(self) -> None:
        self.required_bindings("x", "y")

    def render(self, table: Table | None) -> WidgetView:
        if table is None:
            return self._view({"points": []}, "", f"[{self.name}] no data")
        xs = self.column("x", table)
        ys = [_as_float(v) or 0.0 for v in self.column("y", table)]
        points = [{"x": x, "y": y} for x, y in zip(xs, ys)]
        px = _scale(list(range(len(points))), 40, _SVG_WIDTH - 20)
        py = _scale([-(p["y"]) for p in points], 20, _SVG_HEIGHT - 20)
        polyline = " ".join(f"{x:.0f},{y:.0f}" for x, y in zip(px, py))
        html = (
            f'<svg class="line-chart" width="{_SVG_WIDTH}" '
            f'height="{_SVG_HEIGHT}"><polyline points="{polyline}" '
            f'fill="none" stroke="#4c78a8" stroke-width="2"/></svg>'
        )
        text = f"[{self.name}] {len(points)} points"
        return self._view({"points": points}, html, text)


class BarChart(Widget):
    type_name = "Bar"
    data_attributes = ("x", "y")

    def _validate_config(self) -> None:
        self.required_bindings("x", "y")

    def render(self, table: Table | None) -> WidgetView:
        if table is None:
            return self._view({"bars": []}, "", f"[{self.name}] no data")
        xs = self.column("x", table)
        ys = [_as_float(v) or 0.0 for v in self.column("y", table)]
        bars = [{"x": x, "y": y} for x, y in zip(xs, ys)]
        max_y = max((b["y"] for b in bars), default=1.0) or 1.0
        width = max(8, (_SVG_WIDTH - 60) // max(len(bars), 1))
        rects = []
        for i, bar in enumerate(bars):
            h = (bar["y"] / max_y) * (_SVG_HEIGHT - 60)
            rects.append(
                f'<rect x="{40 + i * width}" '
                f'y="{_SVG_HEIGHT - 30 - h:.0f}" width="{width - 2}" '
                f'height="{h:.0f}" fill="#4c78a8">'
                f"<title>{escape(bar['x'])}: {bar['y']:g}</title></rect>"
            )
        html = (
            f'<svg class="bar-chart" width="{_SVG_WIDTH}" '
            f'height="{_SVG_HEIGHT}">{"".join(rects)}</svg>'
        )
        top = sorted(bars, key=lambda b: -b["y"])[:5]
        text = f"[{self.name}] bars: " + ", ".join(
            f"{b['x']}={b['y']:g}" for b in top
        )
        return self._view({"bars": bars}, html, text)


class PieChart(Widget):
    type_name = "Pie"
    data_attributes = ("label", "value")
    selection_attribute = "label"

    def _validate_config(self) -> None:
        self.required_bindings("label", "value")

    def render(self, table: Table | None) -> WidgetView:
        if table is None:
            return self._view({"wedges": []}, "", f"[{self.name}] no data")
        labels = self.column("label", table)
        values = [_as_float(v) or 0.0 for v in self.column("value", table)]
        total = sum(values) or 1.0
        wedges = [
            {"label": l, "value": v, "fraction": v / total}
            for l, v in zip(labels, values)
        ]
        palette = ["#4c78a8", "#f58518", "#54a24b", "#e45756", "#72b7b2",
                   "#eeca3b", "#b279a2"]
        cx, cy, r = 150, 150, 120
        angle = -math.pi / 2
        paths = []
        for i, wedge in enumerate(wedges):
            sweep = wedge["fraction"] * 2 * math.pi
            x1 = cx + r * math.cos(angle)
            y1 = cy + r * math.sin(angle)
            angle += sweep
            x2 = cx + r * math.cos(angle)
            y2 = cy + r * math.sin(angle)
            large = 1 if sweep > math.pi else 0
            paths.append(
                f'<path d="M{cx},{cy} L{x1:.1f},{y1:.1f} '
                f'A{r},{r} 0 {large} 1 {x2:.1f},{y2:.1f} Z" '
                f'fill="{palette[i % len(palette)]}">'
                f"<title>{escape(wedge['label'])}: "
                f"{wedge['value']:g}</title></path>"
            )
        html = f'<svg class="pie-chart" width="300" height="300">{"".join(paths)}</svg>'
        text = f"[{self.name}] wedges: " + ", ".join(
            f"{w['label']}={w['fraction']:.0%}" for w in wedges[:6]
        )
        return self._view({"wedges": wedges}, html, text)


class Slider(Widget):
    """Range/value slider; static source carries its domain (App. A.2)."""

    type_name = "Slider"
    data_attributes = ("value",)
    selection_attribute = "value"

    def set_domain(self, values: list[Any]) -> None:
        """Install the slider's domain (from a static or data source)."""
        if not values:
            raise WidgetError(f"slider {self.name!r} got an empty domain")
        self._domain = list(values)
        if _truthy(self.config.get("range")) and self.selection.is_empty():
            self.select_range("value", self._domain[0], self._domain[-1])

    @property
    def domain(self) -> list[Any]:
        return list(getattr(self, "_domain", []))

    def render(self, table: Table | None) -> WidgetView:
        if table is not None and "value" in self.bindings:
            self.set_domain(sorted(set(self.column("value", table))))
        domain = self.domain
        selected = self.selection.ranges.get("value")
        lo = selected[0] if selected else (domain[0] if domain else None)
        hi = selected[1] if selected else (domain[-1] if domain else None)
        html = (
            f'<div class="slider" data-widget="{escape(self.name)}">'
            f'<input type="range" min="0" max="{max(len(domain) - 1, 0)}"/>'
            f"<span>{escape(lo)} .. {escape(hi)}</span></div>"
        )
        text = f"[{self.name}] slider {lo} .. {hi}"
        return self._view(
            {"domain": domain, "low": lo, "high": hi}, html, text
        )


class ListWidget(Widget):
    """Selectable list (the teams list in Fig. 17)."""

    type_name = "List"
    data_attributes = ("text",)
    selection_attribute = "text"

    def _validate_config(self) -> None:
        self.required_bindings("text")

    def render(self, table: Table | None) -> WidgetView:
        if table is None:
            return self._view({"items": []}, "", f"[{self.name}] no data")
        items = [v for v in self.column("text", table)]
        selected = set(self.selection.values.get("text", []))
        lis = "".join(
            f'<li class="{"selected" if item in selected else ""}">'
            f"{escape(item)}</li>"
            for item in items
        )
        html = f'<ul class="list-widget">{lis}</ul>'
        text = f"[{self.name}] " + ", ".join(
            f"*{i}*" if i in selected else str(i) for i in items
        )
        return self._view({"items": items, "selected": sorted(
            str(s) for s in selected)}, html, text)


class MapMarker(Widget):
    """Markers on a country map (favourite team per city, Fig. 17)."""

    type_name = "MapMarker"
    data_attributes = ()

    def _validate_config(self) -> None:
        markers = self.config.get("markers")
        if not isinstance(markers, list) or not markers:
            raise WidgetError(
                f"map widget {self.name!r} needs a 'markers' list"
            )

    def _marker_specs(self) -> list[dict[str, Any]]:
        specs = []
        for entry in self.config.get("markers", []):
            if isinstance(entry, dict):
                # Either the spec itself or {name: spec}.
                if "type" in entry or "latlong_value" in entry:
                    specs.append(entry)
                else:
                    for value in entry.values():
                        if isinstance(value, dict):
                            specs.append(value)
        return specs

    def render(self, table: Table | None) -> WidgetView:
        if table is None:
            return self._view({"markers": []}, "", f"[{self.name}] no data")
        marks = []
        for spec in self._marker_specs():
            latlong_col = str(spec.get("latlong_value", ""))
            size_col = str(spec.get("markersize", ""))
            color_col = str(spec.get("fill_color", ""))
            tooltip_cols = [
                str(c) for c in (spec.get("tooltip_text") or [])
            ]
            for row in table.rows():
                marks.append(
                    {
                        "latlong": row.get(latlong_col),
                        "size": _as_float(row.get(size_col)) or 1.0,
                        "color": row.get(color_col),
                        "tooltip": {c: row.get(c) for c in tooltip_cols},
                    }
                )
        sizes = _scale(
            [math.sqrt(max(m["size"], 0.0)) for m in marks], 4, 24
        )
        circles = []
        for mark, radius in zip(marks, sizes):
            x, y = _project_latlong(mark["latlong"])
            title = ", ".join(
                f"{k}={v}" for k, v in mark["tooltip"].items()
            )
            circles.append(
                f'<circle cx="{x:.0f}" cy="{y:.0f}" r="{radius:.0f}" '
                f'fill="{escape(mark["color"] or "#4c78a8")}" '
                f'opacity="0.7"><title>{escape(title)}</title></circle>'
            )
        html = (
            f'<svg class="map-marker" width="{_SVG_WIDTH}" '
            f'height="{_SVG_HEIGHT}" data-country='
            f'"{escape(self.config.get("country", ""))}">'
            f'{"".join(circles)}</svg>'
        )
        text = f"[{self.name}] {len(marks)} markers"
        return self._view({"markers": marks}, html, text)


def _project_latlong(value: Any) -> tuple[float, float]:
    """Equirectangular projection of a 'lat,long' value into the SVG."""
    if isinstance(value, str) and "," in value:
        try:
            lat, lon = (float(p) for p in value.split(",", 1))
        except ValueError:
            return (_SVG_WIDTH / 2, _SVG_HEIGHT / 2)
    elif isinstance(value, (list, tuple)) and len(value) == 2:
        lat, lon = float(value[0]), float(value[1])
    else:
        return (_SVG_WIDTH / 2, _SVG_HEIGHT / 2)
    x = (lon + 180.0) / 360.0 * _SVG_WIDTH
    y = (90.0 - lat) / 180.0 * _SVG_HEIGHT
    return (x, y)


class HtmlWidget(Widget):
    """Raw HTML section bound to a (usually single-row) data object."""

    type_name = "HTML"
    data_attributes = ()

    def render(self, table: Table | None) -> WidgetView:
        tag = str(self.config.get("tag", "section"))
        if table is None or table.num_rows == 0:
            body = ""
            text = f"[{self.name}] (empty)"
        else:
            row = table.row(0)
            body = "".join(
                f'<div class="field"><b>{escape(k)}</b>: '
                f"{escape(v)}</div>"
                for k, v in row.items()
            )
            text = f"[{self.name}] " + ", ".join(
                f"{k}={v}" for k, v in row.items()
            )
        html = f'<{tag} class="html-widget">{body}</{tag}>'
        return self._view(
            {"row": table.row(0) if table and table.num_rows else {}},
            html,
            text,
        )


class DataGrid(Widget):
    """Tabular grid of the source rows (also the data explorer's view)."""

    type_name = "DataGrid"
    data_attributes = ()

    def render(self, table: Table | None) -> WidgetView:
        if table is None:
            return self._view({"rows": []}, "", f"[{self.name}] no data")
        limit = int(self.config.get("page_size", 50))
        head = table.head(limit)
        header = "".join(
            f"<th>{escape(n)}</th>" for n in head.schema.names
        )
        body = "".join(
            "<tr>"
            + "".join(f"<td>{escape(v)}</td>" for v in row)
            + "</tr>"
            for row in head.row_tuples()
        )
        html = (
            f'<table class="data-grid"><thead><tr>{header}</tr></thead>'
            f"<tbody>{body}</tbody></table>"
        )
        text = (
            f"[{self.name}] {table.num_rows} rows x "
            f"{table.num_columns} cols"
        )
        return self._view(
            {"rows": head.to_records(), "total_rows": table.num_rows},
            html,
            text,
        )


def _truthy(value: Any) -> bool:
    if isinstance(value, str):
        return value.strip().lower() in ("true", "yes", "1")
    return bool(value)
