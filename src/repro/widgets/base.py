"""Widget base classes.

A widget is configured with a source (bound by the dashboard runtime),
data attributes naming source columns (paper Fig. 12: ``text: project``,
``size: total_wt``) and visual attributes (legend, axis, defaults...).
Rendering produces a :class:`WidgetView` — a structured render model with
HTML/SVG and plain-text projections, so dashboards are inspectable and
testable without a browser.

Selection: widgets expose their current selection as a
:class:`~repro.tasks.base.WidgetSelection` keyed by *widget columns*
(``text``, ``size``, ``value``), which interaction filter tasks consume.
``default_selection`` configuration (Fig. 12) seeds it.
"""

from __future__ import annotations

import abc
import html as _html
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.data import Table
from repro.errors import WidgetError
from repro.tasks.base import WidgetSelection


@dataclass
class WidgetView:
    """The rendered form of one widget."""

    widget: str
    type_name: str
    #: structured payload (marks, values) — what a JS widget would bind
    payload: dict[str, Any] = field(default_factory=dict)
    #: HTML/SVG fragment
    html: str = ""
    #: terminal-friendly rendering
    text: str = ""


class Widget(abc.ABC):
    """Base class for all widgets."""

    #: flow-file ``type:`` value (case-insensitive match)
    type_name: str = ""
    #: configuration keys that bind to source columns
    data_attributes: tuple[str, ...] = ()
    #: which data attribute drives selections (None = not selectable)
    selection_attribute: str | None = None

    def __init__(self, name: str, config: Mapping[str, Any]):
        self.name = name
        self.config = dict(config)
        self.bindings: dict[str, str] = {}
        for attribute in self.data_attributes:
            value = self.config.get(attribute)
            if isinstance(value, str) and value:
                self.bindings[attribute] = value
        self.selection = WidgetSelection()
        self._apply_default_selection()
        self._validate_config()

    def _validate_config(self) -> None:
        """Subclasses raise :class:`WidgetError` on bad configuration."""

    # -- selection --------------------------------------------------------
    def _apply_default_selection(self) -> None:
        """Honour Fig. 12's default-selection attributes."""
        if not _truthy(self.config.get("default_selection")):
            return
        key = self.config.get("default_selection_key")
        value = self.config.get("default_selection_value")
        if key is None or value is None:
            raise WidgetError(
                f"widget {self.name!r}: default_selection needs "
                f"default_selection_key and default_selection_value"
            )
        self.selection.values[str(key)] = (
            list(value) if isinstance(value, list) else [value]
        )

    def select_values(self, column: str, values: list[Any]) -> None:
        """Set a discrete selection on a widget column."""
        self.selection.values[column] = list(values)
        self.selection.ranges.pop(column, None)

    def select_range(self, column: str, lo: Any, hi: Any) -> None:
        """Set a range selection on a widget column."""
        self.selection.ranges[column] = (lo, hi)
        self.selection.values.pop(column, None)

    def clear_selection(self) -> None:
        self.selection = WidgetSelection()

    # -- binding helpers ----------------------------------------------------
    def column(self, attribute: str, table: Table) -> list[Any]:
        """Values of the source column bound to ``attribute``."""
        binding = self.bindings.get(attribute)
        if binding is None:
            raise WidgetError(
                f"widget {self.name!r} has no binding for "
                f"data attribute {attribute!r}"
            )
        if binding not in table.schema:
            raise WidgetError(
                f"widget {self.name!r}: bound column {binding!r} missing "
                f"from source (has {table.schema.names})"
            )
        return table.column(binding)

    def required_bindings(self, *attributes: str) -> None:
        missing = [a for a in attributes if a not in self.bindings]
        if missing:
            raise WidgetError(
                f"widget {self.name!r} ({self.type_name}) needs data "
                f"attributes {missing}"
            )

    # -- rendering ----------------------------------------------------------
    @abc.abstractmethod
    def render(self, table: Table | None) -> WidgetView:
        """Produce the render model for the current source data."""

    def _view(
        self, payload: dict[str, Any], html: str, text: str
    ) -> WidgetView:
        return WidgetView(
            widget=self.name,
            type_name=self.type_name,
            payload=payload,
            html=html,
            text=text,
        )

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


def escape(value: Any) -> str:
    """HTML-escape a cell value for rendering."""
    return _html.escape("" if value is None else str(value))


def _truthy(value: Any) -> bool:
    if isinstance(value, str):
        return value.strip().lower() in ("true", "yes", "1")
    return bool(value)
