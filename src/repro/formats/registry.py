"""Format registry (part of the extension services, paper §4.2).

Built-in formats and user formats share one registry; a flow file's
``format:`` key resolves here.  Registries are per-platform-instance so
tests and multi-tenant embeddings do not leak extensions into each other;
:func:`default_format_registry` builds a fresh registry with the built-ins.
"""

from __future__ import annotations

from repro.errors import ExtensionError, FormatError
from repro.formats.base import Format


class FormatRegistry:
    """Name → :class:`Format` lookup with extension registration."""

    def __init__(self) -> None:
        self._formats: dict[str, Format] = {}

    def register(self, fmt: Format, replace: bool = False) -> None:
        if not fmt.name:
            raise ExtensionError(f"format {fmt!r} has no name")
        key = fmt.name.lower()
        if key in self._formats and not replace:
            raise ExtensionError(f"format {fmt.name!r} already registered")
        self._formats[key] = fmt

    def get(self, name: str) -> Format:
        fmt = self._formats.get(name.lower())
        if fmt is None:
            raise FormatError(
                f"unknown format {name!r}; known: {sorted(self._formats)}"
            )
        return fmt

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and name.lower() in self._formats

    def names(self) -> list[str]:
        return sorted(self._formats)


def default_format_registry() -> FormatRegistry:
    """A registry pre-loaded with the built-in formats."""
    from repro.formats.avro import AvroFormat
    from repro.formats.csv_format import CsvFormat
    from repro.formats.json_format import JsonFormat, JsonLinesFormat
    from repro.formats.xml_format import XmlFormat

    registry = FormatRegistry()
    registry.register(CsvFormat())
    registry.register(JsonFormat())
    registry.register(JsonLinesFormat())
    registry.register(XmlFormat())
    registry.register(AvroFormat())
    return registry
