"""Format extension API (paper §4.2, "Data formats").

A format decodes a raw payload into a table using the data object's declared
schema, and encodes a table back into a payload for sinks.  User formats
implement the same two methods and register via
:class:`~repro.formats.registry.FormatRegistry`; they are then
indistinguishable from the built-ins in a flow file.
"""

from __future__ import annotations

import abc
from typing import Any, Mapping

from repro.data import Schema, Table


class Format(abc.ABC):
    """Base class for payload formats."""

    #: Name used in the flow file (``format: csv``).
    name: str = ""

    @abc.abstractmethod
    def decode(
        self,
        payload: bytes,
        schema: Schema,
        options: Mapping[str, Any] | None = None,
    ) -> Table:
        """Decode ``payload`` into a table shaped by ``schema``.

        ``options`` carries the remaining data-object configuration keys
        (e.g. ``separator`` for CSV).
        """

    @abc.abstractmethod
    def encode(
        self,
        table: Table,
        options: Mapping[str, Any] | None = None,
    ) -> bytes:
        """Encode ``table`` into this format's byte representation."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


def coerce_cell(value: str | None) -> Any:
    """Best-effort typed parse of a textual cell (CSV and XML share this).

    Empty strings become ``None``; integers and floats are recognised;
    ``true``/``false`` map to booleans; everything else stays a string.
    """
    if value is None:
        return None
    text = value.strip()
    if text == "":
        return None
    lowered = text.lower()
    if lowered == "true":
        return True
    if lowered == "false":
        return False
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return value
