"""Format extension API (paper §4.2, "Data formats").

A format decodes a raw payload into a table using the data object's declared
schema, and encodes a table back into a payload for sinks.  User formats
implement the same two methods and register via
:class:`~repro.formats.registry.FormatRegistry`; they are then
indistinguishable from the built-ins in a flow file.

Payloads are ``bytes`` by default; formats that set ``supports_chunks``
also accept an *iterator of byte chunks* (the file connector's
``fetch_chunks``) so large feeds decode without ever holding the whole
payload.  The helpers at the bottom of this module (:func:`payload_bytes`,
:func:`iter_decoded_lines`, :func:`coerce_cells`) keep the two input
shapes byte-identical in behaviour.
"""

from __future__ import annotations

import abc
import codecs
import io
from typing import Any, Iterable, Iterator, Mapping, Union

from repro.data import Schema, Table
from repro.errors import FormatError

#: What ``Format.decode`` accepts: a whole payload, or chunk iterator for
#: formats with ``supports_chunks = True``.
Payload = Union[bytes, bytearray, Iterable[bytes]]


class Format(abc.ABC):
    """Base class for payload formats."""

    #: Name used in the flow file (``format: csv``).
    name: str = ""

    #: Whether :meth:`decode` accepts an iterator of byte chunks in
    #: addition to ``bytes`` (the streaming ingestion fast path).
    supports_chunks: bool = False

    #: Whether a byte-level *suffix* of a payload decodes to exactly the
    #: trailing rows (line-oriented formats: CSV, JSON lines).  Formats
    #: with framing that spans the whole payload (a JSON array, XML,
    #: fixed-width with a footer) leave this False and delta ingestion
    #: falls back to full decodes for them.
    supports_delta: bool = False

    def delta_preamble(
        self,
        payload: bytes,
        options: Mapping[str, Any] | None = None,
    ) -> int:
        """Length of the prefix that must precede any appended suffix.

        For delta-capable formats this is the byte length of the header
        (CSV with ``header: true``), so the loader can decode
        ``payload[:preamble] + appended_bytes`` through the *unchanged*
        decode path and get exactly the appended rows.  Formats without
        a header return 0.
        """
        return 0

    @abc.abstractmethod
    def decode(
        self,
        payload: Payload,
        schema: Schema,
        options: Mapping[str, Any] | None = None,
    ) -> Table:
        """Decode ``payload`` into a table shaped by ``schema``.

        ``options`` carries the remaining data-object configuration keys
        (e.g. ``separator`` for CSV).
        """

    @abc.abstractmethod
    def encode(
        self,
        table: Table,
        options: Mapping[str, Any] | None = None,
    ) -> bytes:
        """Encode ``table`` into this format's byte representation."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


def coerce_cell(value: str | None) -> Any:
    """Best-effort typed parse of a textual cell (CSV and XML share this).

    Empty strings become ``None``; integers and floats are recognised;
    ``true``/``false`` map to booleans; everything else stays a string.
    """
    if value is None:
        return None
    text = value.strip()
    if text == "":
        return None
    lowered = text.lower()
    if lowered == "true":
        return True
    if lowered == "false":
        return False
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return value


_COERCE_MISS = object()


def coerce_cells(values: list, memo: dict | None = None) -> list:
    """Column-at-a-time :func:`coerce_cell` with a value memo.

    Cell-by-cell coercion pays the try/except parse per cell; real feeds
    repeat values heavily (categories, dates, flags), so coercing a whole
    column through a memo turns repeats into one dict lookup.  ``None``
    cells pass straight through.  Passing a shared ``memo`` lets a
    decoder reuse hits across columns.
    """
    if memo is None:
        memo = {}
    miss = _COERCE_MISS
    get = memo.get
    out = []
    append = out.append
    for value in values:
        if value is None:
            append(None)
            continue
        coerced = get(value, miss)
        if coerced is miss:
            coerced = coerce_cell(value)
            memo[value] = coerced
        append(coerced)
    return out


def payload_bytes(payload: Payload) -> bytes:
    """Materialize a payload (bytes or chunk iterator) as one ``bytes``."""
    if isinstance(payload, (bytes, bytearray)):
        return bytes(payload)
    return b"".join(payload)


def decode_payload_text(
    payload: Payload, encoding: str, label: str
) -> str:
    """Decode a whole payload to text, with the formats' error shape."""
    try:
        return payload_bytes(payload).decode(encoding)
    except UnicodeDecodeError as exc:
        raise FormatError(
            f"{label} payload is not valid {encoding}"
        ) from exc


def iter_decoded_lines(
    payload: Payload, encoding: str, label: str
) -> Iterator[str]:
    """Yield text lines from a payload without materializing it.

    Lines keep their terminators and split on ``"\\n"`` only — exactly
    the boundaries ``io.StringIO(text)`` iteration produces — so
    ``csv.reader`` and the JSONL decoder see identical input whether
    they are handed whole bytes or an iterator of chunks.  Chunked input
    is decoded incrementally, so multi-byte encodings may split anywhere.
    """
    if isinstance(payload, (bytes, bytearray)):
        try:
            text = bytes(payload).decode(encoding)
        except UnicodeDecodeError as exc:
            raise FormatError(
                f"{label} payload is not valid {encoding}"
            ) from exc
        yield from io.StringIO(text)
        return
    decoder = codecs.getincrementaldecoder(encoding)()
    buffer = ""
    try:
        for chunk in payload:
            buffer += decoder.decode(chunk)
            if "\n" in buffer:
                parts = buffer.split("\n")
                buffer = parts.pop()
                for part in parts:
                    yield part + "\n"
        buffer += decoder.decode(b"", final=True)
    except UnicodeDecodeError as exc:
        raise FormatError(
            f"{label} payload is not valid {encoding}"
        ) from exc
    if buffer:
        yield buffer
