"""CSV payload format.

Honours the ``separator`` option from the data-object configuration
(paper Fig. 4) plus ``header`` (default true) and ``encoding``.
When the payload has a header row, columns are matched by name (the
declared schema may select a subset, in any order); without a header,
columns are matched positionally against the schema.

Decoding is columnar: cells land straight in per-column lists (no
intermediate record dicts) and coercion runs column-at-a-time through a
shared value memo.  The decoder accepts either whole ``bytes`` or an
iterator of byte chunks — rows stream out of ``csv.reader`` one at a
time, so the raw row list is never materialized.
"""

from __future__ import annotations

import csv
import io
from typing import Any, Mapping

from repro.data import Schema, Table
from repro.errors import FormatError
from repro.formats.base import (
    Format,
    Payload,
    coerce_cells,
    iter_decoded_lines,
)


class CsvFormat(Format):
    name = "csv"
    supports_chunks = True
    supports_delta = True

    def delta_preamble(
        self,
        payload: bytes,
        options: Mapping[str, Any] | None = None,
    ) -> int:
        """Byte length of the header line (terminator included).

        With ``header: false`` there is no preamble; appended bytes are
        complete rows on their own.
        """
        options = options or {}
        if not _as_bool(options.get("header", True)):
            return 0
        newline = payload.find(b"\n")
        if newline < 0:
            return len(payload)
        return newline + 1

    def decode(
        self,
        payload: Payload,
        schema: Schema,
        options: Mapping[str, Any] | None = None,
    ) -> Table:
        options = options or {}
        separator = str(options.get("separator", ","))
        has_header = _as_bool(options.get("header", True))
        encoding = str(options.get("encoding", "utf-8"))
        lines = iter_decoded_lines(payload, encoding, "CSV")
        reader = csv.reader(lines, delimiter=separator)
        names = schema.names
        raw_columns: list[list[Any]] = [[] for _ in names]
        appenders: list[tuple[Any, int | None]] | None = None
        if not has_header:
            appenders = [
                (values.append, position)
                for values, position in zip(
                    raw_columns, range(len(schema))
                )
            ]
        count = 0
        saw_rows = False
        for row in reader:
            if not row:
                continue
            saw_rows = True
            if appenders is None:
                header = [h.strip() for h in row]
                appenders = [
                    (values.append, position)
                    for values, position in zip(
                        raw_columns, _header_positions(header, schema)
                    )
                ]
                continue
            count += 1
            width = len(row)
            for append, position in appenders:
                if position is None or position >= width:
                    append(None)
                else:
                    append(row[position])
        if not saw_rows:
            return Table.empty(schema)
        memo: dict[str, Any] = {}
        columns = {
            name: coerce_cells(values, memo)
            for name, values in zip(names, raw_columns)
        }
        return Table.from_columns(schema, columns, count if names else 0)

    def encode(
        self,
        table: Table,
        options: Mapping[str, Any] | None = None,
    ) -> bytes:
        options = options or {}
        separator = str(options.get("separator", ","))
        encoding = str(options.get("encoding", "utf-8"))
        buffer = io.StringIO()
        writer = csv.writer(buffer, delimiter=separator, lineterminator="\n")
        writer.writerow(table.schema.names)
        for row in table.row_tuples():
            writer.writerow(["" if v is None else v for v in row])
        return buffer.getvalue().encode(encoding)


def _header_positions(
    header: list[str], schema: Schema
) -> list[int | None]:
    """Column position for each schema name, or None when absent.

    A schema column whose ``source_path`` is set maps by that path name
    instead (so ``question => title`` finds the ``title`` CSV column).
    """
    index = {name: i for i, name in enumerate(header)}
    positions: list[int | None] = []
    for column in schema:
        key = column.source_path or column.name
        positions.append(index.get(key))
    if all(p is None for p in positions):
        raise FormatError(
            f"no schema column found in CSV header {header!r}; "
            f"expected some of {schema.names}"
        )
    return positions


def _as_bool(value: Any) -> bool:
    if isinstance(value, str):
        return value.strip().lower() in ("true", "yes", "1")
    return bool(value)
