"""CSV payload format.

Honours the ``separator`` option from the data-object configuration
(paper Fig. 4) plus ``header`` (default true) and ``encoding``.
When the payload has a header row, columns are matched by name (the
declared schema may select a subset, in any order); without a header,
columns are matched positionally against the schema.
"""

from __future__ import annotations

import csv
import io
from typing import Any, Mapping

from repro.data import Schema, Table
from repro.errors import FormatError
from repro.formats.base import Format, coerce_cell


class CsvFormat(Format):
    name = "csv"

    def decode(
        self,
        payload: bytes,
        schema: Schema,
        options: Mapping[str, Any] | None = None,
    ) -> Table:
        options = options or {}
        separator = str(options.get("separator", ","))
        has_header = _as_bool(options.get("header", True))
        encoding = str(options.get("encoding", "utf-8"))
        try:
            text = payload.decode(encoding)
        except UnicodeDecodeError as exc:
            raise FormatError(f"CSV payload is not valid {encoding}") from exc
        reader = csv.reader(io.StringIO(text), delimiter=separator)
        rows = [row for row in reader if row]
        if not rows:
            return Table.empty(schema)
        if has_header:
            header = [h.strip() for h in rows[0]]
            body = rows[1:]
            positions = _header_positions(header, schema)
        else:
            body = rows
            positions = list(range(len(schema)))
        names = schema.names
        records = []
        for line_no, row in enumerate(body, start=2 if has_header else 1):
            record: dict[str, Any] = {}
            for name, position in zip(names, positions):
                if position is None or position >= len(row):
                    record[name] = None
                else:
                    record[name] = coerce_cell(row[position])
            records.append(record)
        return Table.from_rows(schema, records)

    def encode(
        self,
        table: Table,
        options: Mapping[str, Any] | None = None,
    ) -> bytes:
        options = options or {}
        separator = str(options.get("separator", ","))
        encoding = str(options.get("encoding", "utf-8"))
        buffer = io.StringIO()
        writer = csv.writer(buffer, delimiter=separator, lineterminator="\n")
        writer.writerow(table.schema.names)
        for row in table.row_tuples():
            writer.writerow(["" if v is None else v for v in row])
        return buffer.getvalue().encode(encoding)


def _header_positions(
    header: list[str], schema: Schema
) -> list[int | None]:
    """Column position for each schema name, or None when absent.

    A schema column whose ``source_path`` is set maps by that path name
    instead (so ``question => title`` finds the ``title`` CSV column).
    """
    index = {name: i for i, name in enumerate(header)}
    positions: list[int | None] = []
    for column in schema:
        key = column.source_path or column.name
        positions.append(index.get(key))
    if all(p is None for p in positions):
        raise FormatError(
            f"no schema column found in CSV header {header!r}; "
            f"expected some of {schema.names}"
        )
    return positions


def _as_bool(value: Any) -> bool:
    if isinstance(value, str):
        return value.strip().lower() in ("true", "yes", "1")
    return bool(value)
