"""Payload-path extraction for ``=>`` schema mappings.

The data section maps hierarchical payload paths to flat column names
(paper Figs. 6 and 18, "in a similar fashion to XPath or JSONPath queries"):

    ipltweets: [
        postedTime => created_at,
        body       => text,
        location   => user.location,
    ]

This module resolves such dotted paths against decoded JSON/XML documents.
Supported syntax:

* ``a.b.c``      — nested object fields
* ``a[0].b``     — list index
* ``a.b[*]``     — all elements of a list (returns a list)

Missing path segments yield ``None`` rather than raising, because feed data
is routinely ragged (the paper's hackathon observation 4: real data forced
teams to build more elaborate cleansing pipelines).
"""

from __future__ import annotations

import re
from typing import Any

from repro.errors import FormatError

_SEGMENT_RE = re.compile(
    r"(?P<field>[^.\[\]]+)|\[(?P<index>\d+|\*)\]"
)


def parse_path(path: str) -> list[str | int]:
    """Split ``a.b[0].c`` into segments ``["a", "b", 0, "c"]``.

    ``"*"`` segments are kept as the string ``"*"``.
    """
    if not path or not path.strip():
        raise FormatError("empty payload path")
    segments: list[str | int] = []
    pos = 0
    text = path.strip()
    while pos < len(text):
        if text[pos] == ".":
            pos += 1
            continue
        match = _SEGMENT_RE.match(text, pos)
        if match is None:
            raise FormatError(f"malformed payload path {path!r} at {pos}")
        if match.group("field") is not None:
            segments.append(match.group("field"))
        else:
            index = match.group("index")
            segments.append("*" if index == "*" else int(index))
        pos = match.end()
    if not segments:
        raise FormatError(f"malformed payload path {path!r}")
    return segments


def extract_path(document: Any, path: str) -> Any:
    """Resolve ``path`` against ``document``; missing segments give None."""
    return _walk(document, parse_path(path))


def _walk(node: Any, segments: list[str | int]) -> Any:
    for i, segment in enumerate(segments):
        if node is None:
            return None
        if segment == "*":
            if not isinstance(node, list):
                return None
            rest = segments[i + 1:]
            return [_walk(item, rest) for item in node]
        if isinstance(segment, int):
            if not isinstance(node, list) or segment >= len(node):
                return None
            node = node[segment]
        else:
            if isinstance(node, dict):
                node = node.get(segment)
            else:
                node = getattr(node, segment, None)
    return node
