"""Payload-path extraction for ``=>`` schema mappings.

The data section maps hierarchical payload paths to flat column names
(paper Figs. 6 and 18, "in a similar fashion to XPath or JSONPath queries"):

    ipltweets: [
        postedTime => created_at,
        body       => text,
        location   => user.location,
    ]

This module resolves such dotted paths against decoded JSON/XML documents.
Supported syntax:

* ``a.b.c``      — nested object fields
* ``a[0].b``     — list index
* ``a.b[*]``     — all elements of a list (returns a list)

Missing path segments yield ``None`` rather than raising, because feed data
is routinely ragged (the paper's hackathon observation 4: real data forced
teams to build more elaborate cleansing pipelines).

Parsing is the expensive half (a regex scan per path), so results are
kept in a bounded memo — a schema's handful of paths is parsed once per
process, not once per cell.  Decoders that resolve the same path against
many documents should go one step further and use :func:`compile_path`,
which returns a reusable getter with a plain-key fast path.
"""

from __future__ import annotations

import re
from collections import OrderedDict
from typing import Any, Callable

from repro.errors import FormatError

_SEGMENT_RE = re.compile(
    r"(?P<field>[^.\[\]]+)|\[(?P<index>\d+|\*)\]"
)

#: Bounded parse memo: path string → parsed segment tuple.  Schemas use a
#: handful of distinct paths, so this is effectively a permanent cache;
#: the LRU bound only guards against pathological path churn.
_PARSE_CACHE: "OrderedDict[str, tuple[str | int, ...]]" = OrderedDict()
_PARSE_CACHE_LIMIT = 1024
_PARSE_STATS = {"parses": 0, "hits": 0}


def parse_path(path: str) -> list[str | int]:
    """Split ``a.b[0].c`` into segments ``["a", "b", 0, "c"]``.

    ``"*"`` segments are kept as the string ``"*"``.  Parses are memoized
    (bounded LRU); callers always receive a fresh list they may mutate.
    """
    cached = _PARSE_CACHE.get(path)
    if cached is not None:
        _PARSE_STATS["hits"] += 1
        _PARSE_CACHE.move_to_end(path)
        return list(cached)
    segments = _parse_path(path)
    _PARSE_STATS["parses"] += 1
    _PARSE_CACHE[path] = tuple(segments)
    if len(_PARSE_CACHE) > _PARSE_CACHE_LIMIT:
        _PARSE_CACHE.popitem(last=False)
    return segments


def _parse_path(path: str) -> list[str | int]:
    """The uncached regex scan behind :func:`parse_path`."""
    if not path or not path.strip():
        raise FormatError("empty payload path")
    segments: list[str | int] = []
    pos = 0
    text = path.strip()
    while pos < len(text):
        if text[pos] == ".":
            pos += 1
            continue
        match = _SEGMENT_RE.match(text, pos)
        if match is None:
            raise FormatError(f"malformed payload path {path!r} at {pos}")
        if match.group("field") is not None:
            segments.append(match.group("field"))
        else:
            index = match.group("index")
            segments.append("*" if index == "*" else int(index))
        pos = match.end()
    if not segments:
        raise FormatError(f"malformed payload path {path!r}")
    return segments


def parse_cache_stats() -> dict[str, int]:
    """Copy of the parse-memo counters (``parses`` misses, ``hits``)."""
    return dict(_PARSE_STATS)


def clear_parse_cache() -> None:
    """Drop the parse memo and reset its counters (test isolation)."""
    _PARSE_CACHE.clear()
    _PARSE_STATS["parses"] = 0
    _PARSE_STATS["hits"] = 0


def compile_path(path: str) -> Callable[[Any], Any]:
    """A reusable getter for ``path``, resolved once per schema.

    The columnar decoders call this once per column and apply the getter
    to every document, instead of re-resolving the path per cell.  The
    common shapes compile to dedicated closures — a single plain key to
    a direct ``dict.get``, two-segment paths (``a.b``, ``a[0]``) to an
    unrolled two-step lookup; everything else closes over the parsed
    segments and walks them.
    """
    segments = tuple(parse_path(path))
    if "*" not in segments:
        if len(segments) == 1 and isinstance(segments[0], str):
            key = segments[0]

            def plain_getter(document: Any, _key: str = key) -> Any:
                if isinstance(document, dict):
                    return document.get(_key)
                if document is None:
                    return None
                return getattr(document, _key, None)

            return plain_getter
        if len(segments) == 2 and isinstance(segments[0], str):
            first, second = segments
            if isinstance(second, str):

                def nested_getter(
                    document: Any, _a: str = first, _b: str = second
                ) -> Any:
                    if isinstance(document, dict):
                        node = document.get(_a)
                    elif document is None:
                        return None
                    else:
                        node = getattr(document, _a, None)
                    if isinstance(node, dict):
                        return node.get(_b)
                    if node is None:
                        return None
                    return getattr(node, _b, None)

                return nested_getter

            def indexed_getter(
                document: Any, _a: str = first, _i: int = second
            ) -> Any:
                if isinstance(document, dict):
                    node = document.get(_a)
                elif document is None:
                    return None
                else:
                    node = getattr(document, _a, None)
                if isinstance(node, list) and _i < len(node):
                    return node[_i]
                return None

            return indexed_getter

    def walking_getter(document: Any, _segments=segments) -> Any:
        return _walk(document, _segments)

    return walking_getter


def extract_path(document: Any, path: str) -> Any:
    """Resolve ``path`` against ``document``; missing segments give None."""
    return _walk(document, parse_path(path))


def _walk(node: Any, segments: "list[str | int] | tuple[str | int, ...]") -> Any:
    for i, segment in enumerate(segments):
        if node is None:
            return None
        if segment == "*":
            if not isinstance(node, list):
                return None
            rest = segments[i + 1:]
            return [_walk(item, rest) for item in node]
        if isinstance(segment, int):
            if not isinstance(node, list) or segment >= len(node):
                return None
            node = node[segment]
        else:
            if isinstance(node, dict):
                node = node.get(segment)
            else:
                node = getattr(node, segment, None)
    return node
