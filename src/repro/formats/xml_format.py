"""XML payload format.

Decodes a payload of the shape ``<root><record>...</record>...</root>``:
each child of the document root is one row; schema columns resolve against
the record element via dotted paths (child elements) with a leading ``@``
addressing attributes (``item.@id``).  Encoding produces the same shape.

Decoding is columnar: each schema path is split once into a resolver
(with fast paths for a single child tag or single attribute) and applied
per column, landing cells straight in column lists.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Any, Callable, Mapping
from xml.sax.saxutils import escape

from repro.data import Schema, Table
from repro.errors import FormatError
from repro.formats.base import Format, Payload, coerce_cell, payload_bytes


class XmlFormat(Format):
    name = "xml"

    def decode(
        self,
        payload: Payload,
        schema: Schema,
        options: Mapping[str, Any] | None = None,
    ) -> Table:
        options = options or {}
        try:
            root = ET.fromstring(payload_bytes(payload).decode(
                str(options.get("encoding", "utf-8"))
            ))
        except (ET.ParseError, UnicodeDecodeError) as exc:
            raise FormatError(f"invalid XML payload: {exc}") from exc
        record_tag = options.get("record")
        if record_tag:
            elements = list(root.iter(str(record_tag)))
        else:
            elements = list(root)
        names = schema.names
        columns: dict[str, list[Any]] = {}
        for column in schema:
            resolver = _compile_resolver(
                column.source_path or column.name
            )
            columns[column.name] = [
                resolver(element) for element in elements
            ]
        return Table.from_columns(
            schema, columns, len(elements) if names else 0
        )

    def encode(
        self,
        table: Table,
        options: Mapping[str, Any] | None = None,
    ) -> bytes:
        options = options or {}
        root_tag = str(options.get("root_tag", "rows"))
        record_tag = str(options.get("record", "row"))
        parts = [f"<{root_tag}>"]
        for row in table.rows():
            parts.append(f"  <{record_tag}>")
            for name, value in row.items():
                text = "" if value is None else escape(str(value))
                parts.append(f"    <{name}>{text}</{name}>")
            parts.append(f"  </{record_tag}>")
        parts.append(f"</{root_tag}>")
        return "\n".join(parts).encode("utf-8")


def _compile_resolver(path: str) -> Callable[[ET.Element], Any]:
    """A reusable per-column resolver for a dotted path.

    Splits the path once instead of once per cell.  A lone child tag or
    lone ``@attr`` compiles to a direct lookup; longer paths replicate
    the segment walk (including the data-dependent ``@attr``-must-be-last
    error, which only fires when the walk actually reaches a misplaced
    attribute segment on a non-missing node).
    """
    segments = path.split(".")
    if len(segments) == 1:
        segment = segments[0]
        if segment.startswith("@"):
            attribute = segment[1:]

            def attr_resolver(
                element: ET.Element, _attr: str = attribute
            ) -> Any:
                return coerce_cell(element.get(_attr))

            return attr_resolver

        def child_resolver(
            element: ET.Element, _tag: str = segment
        ) -> Any:
            node = element.find(_tag)
            if node is None:
                return None
            return coerce_cell(node.text)

        return child_resolver

    last = len(segments) - 1

    def walking_resolver(
        element: ET.Element,
        _segments: list[str] = segments,
        _last: int = last,
        _path: str = path,
    ) -> Any:
        node: ET.Element | None = element
        for i, segment in enumerate(_segments):
            if node is None:
                return None
            if segment.startswith("@"):
                if i != _last:
                    raise FormatError(
                        f"attribute segment {segment!r} "
                        f"must be last in {_path!r}"
                    )
                return coerce_cell(node.get(segment[1:]))
            node = node.find(segment)
        if node is None:
            return None
        return coerce_cell(node.text)

    return walking_resolver
