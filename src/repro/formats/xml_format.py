"""XML payload format.

Decodes a payload of the shape ``<root><record>...</record>...</root>``:
each child of the document root is one row; schema columns resolve against
the record element via dotted paths (child elements) with a leading ``@``
addressing attributes (``item.@id``).  Encoding produces the same shape.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Any, Mapping
from xml.sax.saxutils import escape

from repro.data import Schema, Table
from repro.errors import FormatError
from repro.formats.base import Format, coerce_cell


class XmlFormat(Format):
    name = "xml"

    def decode(
        self,
        payload: bytes,
        schema: Schema,
        options: Mapping[str, Any] | None = None,
    ) -> Table:
        options = options or {}
        try:
            root = ET.fromstring(payload.decode(
                str(options.get("encoding", "utf-8"))
            ))
        except (ET.ParseError, UnicodeDecodeError) as exc:
            raise FormatError(f"invalid XML payload: {exc}") from exc
        record_tag = options.get("record")
        if record_tag:
            elements = root.iter(str(record_tag))
        else:
            elements = iter(list(root))
        records = []
        for element in elements:
            record = {
                column.name: _resolve(
                    element, column.source_path or column.name
                )
                for column in schema
            }
            records.append(record)
        return Table.from_rows(schema, records)

    def encode(
        self,
        table: Table,
        options: Mapping[str, Any] | None = None,
    ) -> bytes:
        options = options or {}
        root_tag = str(options.get("root_tag", "rows"))
        record_tag = str(options.get("record", "row"))
        parts = [f"<{root_tag}>"]
        for row in table.rows():
            parts.append(f"  <{record_tag}>")
            for name, value in row.items():
                text = "" if value is None else escape(str(value))
                parts.append(f"    <{name}>{text}</{name}>")
            parts.append(f"  </{record_tag}>")
        parts.append(f"</{root_tag}>")
        return "\n".join(parts).encode("utf-8")


def _resolve(element: ET.Element, path: str) -> Any:
    """Resolve a dotted path (with ``@attr`` leaves) against an element."""
    node: ET.Element | None = element
    segments = path.split(".")
    for i, segment in enumerate(segments):
        if node is None:
            return None
        if segment.startswith("@"):
            if i != len(segments) - 1:
                raise FormatError(
                    f"attribute segment {segment!r} must be last in {path!r}"
                )
            return coerce_cell(node.get(segment[1:]))
        node = node.find(segment)
    if node is None:
        return None
    return coerce_cell(node.text)
