"""Payload format codecs.

The data section of a flow file names a format per data object (paper §3.2:
"recognizes popular data payload formats such as CSV, AVRO, XML and JSON").
A format turns raw bytes into a :class:`~repro.data.table.Table` guided by
the declared schema (including ``=>`` payload-path mappings) and back.
"""

from repro.formats.base import Format
from repro.formats.registry import FormatRegistry, default_format_registry
from repro.formats.jsonpath import extract_path
from repro.formats.csv_format import CsvFormat
from repro.formats.json_format import JsonFormat
from repro.formats.xml_format import XmlFormat
from repro.formats.avro import AvroFormat

__all__ = [
    "Format",
    "FormatRegistry",
    "default_format_registry",
    "extract_path",
    "CsvFormat",
    "JsonFormat",
    "XmlFormat",
    "AvroFormat",
]
