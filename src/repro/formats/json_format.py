"""JSON payload format.

Handles three payload shapes seen in feed APIs (paper Figs. 6, 18):

* a JSON array of documents,
* newline-delimited JSON (one document per line),
* a single object with a list-valued field (``items``/``results``/``data``
  or the ``root`` option) wrapping the documents.

Each document is flattened into a row using the schema's ``=>`` payload
paths; a column without a path maps to the identically-named top-level
field.

Decoding is columnar: each schema path compiles once
(:func:`~repro.formats.jsonpath.compile_path`) and its getter runs over
the documents in a tight per-column pass — no record dicts, no per-cell
path parsing.  The ``jsonl`` format additionally accepts an iterator of
byte chunks and decodes line by line without holding the payload.
"""

from __future__ import annotations

import json
from typing import Any, Iterable, Iterator, Mapping

from repro.data import Schema, Table
from repro.errors import FormatError
from repro.formats.base import (
    Format,
    Payload,
    decode_payload_text,
    iter_decoded_lines,
)
from repro.formats.jsonpath import compile_path, extract_path


_WRAPPER_FIELDS = ("items", "results", "data", "rows")


class JsonFormat(Format):
    name = "json"

    def decode(
        self,
        payload: Payload,
        schema: Schema,
        options: Mapping[str, Any] | None = None,
    ) -> Table:
        options = options or {}
        encoding = str(options.get("encoding", "utf-8"))
        text = decode_payload_text(payload, encoding, "JSON")
        documents = list(_documents(text, options.get("root")))
        return _columnar_table(documents, schema)

    def encode(
        self,
        table: Table,
        options: Mapping[str, Any] | None = None,
    ) -> bytes:
        options = options or {}
        lines = _as_bool(options.get("lines", False))
        if lines:
            text = "\n".join(table.json_rows(default=str))
        else:
            text = table.to_json_records(default=str, indent=2)
        return text.encode("utf-8")


class JsonLinesFormat(JsonFormat):
    """Registered as ``jsonl``; adds true line-streaming decode.

    Byte payloads share the auto-detecting ``json`` decode.  A chunk
    iterator decodes line by line; payloads that turn out not to be
    line-delimited (a pretty-printed array, a single wrapper object)
    fall back to the whole-payload path with identical results.
    """

    name = "jsonl"
    supports_chunks = True
    # Line-delimited: any byte suffix starting on a line boundary
    # decodes to exactly the trailing rows, with no header preamble.
    supports_delta = True

    def decode(
        self,
        payload: Payload,
        schema: Schema,
        options: Mapping[str, Any] | None = None,
    ) -> Table:
        options = options or {}
        if isinstance(payload, (bytes, bytearray)):
            return super().decode(payload, schema, options)
        encoding = str(options.get("encoding", "utf-8"))
        lines = iter_decoded_lines(payload, encoding, "JSON")
        return _decode_streaming_lines(
            lines, schema, options.get("root")
        )

    def encode(
        self,
        table: Table,
        options: Mapping[str, Any] | None = None,
    ) -> bytes:
        options = dict(options or {})
        options["lines"] = True
        return super().encode(table, options)


def _columnar_table(documents: Any, schema: Schema) -> Table:
    """Flatten documents into per-column lists via compiled getters."""
    names = schema.names
    if not names:
        return Table.from_columns(schema, {}, 0)
    columns: dict[str, list[Any]] = {}
    if isinstance(documents, list):
        for column in schema:
            getter = compile_path(column.source_path or column.name)
            columns[column.name] = list(map(getter, documents))
        return Table.from_columns(schema, columns, len(documents))
    # Streaming documents: one pass, appending per column.
    getters = []
    for column in schema:
        values: list[Any] = []
        columns[column.name] = values
        getters.append(
            (values.append,
             compile_path(column.source_path or column.name))
        )
    count = 0
    for doc in documents:
        count += 1
        for append, getter in getters:
            append(getter(doc))
    return Table.from_columns(schema, columns, count)


def _decode_streaming_lines(
    lines: Iterator[str], schema: Schema, root: str | None
) -> Table:
    """Line-by-line JSONL decode of a text-line stream.

    Mirrors :func:`_documents` byte for byte: the first non-blank line
    that is not standalone JSON sends the whole remaining payload
    through the auto-detect path, and a stream holding exactly one
    document applies the same array/wrapper/root handling the
    whole-payload parse would.
    """
    names = schema.names
    columns: dict[str, list[Any]] = {}
    getters = []
    for column in schema:
        values: list[Any] = []
        columns[column.name] = values
        getters.append(
            (values.append,
             compile_path(column.source_path or column.name))
        )
    count = 0
    first_document: Any = None
    line_no = 0
    for raw in lines:
        stripped = raw.strip()
        if line_no == 0:
            if not stripped:
                continue  # leading blanks are outside _documents' view
            try:
                document = json.loads(stripped)
            except json.JSONDecodeError:
                # Not line-delimited; re-assemble and auto-detect.
                text = raw + "".join(lines)
                return _columnar_table(
                    list(_documents(text, root)), schema
                )
            line_no = 1
        else:
            line_no += 1
            if not stripped:
                continue
            try:
                document = json.loads(stripped)
            except json.JSONDecodeError as exc:
                raise FormatError(
                    f"invalid JSON on line {line_no}: {exc}"
                ) from exc
        count += 1
        if count == 1:
            first_document = document
            continue  # held back: a lone document needs wrapper handling
        if count == 2:
            for append, getter in getters:
                append(getter(first_document))
            first_document = None
        for append, getter in getters:
            append(getter(document))
    if count == 0:
        return Table.from_columns(schema, columns, 0)
    if count == 1:
        return _columnar_table(
            list(_single_document(first_document, root)), schema
        )
    return Table.from_columns(
        schema, columns, count if names else 0
    )


def _documents(text: str, root: str | None) -> Iterable[Any]:
    stripped = text.strip()
    if not stripped:
        return []
    try:
        parsed = json.loads(stripped)
    except json.JSONDecodeError:
        return _jsonl_documents(stripped)
    return _single_document(parsed, root)


def _single_document(parsed: Any, root: str | None) -> Iterable[Any]:
    """Document list for one successfully parsed top-level value."""
    if isinstance(parsed, list):
        return parsed
    if isinstance(parsed, dict):
        if root:
            inner = extract_path(parsed, root)
            if not isinstance(inner, list):
                raise FormatError(
                    f"root path {root!r} did not resolve to a list"
                )
            return inner
        for field in _WRAPPER_FIELDS:
            if isinstance(parsed.get(field), list):
                return parsed[field]
        return [parsed]
    raise FormatError("JSON payload must be an object or array")


def _jsonl_documents(text: str) -> list[Any]:
    documents = []
    for line_no, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            documents.append(json.loads(line))
        except json.JSONDecodeError as exc:
            raise FormatError(
                f"invalid JSON on line {line_no}: {exc}"
            ) from exc
    return documents


def _as_bool(value: Any) -> bool:
    if isinstance(value, str):
        return value.strip().lower() in ("true", "yes", "1")
    return bool(value)
