"""JSON payload format.

Handles three payload shapes seen in feed APIs (paper Figs. 6, 18):

* a JSON array of documents,
* newline-delimited JSON (one document per line),
* a single object with a list-valued field (``items``/``results``/``data``
  or the ``root`` option) wrapping the documents.

Each document is flattened into a row using the schema's ``=>`` payload
paths; a column without a path maps to the identically-named top-level
field.
"""

from __future__ import annotations

import json
from typing import Any, Iterable, Mapping

from repro.data import Schema, Table
from repro.errors import FormatError
from repro.formats.base import Format
from repro.formats.jsonpath import extract_path


_WRAPPER_FIELDS = ("items", "results", "data", "rows")


class JsonFormat(Format):
    name = "json"

    def decode(
        self,
        payload: bytes,
        schema: Schema,
        options: Mapping[str, Any] | None = None,
    ) -> Table:
        options = options or {}
        encoding = str(options.get("encoding", "utf-8"))
        try:
            text = payload.decode(encoding)
        except UnicodeDecodeError as exc:
            raise FormatError(f"JSON payload is not valid {encoding}") from exc
        documents = list(_documents(text, options.get("root")))
        records = [
            {
                column.name: extract_path(
                    doc, column.source_path or column.name
                )
                for column in schema
            }
            for doc in documents
        ]
        return Table.from_rows(schema, records)

    def encode(
        self,
        table: Table,
        options: Mapping[str, Any] | None = None,
    ) -> bytes:
        options = options or {}
        lines = _as_bool(options.get("lines", False))
        if lines:
            text = "\n".join(
                json.dumps(row, default=str) for row in table.rows()
            )
        else:
            text = json.dumps(table.to_records(), default=str, indent=2)
        return text.encode("utf-8")


class JsonLinesFormat(JsonFormat):
    """Alias registered as ``jsonl``; decoding is shared with ``json``."""

    name = "jsonl"

    def encode(
        self,
        table: Table,
        options: Mapping[str, Any] | None = None,
    ) -> bytes:
        options = dict(options or {})
        options["lines"] = True
        return super().encode(table, options)


def _documents(text: str, root: str | None) -> Iterable[Any]:
    stripped = text.strip()
    if not stripped:
        return []
    try:
        parsed = json.loads(stripped)
    except json.JSONDecodeError:
        return _jsonl_documents(stripped)
    if isinstance(parsed, list):
        return parsed
    if isinstance(parsed, dict):
        if root:
            inner = extract_path(parsed, root)
            if not isinstance(inner, list):
                raise FormatError(
                    f"root path {root!r} did not resolve to a list"
                )
            return inner
        for field in _WRAPPER_FIELDS:
            if isinstance(parsed.get(field), list):
                return parsed[field]
        return [parsed]
    raise FormatError("JSON payload must be an object or array")


def _jsonl_documents(text: str) -> list[Any]:
    documents = []
    for line_no, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            documents.append(json.loads(line))
        except json.JSONDecodeError as exc:
            raise FormatError(
                f"invalid JSON on line {line_no}: {exc}"
            ) from exc
    return documents


def _as_bool(value: Any) -> bool:
    if isinstance(value, str):
        return value.strip().lower() in ("true", "yes", "1")
    return bool(value)
