"""Avro-style binary payload format.

The paper lists AVRO among recognised formats.  With no third-party
dependencies available we implement a compact, self-describing binary
container that follows Avro's core encoding conventions:

* varint zig-zag encoded longs,
* length-prefixed UTF-8 strings,
* a per-value union tag (null / bool / long / double / string),
* a JSON schema header naming the fields, then a row count, then rows.

Layout::

    magic "SIA1" | header_len varint | header JSON bytes
    | row_count varint | rows (each value: tag byte + payload)

This exercises a real binary encode/decode path (buffers, varints, framing)
— the part of Avro that matters to a data pipeline — while remaining
dependency-free.  It is not wire-compatible with Apache Avro.
"""

from __future__ import annotations

import json
import struct
from typing import Any, Mapping

from repro.data import Schema, Table
from repro.errors import FormatError
from repro.formats.base import Format, Payload, payload_bytes

_MAGIC = b"SIA1"

_TAG_NULL = 0
_TAG_BOOL = 1
_TAG_LONG = 2
_TAG_DOUBLE = 3
_TAG_STRING = 4
_TAG_JSON = 5  # lists/dicts, encoded as a JSON string


def _zigzag_encode(value: int) -> int:
    return (value << 1) ^ (value >> 63)


def _zigzag_decode(value: int) -> int:
    return (value >> 1) ^ -(value & 1)


def write_varint(buffer: bytearray, value: int) -> None:
    """Append an unsigned LEB128 varint."""
    if value < 0:
        raise FormatError("varint value must be non-negative")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            buffer.append(byte | 0x80)
        else:
            buffer.append(byte)
            return


def read_varint(payload: bytes, offset: int) -> tuple[int, int]:
    """Read an unsigned varint; returns ``(value, new_offset)``."""
    result = 0
    shift = 0
    while True:
        if offset >= len(payload):
            raise FormatError("truncated varint")
        byte = payload[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7
        if shift > 70:
            raise FormatError("varint too long")


def write_long(buffer: bytearray, value: int) -> None:
    write_varint(buffer, _zigzag_encode(value))


def read_long(payload: bytes, offset: int) -> tuple[int, int]:
    raw, offset = read_varint(payload, offset)
    return _zigzag_decode(raw), offset


def _write_string(buffer: bytearray, text: str) -> None:
    raw = text.encode("utf-8")
    write_varint(buffer, len(raw))
    buffer.extend(raw)


def _read_string(payload: bytes, offset: int) -> tuple[str, int]:
    length, offset = read_varint(payload, offset)
    end = offset + length
    if end > len(payload):
        raise FormatError("truncated string")
    return payload[offset:end].decode("utf-8"), end


def _write_value(buffer: bytearray, value: Any) -> None:
    if value is None:
        buffer.append(_TAG_NULL)
    elif isinstance(value, bool):
        buffer.append(_TAG_BOOL)
        buffer.append(1 if value else 0)
    elif isinstance(value, int):
        buffer.append(_TAG_LONG)
        write_long(buffer, value)
    elif isinstance(value, float):
        buffer.append(_TAG_DOUBLE)
        buffer.extend(struct.pack("<d", value))
    elif isinstance(value, str):
        buffer.append(_TAG_STRING)
        _write_string(buffer, value)
    elif isinstance(value, (list, dict)):
        buffer.append(_TAG_JSON)
        _write_string(buffer, json.dumps(value, default=str))
    else:
        buffer.append(_TAG_STRING)
        _write_string(buffer, str(value))


def _discard(value: Any) -> None:
    """Sink for duplicated header fields (last occurrence wins)."""


def _read_value(payload: bytes, offset: int) -> tuple[Any, int]:
    if offset >= len(payload):
        raise FormatError("truncated value")
    tag = payload[offset]
    offset += 1
    if tag == _TAG_NULL:
        return None, offset
    if tag == _TAG_BOOL:
        if offset >= len(payload):
            raise FormatError("truncated bool")
        return payload[offset] != 0, offset + 1
    if tag == _TAG_LONG:
        return read_long(payload, offset)
    if tag == _TAG_DOUBLE:
        end = offset + 8
        if end > len(payload):
            raise FormatError("truncated double")
        return struct.unpack("<d", payload[offset:end])[0], end
    if tag == _TAG_STRING:
        return _read_string(payload, offset)
    if tag == _TAG_JSON:
        text, offset = _read_string(payload, offset)
        return json.loads(text), offset
    raise FormatError(f"unknown value tag {tag}")


class AvroFormat(Format):
    name = "avro"

    def decode(
        self,
        payload: Payload,
        schema: Schema,
        options: Mapping[str, Any] | None = None,
    ) -> Table:
        payload = payload_bytes(payload)
        if payload[: len(_MAGIC)] != _MAGIC:
            raise FormatError("bad magic: not a ShareInsights Avro payload")
        offset = len(_MAGIC)
        header_len, offset = read_varint(payload, offset)
        header_end = offset + header_len
        if header_end > len(payload):
            raise FormatError("truncated header")
        try:
            header = json.loads(payload[offset:header_end].decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise FormatError(f"invalid header: {exc}") from exc
        offset = header_end
        fields = header.get("fields")
        if not isinstance(fields, list) or not fields:
            raise FormatError("header missing 'fields'")
        row_count, offset = read_varint(payload, offset)
        # Decode row-major tagged values straight into per-field column
        # lists.  A duplicated header field keeps its last occurrence per
        # row (the dict-assignment behaviour), so earlier duplicates feed
        # a discard sink.
        last_position = {field: i for i, field in enumerate(fields)}
        field_columns: dict[Any, list[Any]] = {}
        appenders: list[Any] = []
        for i, field in enumerate(fields):
            if last_position[field] == i:
                values: list[Any] = []
                field_columns[field] = values
                appenders.append(values.append)
            else:
                appenders.append(_discard)
        for _ in range(row_count):
            for append in appenders:
                value, offset = _read_value(payload, offset)
                append(value)
        # Map decoded fields onto the declared schema (by source_path/name).
        columns: dict[str, list[Any]] = {}
        adopted: set[int] = set()
        for column in schema:
            key = column.source_path or column.name
            values = field_columns.get(key)
            if values is None:
                columns[column.name] = [None] * row_count
            elif id(values) in adopted:
                columns[column.name] = list(values)
            else:
                adopted.add(id(values))
                columns[column.name] = values
        return Table.from_columns(
            schema, columns, row_count if schema.names else 0
        )

    def encode(
        self,
        table: Table,
        options: Mapping[str, Any] | None = None,
    ) -> bytes:
        header = json.dumps({"fields": table.schema.names}).encode("utf-8")
        buffer = bytearray()
        buffer.extend(_MAGIC)
        write_varint(buffer, len(header))
        buffer.extend(header)
        write_varint(buffer, table.num_rows)
        names = table.schema.names
        for row in table.row_tuples():
            for _, value in zip(names, row):
                _write_value(buffer, value)
        return bytes(buffer)
