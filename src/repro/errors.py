"""Exception hierarchy for the ShareInsights reproduction.

Every error raised by the platform derives from :class:`ShareInsightsError`
so that callers embedding the platform can catch one type.  Sub-hierarchies
mirror the platform layers: DSL parsing, compilation, task configuration,
engine execution, widget binding, server requests and collaboration.
"""

from __future__ import annotations


class ShareInsightsError(Exception):
    """Base class for all platform errors."""


class FlowFileError(ShareInsightsError):
    """Base class for flow-file (DSL) problems."""


class FlowFileSyntaxError(FlowFileError):
    """The flow file text violates the grammar.

    Carries the 1-based ``line`` and ``column`` of the offending token so
    editors can point at the error (the paper notes error pin-pointing as a
    future-work item; we surface positions from day one).
    """

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        location = f" (line {line}, column {column})" if line else ""
        super().__init__(f"{message}{location}")


class FlowFileValidationError(FlowFileError):
    """The flow file parses but is semantically invalid.

    Examples: a flow referencing an undefined task, a task consuming a
    column its input schema does not provide, a cyclic flow graph.
    """


class SchemaError(ShareInsightsError):
    """A table schema is malformed or violated (unknown column, arity)."""


class ExpressionError(ShareInsightsError):
    """A filter/map expression failed to parse or evaluate."""


class TaskConfigError(ShareInsightsError):
    """A task section entry is missing or has invalid configuration."""


class TaskExecutionError(ShareInsightsError):
    """A task failed while transforming data."""


class ConnectorError(ShareInsightsError):
    """A data connector could not fetch or store a payload."""


class FormatError(ShareInsightsError):
    """A payload could not be decoded/encoded in the configured format."""


class CompilationError(ShareInsightsError):
    """The compiler could not lower a flow file to an executable plan."""


class ExecutionError(ShareInsightsError):
    """The engine failed while running a compiled plan."""


class WidgetError(ShareInsightsError):
    """A widget is misconfigured or could not bind to its data source."""


class LayoutError(ShareInsightsError):
    """A layout section is malformed (bad spans, unknown widget)."""


class CatalogError(ShareInsightsError):
    """Published shared-data-object resolution failed."""


class MergeConflictError(ShareInsightsError):
    """A three-way flow-file merge could not be resolved automatically.

    ``conflicts`` lists ``(section, key)`` pairs that changed on both sides.
    """

    def __init__(self, message: str, conflicts: list | None = None):
        self.conflicts = conflicts or []
        super().__init__(message)


class RepositoryError(ShareInsightsError):
    """Version-control operation failed (unknown ref, dirty state...)."""


class QueryError(ShareInsightsError):
    """An ad-hoc REST query was malformed."""


class ExtensionError(ShareInsightsError):
    """A user extension failed to load or register."""
