"""Exception hierarchy for the ShareInsights reproduction.

Every error raised by the platform derives from :class:`ShareInsightsError`
so that callers embedding the platform can catch one type.  Sub-hierarchies
mirror the platform layers: DSL parsing, compilation, task configuration,
engine execution, widget binding, server requests and collaboration.
"""

from __future__ import annotations


class ShareInsightsError(Exception):
    """Base class for all platform errors.

    ``retryable`` classifies the failure for the resilience layer
    (:mod:`repro.resilience`): transient faults (a flaky source, a lost
    worker) may be retried under a :class:`~repro.resilience.RetryPolicy`;
    permanent faults (bad credentials, a missing file, a type error) must
    fail fast — retrying them only wastes the budget.
    """

    #: whether a retry of the failed operation could plausibly succeed
    retryable: bool = False


def is_retryable(exc: BaseException) -> bool:
    """True when the resilience layer may retry after ``exc``.

    Non-platform exceptions (``KeyError``, ``TypeError``...) are bugs,
    not faults, and are never retried.
    """
    return bool(getattr(exc, "retryable", False))


class FlowFileError(ShareInsightsError):
    """Base class for flow-file (DSL) problems."""


class FlowFileSyntaxError(FlowFileError):
    """The flow file text violates the grammar.

    Carries the 1-based ``line`` and ``column`` of the offending token so
    editors can point at the error (the paper notes error pin-pointing as a
    future-work item; we surface positions from day one).
    """

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        location = f" (line {line}, column {column})" if line else ""
        super().__init__(f"{message}{location}")


class FlowFileValidationError(FlowFileError):
    """The flow file parses but is semantically invalid.

    Examples: a flow referencing an undefined task, a task consuming a
    column its input schema does not provide, a cyclic flow graph.
    """


class SchemaError(ShareInsightsError):
    """A table schema is malformed or violated (unknown column, arity)."""


class ExpressionError(ShareInsightsError):
    """A filter/map expression failed to parse or evaluate."""


class TaskConfigError(ShareInsightsError):
    """A task section entry is missing or has invalid configuration."""


class TaskExecutionError(ShareInsightsError):
    """A task failed while transforming data."""


class TransientTaskError(TaskExecutionError):
    """A task attempt failed for a reason that may not recur.

    Raised by the fault injector for simulated flaky workers and by
    engines for per-attempt infrastructure failures; the executor's
    retry loop re-runs the partition.
    """

    retryable = True


class WorkerLostError(TaskExecutionError):
    """A (simulated) worker died mid-stage, taking its partition with it.

    Retrying on the same worker is pointless; the engine instead
    performs lineage recovery — recomputing only the lost partition
    from its upstream inputs on a fresh worker.
    """

    retryable = True


class DeadlineExceededError(ShareInsightsError):
    """A request's end-to-end deadline expired before the work finished.

    Raised by :class:`~repro.resilience.Deadline` checks at engine stage
    boundaries and mapped to ``504 Gateway Timeout`` by the REST layer.
    Retryable: the same request may well fit the budget on a less loaded
    server (the client should honor ``Retry-After`` first).
    """

    retryable = True


class ConnectorError(ShareInsightsError):
    """A data connector could not fetch or store a payload."""


class TransientConnectorError(ConnectorError):
    """A connector failure that a retry may cure (5xx, flaky link)."""

    retryable = True


class ConnectorTimeoutError(TransientConnectorError):
    """The transport did not answer within the deadline."""


class ConnectorAuthError(ConnectorError):
    """Credentials were rejected — permanent; re-login will not help."""


class ConnectorNotFoundError(ConnectorError):
    """The requested resource does not exist — permanent."""


class CircuitOpenError(ConnectorError):
    """The circuit breaker is open: calls fail fast without hitting
    the backend until the reset timeout elapses (then one half-open
    probe is admitted)."""


class FormatError(ShareInsightsError):
    """A payload could not be decoded/encoded in the configured format."""


class CompilationError(ShareInsightsError):
    """The compiler could not lower a flow file to an executable plan."""


class ExecutionError(ShareInsightsError):
    """The engine failed while running a compiled plan.

    When the distributed engine gives up on a partition, ``task`` and
    ``partition`` identify the failing unit of work so operators (and
    tests) see *what* died, not a raw traceback.
    """

    def __init__(
        self,
        message: str,
        *,
        task: str | None = None,
        partition: int | None = None,
    ):
        self.task = task
        self.partition = partition
        super().__init__(message)


class WidgetError(ShareInsightsError):
    """A widget is misconfigured or could not bind to its data source."""


class LayoutError(ShareInsightsError):
    """A layout section is malformed (bad spans, unknown widget)."""


class CatalogError(ShareInsightsError):
    """Published shared-data-object resolution failed."""


class MergeConflictError(ShareInsightsError):
    """A three-way flow-file merge could not be resolved automatically.

    ``conflicts`` lists ``(section, key)`` pairs that changed on both sides.
    """

    def __init__(self, message: str, conflicts: list | None = None):
        self.conflicts = conflicts or []
        super().__init__(message)


class RepositoryError(ShareInsightsError):
    """Version-control operation failed (unknown ref, dirty state...)."""


class QueryError(ShareInsightsError):
    """An ad-hoc REST query was malformed."""


class ExtensionError(ShareInsightsError):
    """A user extension failed to load or register."""
