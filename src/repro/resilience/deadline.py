"""Request deadlines, threaded end-to-end through the stack.

The serving tier stamps every admitted request with a :class:`Deadline`
(wall-clock budget on a pluggable :class:`~repro.resilience.Clock`).
The deadline rides through the ``http.request`` span into engine runs
via a *thread-scoped* ambient slot (:func:`deadline_scope`): the worker
thread executing the request installs its deadline, and both executors
poll :func:`check_deadline` at stage boundaries, so a request that has
already blown its budget stops consuming workers instead of running to
completion for a client that gave up.

Expiry raises :class:`~repro.errors.DeadlineExceededError`, which the
REST layer maps to ``504`` with a structured body.  The check sits at
stage *boundaries*, which is the partial-safety guarantee: a stage
either finishes (its output is consistent and may be checkpointed) or
was never started — no half-written table is ever published, because
``Dashboard.run_flows`` only updates ``_materialized`` after the whole
engine run returns.
"""

from __future__ import annotations

import threading
from typing import Iterator

from contextlib import contextmanager

from repro.errors import DeadlineExceededError
from repro.resilience.clock import Clock, WallClock

_local = threading.local()

_WALL = WallClock()


class Deadline:
    """A point in time after which work on a request must stop.

    Immutable; cheap to share across layers.  ``remaining()`` is the
    budget left (never negative), ``check()`` raises on expiry.
    """

    __slots__ = ("expires_at", "budget", "_clock")

    def __init__(
        self, expires_at: float, budget: float, clock: Clock | None = None
    ):
        self.expires_at = float(expires_at)
        #: the original allowance, for Retry-After hints and telemetry
        self.budget = float(budget)
        self._clock = clock or _WALL

    @classmethod
    def after(cls, seconds: float, clock: Clock | None = None) -> "Deadline":
        """A deadline ``seconds`` from now on ``clock`` (wall by default)."""
        clock = clock or _WALL
        return cls(clock.now() + float(seconds), float(seconds), clock)

    def remaining(self) -> float:
        """Seconds left before expiry, clamped at zero."""
        return max(0.0, self.expires_at - self._clock.now())

    @property
    def expired(self) -> bool:
        return self._clock.now() >= self.expires_at

    def check(self, what: str = "request") -> None:
        """Raise :class:`DeadlineExceededError` when the budget is gone."""
        if self.expired:
            raise DeadlineExceededError(
                f"deadline of {self.budget:.3f}s exceeded before {what}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Deadline(remaining={self.remaining():.3f}s, "
            f"budget={self.budget:.3f}s)"
        )


def current_deadline() -> Deadline | None:
    """The deadline governing the current thread's request, if any."""
    return getattr(_local, "deadline", None)


@contextmanager
def deadline_scope(deadline: Deadline | None) -> Iterator[Deadline | None]:
    """Install ``deadline`` as the current thread's ambient deadline.

    Scopes nest: the previous deadline (usually ``None``) is restored on
    exit.  Passing ``None`` clears the slot for the scope's duration.
    """
    previous = getattr(_local, "deadline", None)
    _local.deadline = deadline
    try:
        yield deadline
    finally:
        _local.deadline = previous


def check_deadline(what: str = "request") -> None:
    """Poll the ambient deadline; no-op when none is installed.

    Engines call this at stage boundaries — the cheapest place that
    still bounds overrun to one stage's wall time.
    """
    deadline = getattr(_local, "deadline", None)
    if deadline is not None:
        deadline.check(what)
