"""Seeded fault injection for the simulated cluster.

A :class:`FaultInjector` is consulted by the distributed engine before
every partition attempt; matching :class:`FaultRule`\\ s fire faults:

``transient``
    the attempt fails with a retryable error (flaky worker);
``fatal``
    the attempt fails permanently (bad record, task bug);
``lost``
    the worker dies — the engine performs lineage recovery, recomputing
    only the lost partition from its upstream inputs;
``slow``
    the attempt straggles — the engine launches a speculative duplicate
    and takes the first finisher.

Rules target work by stage kind (map/shuffle/gather/load), task name
(fnmatch glob), partition index and attempt number, optionally with a
probability (``rate``, drawn from the injector's seeded PRNG) and a
total firing budget (``times``).  The same seed and plan always produce
the same fault sequence, so every recovery test is reproducible.
"""

from __future__ import annotations

import fnmatch
import random
import threading
from dataclasses import dataclass

from repro.errors import ExecutionError

TRANSIENT = "transient"
FATAL = "fatal"
LOST = "lost"
SLOW = "slow"

_KINDS = {TRANSIENT, FATAL, LOST, SLOW}


@dataclass
class FaultRule:
    """One targeting rule.  ``None`` fields match anything."""

    kind: str = TRANSIENT
    stage_kind: str | None = None  # map | shuffle | gather | load
    task: str | None = None  # fnmatch glob on the task name
    partition: int | None = None
    attempt: int | None = 0  # 0-based attempt number; None = every
    rate: float = 1.0
    times: int | None = None  # total firing budget

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; "
                f"choose from {sorted(_KINDS)}"
            )

    def matches(
        self, stage_kind: str, task: str, partition: int, attempt: int
    ) -> bool:
        if self.stage_kind is not None and stage_kind != self.stage_kind:
            return False
        if self.task is not None and not fnmatch.fnmatch(task, self.task):
            return False
        if self.partition is not None and partition != self.partition:
            return False
        if self.attempt is not None and attempt != self.attempt:
            return False
        return True


@dataclass
class FaultRecord:
    """One injected fault, for the injector's audit log."""

    kind: str
    stage_kind: str
    task: str
    partition: int
    attempt: int


class FaultInjector:
    """Decides, deterministically, which attempts fail and how."""

    def __init__(self, rules: list[FaultRule] | None = None, seed: int = 0):
        self.rules = list(rules or [])
        self.seed = seed
        self._rng = random.Random(seed)
        self._fired: dict[int, int] = {}
        self.log: list[FaultRecord] = []
        # Checks must stay globally ordered even if callers race: the
        # seeded PRNG draws and per-rule budgets are consumed in call
        # order, and that order is what makes a fault plan reproducible.
        self._lock = threading.Lock()

    def add_rule(self, rule: FaultRule) -> "FaultInjector":
        self.rules.append(rule)
        return self

    def check(
        self, *, stage_kind: str, task: str, partition: int, attempt: int
    ) -> str | None:
        """The fault kind to inject for this attempt, or ``None``."""
        with self._lock:
            for index, rule in enumerate(self.rules):
                if not rule.matches(stage_kind, task, partition, attempt):
                    continue
                if rule.times is not None:
                    if self._fired.get(index, 0) >= rule.times:
                        continue
                if rule.rate < 1.0 and self._rng.random() >= rule.rate:
                    continue
                self._fired[index] = self._fired.get(index, 0) + 1
                self.log.append(
                    FaultRecord(
                        rule.kind, stage_kind, task, partition, attempt
                    )
                )
                return rule.kind
            return None

    def reset(self) -> None:
        """Forget firing counts and log; rewind the PRNG to the seed."""
        with self._lock:
            self._rng = random.Random(self.seed)
            self._fired.clear()
            self.log.clear()

    @property
    def faults_injected(self) -> int:
        return len(self.log)

    # ------------------------------------------------------------------
    # named profiles (CLI --fault-profile, demos, CI)
    # ------------------------------------------------------------------
    @classmethod
    def from_profile(
        cls, profile: str | None, seed: int = 0
    ) -> "FaultInjector | None":
        """Build an injector from a named profile.

        Profiles (optionally suffixed ``:<seed>``, e.g. ``chaos:7``):

        - ``none`` — no faults (returns ``None``);
        - ``transient`` — first attempt of partition 0 of every
          shuffle stage fails once with a retryable fault;
        - ``lost`` — one worker loss per shuffle stage (partition 0),
          exercising lineage recovery;
        - ``straggler`` — partition 0 of every shuffle stage straggles,
          exercising speculative execution;
        - ``flaky`` — transient + lost + straggler combined (the demo
          profile: every recovery path fires at least once);
        - ``chaos`` — every attempt everywhere fails with 20%
          probability, seeded.
        """
        if not profile:
            return None
        name, _, seed_text = profile.partition(":")
        name = name.strip().lower()
        if seed_text.strip():
            try:
                seed = int(seed_text)
            except ValueError:
                raise ExecutionError(
                    f"fault profile seed must be an integer, got "
                    f"{seed_text!r}"
                ) from None
        if name == "none":
            return None
        if name == "transient":
            rules = [
                FaultRule(TRANSIENT, stage_kind="shuffle", partition=0)
            ]
        elif name == "lost":
            rules = [FaultRule(LOST, stage_kind="shuffle", partition=0)]
        elif name == "straggler":
            rules = [FaultRule(SLOW, stage_kind="shuffle", partition=0)]
        elif name == "flaky":
            rules = [
                FaultRule(TRANSIENT, stage_kind="shuffle", partition=0),
                FaultRule(LOST, stage_kind="shuffle", partition=1),
                FaultRule(SLOW, stage_kind="map", partition=0, times=2),
            ]
        elif name == "chaos":
            rules = [FaultRule(TRANSIENT, attempt=0, rate=0.2)]
        else:
            raise ExecutionError(
                f"unknown fault profile {profile!r}; choose from "
                f"none, transient, lost, straggler, flaky, chaos"
            )
        return cls(rules, seed=seed)
