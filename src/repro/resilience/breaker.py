"""Circuit breaker for repeatedly-failing backends.

When a source fails ``failure_threshold`` times in a row, the breaker
opens: further calls fail fast with :class:`CircuitOpenError` instead
of burning the retry budget against a dead endpoint.  After
``reset_timeout`` seconds (on the injected clock) one half-open probe
is admitted; its success closes the breaker, its failure re-opens it.
"""

from __future__ import annotations

from typing import Callable, TypeVar

from repro.errors import CircuitOpenError
from repro.resilience.clock import Clock, SimulatedClock

T = TypeVar("T")

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Consecutive-failure breaker with a half-open probe state."""

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_timeout: float = 30.0,
        clock: Clock | None = None,
        name: str = "",
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.name = name
        self._clock = clock or SimulatedClock()
        self._state = CLOSED
        self._failures = 0
        self._opened_at = 0.0

    @property
    def state(self) -> str:
        """Current state, promoting open → half-open on timeout."""
        if (
            self._state == OPEN
            and self._clock.now() - self._opened_at >= self.reset_timeout
        ):
            self._state = HALF_OPEN
        return self._state

    @property
    def consecutive_failures(self) -> int:
        return self._failures

    def allow(self) -> bool:
        """May the next call proceed?  (half-open admits one probe)"""
        return self.state != OPEN

    def record_success(self) -> None:
        self._failures = 0
        self._state = CLOSED

    def record_failure(self) -> None:
        self._failures += 1
        if self._state == HALF_OPEN or (
            self._failures >= self.failure_threshold
        ):
            self._trip()

    def _trip(self) -> None:
        self._state = OPEN
        self._opened_at = self._clock.now()

    def call(self, fn: Callable[[], T]) -> T:
        """Run ``fn`` through the breaker."""
        if not self.allow():
            target = f" for {self.name!r}" if self.name else ""
            raise CircuitOpenError(
                f"circuit breaker{target} is open after "
                f"{self._failures} consecutive failure(s); retry after "
                f"{self.reset_timeout}s"
            )
        try:
            result = fn()
        except Exception:
            self.record_failure()
            raise
        self.record_success()
        return result
