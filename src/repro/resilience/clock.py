"""Pluggable time source for the resilience layer.

Backoff schedules, circuit-breaker reset windows and straggler
detection all need a clock — but tests (and the simulated cluster)
must not actually sleep.  :class:`SimulatedClock` advances a virtual
``now`` instantly and records every sleep, so a retry schedule is both
deterministic and inspectable; :class:`WallClock` is the production
drop-in backed by :mod:`time`.
"""

from __future__ import annotations

import threading
import time


class Clock:
    """Minimal clock protocol: ``now()`` seconds and ``sleep(s)``."""

    def now(self) -> float:
        raise NotImplementedError

    def sleep(self, seconds: float) -> None:
        raise NotImplementedError


class SimulatedClock(Clock):
    """Virtual time: sleeping advances ``now`` without blocking.

    ``sleeps`` keeps the full schedule of waits, so tests can assert a
    backoff sequence exactly (same seed ⇒ same schedule).
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)
        self.sleeps: list[float] = []
        # The parallel batch scheduler may read the clock from worker
        # threads while the coordinator sleeps on it; keep `now` and the
        # sleep ledger consistent under contention.
        self._lock = threading.Lock()

    def now(self) -> float:
        with self._lock:
            return self._now

    def sleep(self, seconds: float) -> None:
        seconds = max(0.0, float(seconds))
        with self._lock:
            self.sleeps.append(seconds)
            self._now += seconds

    def advance(self, seconds: float) -> None:
        """Move time forward without recording a sleep (external wait)."""
        with self._lock:
            self._now += max(0.0, float(seconds))

    @property
    def total_slept(self) -> float:
        return sum(self.sleeps)


class WallClock(Clock):
    """Real time, for live deployments."""

    def now(self) -> float:
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)
