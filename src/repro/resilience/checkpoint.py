"""Stage-output checkpointing for resumable runs.

The distributed engine writes every materialized flow output into the
store as it completes; when a later stage kills the run, a rerun with
the same store skips the completed stages entirely (they surface in
``DistributedResult.recovered_stages``).  The default store is
in-memory — the store boundary is where HDFS/S3 would sit in the
paper's real deployment; :class:`DiskCheckpointStore` is the
single-node version of that boundary, used by ``serve
--checkpoint-dir`` to persist last-known-good endpoint tables across
server restarts.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from pathlib import Path
from typing import Iterator
from urllib.parse import quote, unquote

from repro.data import Table


class CheckpointStore:
    """Named materialized-output snapshots from a (partial) run."""

    def __init__(self) -> None:
        self._tables: dict[str, Table] = {}

    def put(self, name: str, table: Table) -> None:
        self._tables[name] = table

    def get(self, name: str) -> Table:
        return self._tables[name]

    def discard(self, name: str) -> None:
        self._tables.pop(name, None)

    def clear(self) -> None:
        self._tables.clear()

    def names(self) -> list[str]:
        return sorted(self._tables)

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def __len__(self) -> int:
        return len(self._tables)

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._tables))


class DiskCheckpointStore(CheckpointStore):
    """A checkpoint store persisted under one directory.

    Same interface as :class:`CheckpointStore`, write-through: every
    ``put`` pickles the table to ``<quoted-name>.ckpt`` (names may
    contain ``/`` — the serving tier keys last-known-good tables as
    ``dashboard/endpoint`` — so they are percent-quoted into flat
    filenames) via a temp file + ``os.replace``, so a crash mid-write
    never corrupts an existing checkpoint.  Reads are cached in memory
    after the first load; a file that fails to unpickle is treated as
    absent rather than poisoning startup.
    """

    _SUFFIX = ".ckpt"

    def __init__(self, root: str | os.PathLike[str]) -> None:
        super().__init__()
        self._root = Path(root)
        self._root.mkdir(parents=True, exist_ok=True)

    @property
    def root(self) -> Path:
        return self._root

    def _path(self, name: str) -> Path:
        return self._root / (quote(name, safe="") + self._SUFFIX)

    def _disk_names(self) -> set[str]:
        return {
            unquote(path.name[: -len(self._SUFFIX)])
            for path in self._root.glob(f"*{self._SUFFIX}")
        }

    def put(self, name: str, table: Table) -> None:
        super().put(name, table)
        blob = pickle.dumps(table, pickle.HIGHEST_PROTOCOL)
        fd, tmp = tempfile.mkstemp(
            dir=self._root, prefix=".ckpt-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
            os.replace(tmp, self._path(name))
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def get(self, name: str) -> Table:
        if name not in self._tables:
            with open(self._path(name), "rb") as handle:
                table = pickle.load(handle)
            self._tables[name] = table
        return self._tables[name]

    def discard(self, name: str) -> None:
        super().discard(name)
        try:
            os.unlink(self._path(name))
        except OSError:
            pass

    def clear(self) -> None:
        super().clear()
        for path in self._root.glob(f"*{self._SUFFIX}"):
            try:
                os.unlink(path)
            except OSError:
                pass

    def names(self) -> list[str]:
        return sorted(set(self._tables) | self._readable_disk_names())

    def _readable_disk_names(self) -> set[str]:
        readable: set[str] = set()
        for name in self._disk_names():
            if name in self._tables:
                readable.add(name)
                continue
            try:
                self.get(name)
            except Exception:
                continue
            readable.add(name)
        return readable

    def __contains__(self, name: str) -> bool:
        return name in self._tables or self._path(name).exists()

    def __len__(self) -> int:
        return len(self.names())

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())
