"""Stage-output checkpointing for resumable runs.

The distributed engine writes every materialized flow output into the
store as it completes; when a later stage kills the run, a rerun with
the same store skips the completed stages entirely (they surface in
``DistributedResult.recovered_stages``).  In-memory here — the store
boundary is where HDFS/S3 would sit in the paper's real deployment.
"""

from __future__ import annotations

from typing import Iterator

from repro.data import Table


class CheckpointStore:
    """Named materialized-output snapshots from a (partial) run."""

    def __init__(self) -> None:
        self._tables: dict[str, Table] = {}

    def put(self, name: str, table: Table) -> None:
        self._tables[name] = table

    def get(self, name: str) -> Table:
        return self._tables[name]

    def discard(self, name: str) -> None:
        self._tables.pop(name, None)

    def clear(self) -> None:
        self._tables.clear()

    def names(self) -> list[str]:
        return sorted(self._tables)

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def __len__(self) -> int:
        return len(self._tables)

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._tables))
