"""Bounded retry with deterministic exponential backoff.

One :class:`RetryPolicy` is shared by the distributed engine's
partition retry loop and by the HTTP/FTP/JDBC connectors, replacing
the ad-hoc loops each had grown.  Jitter is seeded: the same
``(seed, key, attempt)`` triple always yields the same delay, so a
failed run replays identically — a property the fault-injection tests
assert.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, TypeVar

from repro.errors import is_retryable
from repro.resilience.clock import Clock, SimulatedClock

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to try, and how long to wait in between.

    ``max_attempts`` counts the first try: 3 means one try plus two
    retries.  Delays grow as ``base_delay * multiplier ** (attempt-1)``
    capped at ``max_delay``, then widened by up to ``jitter`` fraction
    drawn from a PRNG seeded with ``(seed, key, attempt)`` — pass a
    stable ``key`` (task name, partition, URL host) to decorrelate
    concurrent retriers without losing determinism.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 5.0
    jitter: float = 0.25
    seed: int = 0

    def delay(self, attempt: int, key: Any = None) -> float:
        """Backoff before retry number ``attempt`` (1-based)."""
        raw = self.base_delay * self.multiplier ** max(0, attempt - 1)
        raw = min(raw, self.max_delay)
        if not self.jitter:
            return raw
        rng = random.Random(f"{self.seed}|{key!r}|{attempt}")
        return raw * (1.0 + self.jitter * rng.random())

    def schedule(self, key: Any = None) -> list[float]:
        """The full deterministic backoff schedule for ``key``."""
        return [
            self.delay(attempt, key)
            for attempt in range(1, max(1, self.max_attempts))
        ]

    def with_attempts(self, max_attempts: int) -> "RetryPolicy":
        """A copy with a different attempt budget (connector configs
        override per data object via the ``retries`` key)."""
        return RetryPolicy(
            max_attempts=max(1, max_attempts),
            base_delay=self.base_delay,
            multiplier=self.multiplier,
            max_delay=self.max_delay,
            jitter=self.jitter,
            seed=self.seed,
        )

    def call(
        self,
        fn: Callable[[int], T],
        *,
        clock: Clock | None = None,
        key: Any = None,
        classify: Callable[[BaseException], bool] = is_retryable,
        on_retry: Callable[[int, BaseException], None] | None = None,
    ) -> T:
        """Run ``fn(attempt)`` under this policy.

        ``fn`` receives the 1-based attempt number.  Non-retryable
        exceptions (per ``classify``) propagate immediately; retryable
        ones are re-raised once the budget is exhausted.
        """
        clock = clock or SimulatedClock()
        attempts = max(1, self.max_attempts)
        for attempt in range(1, attempts + 1):
            try:
                return fn(attempt)
            except Exception as exc:
                if not classify(exc) or attempt >= attempts:
                    raise
                if on_retry is not None:
                    on_retry(attempt, exc)
                clock.sleep(self.delay(attempt, key))
        raise AssertionError("unreachable")  # pragma: no cover
