"""Unified resilience layer (retry, circuit breaking, fault injection).

Real deployments of the paper's platform compile flows onto clusters
where partition failures, stragglers and flaky sources are routine.
This package gives every layer — engine, connectors, server — one
vocabulary for absorbing them:

- :class:`RetryPolicy` — bounded attempts, deterministic exponential
  backoff with seeded jitter, against a pluggable :class:`Clock`;
- :class:`CircuitBreaker` — fail fast on dead backends, half-open probe
  after a reset window;
- :class:`FaultInjector` / :class:`FaultRule` — seeded fault plans
  targeting stage kind, task, partition and attempt, so recovery paths
  are *testable*;
- :class:`CheckpointStore` — materialized-output snapshots that let a
  rerun skip completed stages;
- :class:`Deadline` — per-request wall-clock budgets, threaded from the
  serving tier into engine stage loops via :func:`deadline_scope` /
  :func:`check_deadline`, so overloaded servers stop work nobody is
  waiting for.

Error classification (which failures are worth retrying) lives on the
exception hierarchy itself: see ``repro.errors.is_retryable``.
"""

from repro.errors import is_retryable
from repro.resilience.breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
)
from repro.resilience.checkpoint import CheckpointStore, DiskCheckpointStore
from repro.resilience.clock import Clock, SimulatedClock, WallClock
from repro.resilience.deadline import (
    Deadline,
    check_deadline,
    current_deadline,
    deadline_scope,
)
from repro.resilience.faults import (
    FATAL,
    LOST,
    SLOW,
    TRANSIENT,
    FaultInjector,
    FaultRecord,
    FaultRule,
)
from repro.resilience.policy import RetryPolicy

__all__ = [
    "CircuitBreaker",
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
    "CheckpointStore",
    "DiskCheckpointStore",
    "Clock",
    "Deadline",
    "check_deadline",
    "current_deadline",
    "deadline_scope",
    "SimulatedClock",
    "WallClock",
    "FaultInjector",
    "FaultRecord",
    "FaultRule",
    "TRANSIENT",
    "FATAL",
    "LOST",
    "SLOW",
    "RetryPolicy",
    "is_retryable",
]
