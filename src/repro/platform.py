"""The ShareInsights platform facade.

One :class:`Platform` instance is "the server": it owns the extension
registries (§4.2), the shared data catalog (§3.4.1), the flow-file
version-control repository (§4.5.1) and the set of live dashboards.  The
REST layer (:mod:`repro.server`), the collaboration workflows and the
hackathon simulator all drive this object.

Every dashboard operation is appended to :attr:`Platform.events` — the
"application logs, flow file growth, error messages, execution logs"
telemetry the paper's §5.2.1 dashboards are built from.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from repro.collab.catalog import SharedDataCatalog
from repro.collab.repo import FlowFileRepository
from repro.compiler.compiler import FlowCompiler
from repro.connectors.loader import DataObjectLoader
from repro.connectors.registry import (
    ConnectorRegistry,
    default_connector_registry,
)
from repro.dashboard.dashboard import Dashboard, RefreshReport, RunReport
from repro.dashboard.environment import EnvironmentProfile
from repro.data import Table
from repro.dsl.parser import parse_flow_file
from repro.engine.scheduler import ProcessPool, resolve_pool_mode
from repro.errors import ShareInsightsError
from repro.formats.registry import FormatRegistry, default_format_registry
from repro.observability import Observability
from repro.observability.instruments import (
    COMPILE_DURATION,
    COMPILES,
    PLATFORM_EVENTS,
)
from repro.tasks.registry import TaskRegistry, default_task_registry
from repro.widgets.registry import WidgetRegistry, default_widget_registry


@dataclass
class PlatformEvent:
    """One telemetry record."""

    kind: str  # create | save | run | fork | error | select | query
    dashboard: str
    detail: dict[str, Any] = field(default_factory=dict)
    timestamp: float = field(default_factory=time.time)
    user: str = ""


class Platform:
    """A ShareInsights server instance."""

    def __init__(
        self,
        connectors: ConnectorRegistry | None = None,
        formats: FormatRegistry | None = None,
        tasks: TaskRegistry | None = None,
        widgets: WidgetRegistry | None = None,
        optimize: bool = True,
        observability: Observability | None = None,
    ):
        self.connectors = connectors or default_connector_registry()
        self.formats = formats or default_format_registry()
        self.tasks = tasks or default_task_registry()
        self.widgets = widgets or default_widget_registry()
        self.observability = observability or Observability()
        self.catalog = SharedDataCatalog()
        self.repository = FlowFileRepository()
        self.loader = DataObjectLoader(
            self.connectors,
            self.formats,
            observability=self.observability,
        )
        self.compiler = FlowCompiler(
            task_registry=self.tasks, optimize=optimize
        )
        self.dashboards: dict[str, Dashboard] = {}
        self.events: list[PlatformEvent] = []
        # Concurrency safety (docs/serving.md has the lock-ordering
        # table).  ``_lock`` guards the dashboard map, the repository
        # and the event log; compiles run *outside* it so concurrent
        # creates/saves parallelize, with a re-check on insert.
        # ``_run_locks`` serialize runs per dashboard: two concurrent
        # POST .../run calls for one dashboard execute back to back
        # instead of interleaving ``_materialized`` updates.
        self._lock = threading.RLock()
        self._run_locks: dict[str, threading.Lock] = {}
        #: callbacks fired after every refresh: fn(dashboard_name, report)
        self._refresh_listeners: list[Any] = []
        # The platform owns the warm process pool's lifecycle: the
        # serving tier preforks it at startup and reaps it on drain;
        # runs borrow it via ``run_dashboard(pool="auto"|"keep")``.
        self._pool: ProcessPool | None = None
        self._pool_lock = threading.Lock()

    # ------------------------------------------------------------------
    # warm process pool lifecycle
    # ------------------------------------------------------------------
    @property
    def pool(self) -> ProcessPool | None:
        """The platform's warm process pool, if one is open."""
        with self._pool_lock:
            if self._pool is not None and self._pool.closed:
                self._pool = None
            return self._pool

    def warm_pool(
        self,
        workers: int = 4,
        max_tasks_per_worker: int = 0,
        max_rss_bytes: int = 0,
        transport: str = "shared-memory",
    ) -> ProcessPool:
        """Open (or grow) the persistent process pool and prefork it.

        An existing open pool with at least ``workers`` workers is
        reused; a smaller one is drained and replaced.  Pool telemetry
        lands in this platform's metrics registry (``repro_pool_*``).
        """
        with self._pool_lock:
            pool = self._pool
            if pool is not None and not pool.closed:
                if pool.workers >= workers:
                    pool.prefork()
                    return pool
                pool.close()
            pool = ProcessPool(
                workers,
                max_tasks_per_worker=max_tasks_per_worker,
                max_rss_bytes=max_rss_bytes,
                transport=transport,
                metrics=self.observability.metrics,
            )
            pool.prefork()
            self._pool = pool
            return pool

    def close_pool(self) -> None:
        """Retire the warm pool's workers and release its arenas."""
        with self._pool_lock:
            if self._pool is not None:
                self._pool.close()
                self._pool = None

    # ------------------------------------------------------------------
    # dashboard CRUD (the §4.3.1 REST operations' backend)
    # ------------------------------------------------------------------
    def create_dashboard(
        self,
        name: str,
        source: str,
        data_dir: str | Path | None = None,
        inline_tables: Mapping[str, Table] | None = None,
        dictionaries: Mapping[str, Mapping[str, str]] | None = None,
        environment: EnvironmentProfile | None = None,
        user: str = "",
    ) -> Dashboard:
        """Create a dashboard from flow-file text (compiles immediately)."""
        with self._lock:
            if name in self.dashboards:
                raise ShareInsightsError(
                    f"dashboard {name!r} already exists"
                )
        dashboard = self._build(
            name, source, data_dir, inline_tables, dictionaries,
            environment, user,
        )
        with self._lock:
            # Re-check: a concurrent create may have won the compile
            # race; first insert wins, the loser gets the same error a
            # sequential caller would.
            if name in self.dashboards:
                raise ShareInsightsError(
                    f"dashboard {name!r} already exists"
                )
            self.dashboards[name] = dashboard
            self.repository.commit(
                name, source, message=f"create {name}", author=user
            )
        self._log("create", name, {"bytes": len(source)}, user)
        return dashboard

    def save_dashboard(
        self, name: str, source: str, user: str = ""
    ) -> Dashboard:
        """Replace a dashboard's flow file (edit + save in the editor)."""
        existing = self.get_dashboard(name)
        dashboard = self._build(
            name,
            source,
            existing._data_dir,
            existing._inline_tables,
            existing._dictionaries,
            existing.environment,
            user,
        )
        with self._lock:
            # Adopt from whatever version is live *now* (a concurrent
            # save may have replaced ``existing`` during our compile);
            # the swap and the repo commit land atomically.
            current = self.dashboards.get(name, existing)
            # Incremental recomputation: results of flows untouched by
            # this edit carry over, so the next
            # run_flows(incremental=True) only re-runs the stale DAG.
            adopted = dashboard.adopt_materialized(current)
            self.dashboards[name] = dashboard
            self.repository.commit(
                name, source, message=f"save {name}", author=user
            )
        self._log(
            "save",
            name,
            {"bytes": len(source), "adopted": adopted},
            user,
        )
        return dashboard

    def fork_dashboard(
        self, source_name: str, new_name: str, user: str = ""
    ) -> Dashboard:
        """Fork an existing dashboard (§5.2 obs. 3: 'fork to go')."""
        with self._lock:
            source_text = self.repository.read(source_name)
            existing = self.get_dashboard(source_name)
        dashboard = self._build(
            new_name,
            source_text,
            existing._data_dir,
            existing._inline_tables,
            existing._dictionaries,
            existing.environment,
            user,
        )
        with self._lock:
            if new_name in self.dashboards:
                raise ShareInsightsError(
                    f"dashboard {new_name!r} already exists"
                )
            self.dashboards[new_name] = dashboard
            self.repository.fork(source_name, new_name, author=user)
        self._log(
            "fork",
            new_name,
            {"from": source_name, "bytes": len(source_text)},
            user,
        )
        return dashboard

    def merge_dashboard(
        self,
        name: str,
        source_branch: str,
        into_branch: str = "main",
        user: str = "",
    ) -> Dashboard:
        """Merge a branch in the repository and deploy the result.

        The section-aware three-way merge (§4.5.1) runs in the
        repository; the merged flow file then goes through the normal
        save path, so an invalid merge result never replaces the live
        dashboard.
        """
        with self._lock:
            self.repository.merge(
                name, source_branch, into_branch=into_branch, author=user
            )
            merged = self.repository.read(name, branch=into_branch)
        return self.save_dashboard(name, merged, user=user)

    def delete_dashboard(self, name: str, user: str = "") -> None:
        with self._lock:
            self.get_dashboard(name)
            del self.dashboards[name]
        self._log("delete", name, {}, user)

    def get_dashboard(self, name: str) -> Dashboard:
        with self._lock:
            dashboard = self.dashboards.get(name)
            if dashboard is None:
                raise ShareInsightsError(
                    f"no dashboard {name!r}; "
                    f"have {sorted(self.dashboards)}"
                )
            return dashboard

    def dashboard_names(self) -> list[str]:
        with self._lock:
            return sorted(self.dashboards)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run_dashboard(
        self,
        name: str,
        engine: str | None = None,
        user: str = "",
        fault_profile: str | None = None,
        parallelism: int = 1,
        executor: str = "threads",
        pool: str = "auto",
        small_job_bytes: int | None = None,
    ) -> RunReport:
        mode = resolve_pool_mode(pool)
        dashboard = self.get_dashboard(name)
        run_pool: ProcessPool | None = None
        private_pool: ProcessPool | None = None
        if executor == "processes":
            if mode == "auto":
                run_pool = self.pool
            elif mode == "keep":
                run_pool = self.warm_pool(workers=max(1, parallelism))
            elif mode == "per-run":
                private_pool = ProcessPool(
                    max(1, parallelism),
                    metrics=self.observability.metrics,
                )
                run_pool = private_pool
            # "per-stage": leave run_pool None — cold fork per stage
        try:
            # One run at a time per dashboard: concurrent POST .../run
            # calls serialize here instead of interleaving materialized
            # updates; the run applies to the version captured above
            # even if a concurrent save swaps the live dashboard.
            with self._run_lock(name):
                report = dashboard.run_flows(
                    engine=engine,
                    fault_profile=fault_profile,
                    parallelism=parallelism,
                    executor=executor,
                    pool=run_pool,
                    small_job_bytes=small_job_bytes,
                )
        except ShareInsightsError as exc:
            self._log(
                "error",
                name,
                {
                    "message": str(exc),
                    "type": type(exc).__name__,
                    "task": getattr(exc, "task", None),
                    "partition": getattr(exc, "partition", None),
                },
                user,
            )
            raise
        finally:
            if private_pool is not None:
                private_pool.close()
        detail = {
            "engine": report.engine,
            "rows_produced": report.rows_produced,
            "published": report.published,
            "trace_id": report.trace_id,
            "operators": self._operator_usage(dashboard),
            "widgets": self._widget_usage(dashboard),
        }
        if report.retried_partitions or report.recovered_stages:
            detail["retried_partitions"] = report.retried_partitions
            detail["recovered_stages"] = list(report.recovered_stages)
        self._log("run", name, detail, user)
        return report

    def refresh_dashboard(
        self,
        name: str,
        incremental: bool = True,
        user: str = "",
    ) -> RefreshReport:
        """Refresh a dashboard's flows at O(changed rows) cost.

        Serializes with full runs under the same per-dashboard lock,
        records ``repro_refresh_*`` metrics, and notifies registered
        refresh listeners (the server uses one to invalidate its query
        cache at each endpoint version boundary).
        """
        from repro.observability.instruments import record_refresh

        dashboard = self.get_dashboard(name)
        try:
            with self._run_lock(name):
                report = dashboard.refresh_flows(incremental=incremental)
        except ShareInsightsError as exc:
            self._log(
                "error",
                name,
                {"message": str(exc), "type": type(exc).__name__},
                user,
            )
            raise
        record_refresh(
            self.observability.metrics,
            name,
            report.mode,
            report.seconds,
            report.delta_rows,
            len(report.flows_full),
        )
        self._log(
            "refresh",
            name,
            {
                "mode": report.mode,
                "delta_rows": report.delta_rows,
                "flows_incremental": list(report.flows_incremental),
                "flows_full": list(report.flows_full),
                "flows_skipped": list(report.flows_skipped),
                "endpoints_changed": list(report.endpoints_changed),
                "trace_id": report.trace_id,
            },
            user,
        )
        for listener in list(self._refresh_listeners):
            listener(name, report)
        return report

    def add_refresh_listener(self, listener: Any) -> None:
        """Register ``fn(dashboard_name, report)`` to run post-refresh."""
        self._refresh_listeners.append(listener)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _run_lock(self, name: str) -> threading.Lock:
        """The per-dashboard run lock (created on first use).

        Lock ordering: acquired *after* releasing ``_lock`` and before
        any query-cache lock; never held while taking ``_lock``.
        """
        with self._lock:
            lock = self._run_locks.get(name)
            if lock is None:
                lock = threading.Lock()
                self._run_locks[name] = lock
            return lock

    def _build(
        self,
        name: str,
        source: str,
        data_dir: str | Path | None,
        inline_tables: Mapping[str, Table] | None,
        dictionaries: Mapping[str, Mapping[str, str]] | None,
        environment: EnvironmentProfile | None,
        user: str = "",
    ) -> Dashboard:
        obs = self.observability
        try:
            with obs.tracer.span("compile", dashboard=name) as span:
                with obs.tracer.span("parse"):
                    flow_file = parse_flow_file(source, name=name)
                with obs.tracer.span("plan"):
                    compiled = self.compiler.compile(
                        flow_file,
                        catalog_schemas=self.catalog.schemas(),
                    )
                span.set(
                    flows=len(flow_file.flows),
                    tasks=len(compiled.tasks),
                )
        except ShareInsightsError as exc:
            self._log("error", name, {"message": str(exc)}, user)
            raise
        obs.metrics.counter(
            COMPILES, "Flow files compiled to logical plans"
        ).inc(dashboard=name)
        obs.metrics.histogram(
            COMPILE_DURATION, "Flow-file parse + plan wall time"
        ).observe(span.duration)
        return Dashboard(
            compiled,
            loader=self.loader,
            catalog=self.catalog,
            widget_registry=self.widgets,
            environment=environment,
            data_dir=data_dir,
            dictionaries=dictionaries,
            inline_tables=inline_tables,
            observability=obs,
        )

    @staticmethod
    def _operator_usage(dashboard: Dashboard) -> dict[str, int]:
        """Task-type histogram of one dashboard (feeds Fig. 31)."""
        usage: dict[str, int] = {}
        for task in dashboard.compiled.tasks.values():
            usage[task.type_name] = usage.get(task.type_name, 0) + 1
        return usage

    @staticmethod
    def _widget_usage(dashboard: Dashboard) -> dict[str, int]:
        """Widget-type histogram of one dashboard (feeds Fig. 31)."""
        usage: dict[str, int] = {}
        for plan in dashboard.compiled.widget_plans.values():
            type_name = plan.widget.type_name
            usage[type_name] = usage.get(type_name, 0) + 1
        return usage

    def _log(
        self,
        kind: str,
        dashboard: str,
        detail: dict[str, Any],
        user: str = "",
    ) -> None:
        with self._lock:
            self.events.append(
                PlatformEvent(
                    kind=kind, dashboard=dashboard, detail=detail,
                    user=user,
                )
            )
        # The event log and the metrics registry are one telemetry
        # surface: every platform event is also a counter series.
        self.observability.metrics.counter(
            PLATFORM_EVENTS, "Platform events by kind (see Platform.events)"
        ).inc(kind=kind)
