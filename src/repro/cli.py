"""Command-line interface.

The paper's platform is browser-first (§4.3.1); this CLI covers the
headless workflows — validating, running, rendering and serving flow
files — so pipelines can live in scripts and CI:

    python -m repro validate dashboard.flow
    python -m repro run dashboard.flow --data ./data --endpoint out
    python -m repro refresh dashboard.flow --data ./data --cycles 3
    python -m repro render dashboard.flow --data ./data -o dash.html
    python -m repro explain dashboard.flow --data ./data
    python -m repro serve dashboard.flow --data ./data --port 8350

Data objects resolve through their flow-file source configuration,
relative to ``--data`` (the dashboard's data folder, §4.3.2).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.dsl.diagnostics import diagnose
from repro.engine.scheduler import EXECUTORS, POOL_MODES
from repro.errors import ShareInsightsError
from repro.platform import Platform


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ShareInsights flow-file tools",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    def add_common(sub):
        sub.add_argument("flow_file", help="path to the flow file")
        sub.add_argument(
            "--data",
            default=".",
            help="dashboard data directory (default: cwd)",
        )
        sub.add_argument(
            "--name", default=None, help="dashboard name"
        )

    validate = commands.add_parser(
        "validate", help="parse + validate, with pin-pointed errors"
    )
    validate.add_argument("flow_file")

    run = commands.add_parser("run", help="execute the flows")
    add_common(run)
    run.add_argument(
        "--engine",
        choices=["local", "distributed"],
        default=None,
        help="engine (default: chosen by input size)",
    )
    run.add_argument(
        "--endpoint",
        default=None,
        help="print this endpoint's rows as JSON after the run",
    )
    run.add_argument(
        "--fault-profile",
        default=None,
        metavar="PROFILE[:SEED]",
        help=(
            "inject seeded faults on the distributed engine "
            "(none, transient, lost, straggler, flaky, chaos) "
            "to demo the resilience layer"
        ),
    )
    run.add_argument(
        "--parallelism",
        type=int,
        default=1,
        metavar="N",
        help=(
            "worker pool size for the distributed engine and for "
            "parallel source loading; results and telemetry are "
            "identical at every setting (default: 1)"
        ),
    )
    run.add_argument(
        "--executor",
        choices=list(EXECUTORS),
        default="threads",
        help=(
            "worker pool backend: threads (default; fine for I/O) or "
            "processes (true multi-core for CPU-bound decode/shuffle; "
            "POSIX fork, falls back to threads elsewhere)"
        ),
    )
    run.add_argument(
        "--pool",
        choices=list(POOL_MODES),
        default="auto",
        help=(
            "process-pool lifetime with --executor processes: auto "
            "(default; reuse the platform's warm pool when one exists), "
            "keep (warm a persistent pool and reuse it), per-run (one "
            "pool for this run), per-stage (cold fork every stage)"
        ),
    )
    run.add_argument(
        "--small-job-bytes",
        type=int,
        default=None,
        metavar="BYTES",
        help=(
            "stay sequential when the estimated source payload is "
            "below this many bytes; 0 always parallelizes (default: "
            "8 MiB, or the REPRO_SMALL_JOB_BYTES env var)"
        ),
    )
    run.add_argument(
        "--trace",
        action="store_true",
        help="print the run's span tree (compile -> stage -> attempt)",
    )
    run.add_argument(
        "--profile",
        action="store_true",
        help="print a per-stage hot-spot table for the run",
    )

    refresh = commands.add_parser(
        "refresh",
        help="run once, then refresh incrementally on an interval",
    )
    add_common(refresh)
    refresh.add_argument(
        "--cycles",
        type=int,
        default=1,
        metavar="N",
        help="refresh cycles to run after the priming run (default: 1)",
    )
    refresh.add_argument(
        "--interval",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="pause between cycles (default: 0, back to back)",
    )
    refresh.add_argument(
        "--full",
        action="store_true",
        help=(
            "recompute everything each cycle instead of advancing "
            "delta cursors incrementally"
        ),
    )
    refresh.add_argument(
        "--endpoint",
        default=None,
        help="print this endpoint's rows as JSON after the last cycle",
    )

    render = commands.add_parser(
        "render", help="run + render the dashboard"
    )
    add_common(render)
    render.add_argument(
        "-o", "--output", default=None, help="write HTML here"
    )

    explain = commands.add_parser(
        "explain", help="show the compiled plan and bottlenecks"
    )
    add_common(explain)

    serve = commands.add_parser(
        "serve", help="serve the REST API with this dashboard loaded"
    )
    add_common(serve)
    serve.add_argument("--port", type=int, default=8350)
    serve.add_argument(
        "--workers",
        type=int,
        default=4,
        metavar="N",
        help="serving-tier worker threads (default: 4)",
    )
    serve.add_argument(
        "--queue-depth",
        type=int,
        default=16,
        metavar="N",
        help=(
            "bounded admission queue length; a full queue answers "
            "503 + Retry-After instead of waiting (default: 16)"
        ),
    )
    serve.add_argument(
        "--request-timeout",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help=(
            "end-to-end per-request deadline, queue wait included; "
            "expiry answers 504 (default: 10)"
        ),
    )
    serve.add_argument(
        "--rate-limit",
        type=float,
        default=None,
        metavar="RPS",
        help=(
            "token-bucket rate limit per (route, tenant) in "
            "requests/second; over-limit answers 429 (default: off)"
        ),
    )
    serve.add_argument(
        "--executor",
        choices=list(EXECUTORS),
        default="threads",
        help=(
            "worker pool backend for recompute requests "
            "(default: threads)"
        ),
    )
    serve.add_argument(
        "--pool-warm",
        type=int,
        default=0,
        metavar="N",
        help=(
            "pre-fork N warm pool workers before accepting requests, "
            "so the first ?executor=processes recompute pays zero "
            "fork cost; requires --executor processes (default: 0)"
        ),
    )
    serve.add_argument(
        "--checkpoint-dir",
        default=None,
        metavar="PATH",
        help=(
            "persist last-known-good endpoint tables under this "
            "directory on drain, and restore them at startup so a "
            "restarted server can serve degraded reads immediately"
        ),
    )

    return parser


def _load(args) -> tuple[Platform, str]:
    source = Path(args.flow_file).read_text(encoding="utf-8")
    name = args.name or Path(args.flow_file).stem
    platform = Platform()
    platform.create_dashboard(name, source, data_dir=args.data)
    return platform, name


def _cmd_validate(args) -> int:
    source = Path(args.flow_file).read_text(encoding="utf-8")
    report = diagnose(source)
    print(report.render())
    return 0 if report.ok else 1


def _cmd_run(args) -> int:
    platform, name = _load(args)
    report = platform.run_dashboard(
        name,
        engine=args.engine,
        fault_profile=getattr(args, "fault_profile", None),
        parallelism=getattr(args, "parallelism", 1),
        executor=getattr(args, "executor", "threads"),
        pool=getattr(args, "pool", "auto"),
        small_job_bytes=getattr(args, "small_job_bytes", None),
    )
    print(
        f"ran {name!r} on the {report.engine} engine in "
        f"{report.seconds * 1000:.1f} ms; "
        f"{report.rows_produced} rows produced; "
        f"endpoints: {', '.join(report.endpoints) or '-'}",
        file=sys.stderr,
    )
    if report.retried_partitions or report.recovered_stages:
        print(
            f"resilience: {report.attempts} attempts, "
            f"{report.retried_partitions} retried partition(s), "
            f"{report.speculative_wins} speculative win(s), "
            f"{len(report.recovered_stages)} recovered stage(s): "
            f"{', '.join(report.recovered_stages) or '-'}",
            file=sys.stderr,
        )
    if getattr(args, "trace", False) or getattr(args, "profile", False):
        from repro.observability import (
            render_hotspot_table,
            render_span_tree,
        )

        spans = platform.observability.tracer.trace(
            report.trace_id or ""
        )
        if getattr(args, "trace", False):
            print(f"== trace {report.trace_id} ==", file=sys.stderr)
            print(render_span_tree(spans), file=sys.stderr)
        if getattr(args, "profile", False):
            print(
                f"== profile {report.trace_id} ==", file=sys.stderr
            )
            print(render_hotspot_table(spans), file=sys.stderr)
    if args.endpoint:
        table = platform.get_dashboard(name).endpoint(args.endpoint)
        sys.stdout.write(table.to_json_records(default=str, indent=2))
        print()
    return 0


def _cmd_refresh(args) -> int:
    import time

    from repro.dashboard.refresh import RefreshScheduler

    platform, name = _load(args)
    report = platform.run_dashboard(name)
    print(
        f"primed {name!r}: {report.rows_produced} rows, "
        f"endpoints: {', '.join(report.endpoints) or '-'}",
        file=sys.stderr,
    )
    scheduler = RefreshScheduler(
        platform,
        interval=args.interval or 1.0,
        dashboards=[name],
        incremental=not args.full,
    )
    exit_code = 0
    for cycle in range(max(args.cycles, 0)):
        if cycle and args.interval > 0:
            time.sleep(args.interval)
        result = scheduler.run_cycle()[name]
        if isinstance(result, Exception):
            print(f"cycle {cycle}: error: {result}", file=sys.stderr)
            exit_code = 1
            continue
        print(
            f"cycle {cycle}: {result.mode} in "
            f"{result.seconds * 1000:.1f} ms; "
            f"{result.delta_rows} delta row(s); "
            f"{len(result.flows_incremental)} incremental / "
            f"{len(result.flows_full)} full / "
            f"{len(result.flows_skipped)} skipped flow(s); "
            f"changed: {', '.join(result.endpoints_changed) or '-'}",
            file=sys.stderr,
        )
    if args.endpoint:
        table = platform.get_dashboard(name).endpoint(args.endpoint)
        sys.stdout.write(table.to_json_records(default=str, indent=2))
        print()
    return exit_code


def _cmd_render(args) -> int:
    platform, name = _load(args)
    platform.run_dashboard(name)
    view = platform.get_dashboard(name).render()
    if args.output:
        Path(args.output).write_text(view.html, encoding="utf-8")
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        print(view.text)
    return 0


def _cmd_explain(args) -> int:
    platform, name = _load(args)
    dashboard = platform.get_dashboard(name)
    print("== logical plan ==")
    print(dashboard.compiled.plan.describe())
    if dashboard.compiled.optimization.notes:
        print("== optimizations ==")
        for note in dashboard.compiled.optimization.notes:
            print(f"  {note}")
    platform.run_dashboard(name)
    print("== bottlenecks ==")
    print(dashboard.bottleneck_report())
    return 0


def _cmd_serve(args) -> int:
    from repro.server import ServingConfig, serve

    platform, name = _load(args)
    platform.run_dashboard(name)
    config = ServingConfig(
        workers=args.workers,
        queue_depth=args.queue_depth,
        request_timeout=args.request_timeout,
        rate_limit=args.rate_limit,
    )
    checkpoints = None
    if args.checkpoint_dir:
        from repro.resilience import DiskCheckpointStore

        checkpoints = DiskCheckpointStore(args.checkpoint_dir)
    pool_warm = args.pool_warm if args.executor == "processes" else 0
    server = serve(
        platform,
        port=args.port,
        config=config,
        checkpoints=checkpoints,
        pool_warm=pool_warm,
    )
    host, port = server.server_address
    print(
        f"serving {name!r} on http://{host}:{port}/dashboards "
        f"({config.workers} workers, queue {config.queue_depth}, "
        f"deadline {config.request_timeout}s)",
        file=sys.stderr,
    )
    if pool_warm:
        print(
            f"warm pool: {pool_warm} pre-forked process worker(s)",
            file=sys.stderr,
        )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("draining...", file=sys.stderr)
        server.shutdown()
    return 0


_COMMANDS = {
    "validate": _cmd_validate,
    "run": _cmd_run,
    "refresh": _cmd_refresh,
    "render": _cmd_render,
    "explain": _cmd_explain,
    "serve": _cmd_serve,
}


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ShareInsightsError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
