"""User-defined tasks: engine tasks and native map-reduce jobs.

The paper's §4.2 lists four task-extension categories.  Categories 1
(operators) and 2 (aggregates) register into :mod:`repro.tasks.map_ops`
and :mod:`repro.tasks.groupby`; this module provides categories 3 and 4:

3. **Engine tasks** (:class:`PythonTask`) — "transforming a data object via
   the underlying engine APIs": the user supplies a Python callable
   ``table -> table`` and gets full access to the data substrate, the
   equivalent of wrapping Spark APIs.  The paper notes tasks "can be
   written in either Java, JavaScript, Python or R"; in this reproduction
   the host language is Python.

4. **Native map-reduce jobs** (:class:`NativeMapReduceTask`) — existing MR
   jobs join the platform by exposing ``mapper(row) -> [(key, value)]``
   and ``reducer(key, values) -> row_dict(s)``.  The distributed engine
   runs these through its real shuffle.

Both are registered like any other task and "look no different from a
platform provided task" (§5.2 observation 2).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.data import Schema, Table
from repro.errors import TaskConfigError, TaskExecutionError
from repro.tasks.base import Task, TaskContext

TableFn = Callable[[Table], Table]
Mapper = Callable[[Mapping[str, Any]], Iterable[tuple[Any, Any]]]
Reducer = Callable[[Any, list[Any]], Iterable[Mapping[str, Any]]]


class PythonTask(Task):
    """``type: python`` — a user callable over whole tables.

    Configuration carries ``function`` (the callable, injected
    programmatically or via the extension loader) and optionally
    ``output_columns`` for static schema propagation.  Without declared
    output columns the validator treats the schema as pass-through.
    """

    type_name = "python"

    def _validate_config(self) -> None:
        fn = self.config.get("function")
        if not callable(fn):
            raise TaskConfigError(
                f"python task {self.name!r} needs a callable 'function'"
            )
        self._fn: TableFn = fn

    def output_schema(self, input_schemas: Sequence[Schema]) -> Schema:
        declared = self.config.get("output_columns")
        if declared:
            return Schema([str(c) for c in declared])
        return input_schemas[0]

    def apply(self, inputs: Sequence[Table], context: TaskContext) -> Table:
        table = self._single(inputs)
        try:
            result = self._fn(table)
        except Exception as exc:
            raise TaskExecutionError(
                f"python task {self.name!r} raised: {exc}"
            ) from exc
        if not isinstance(result, Table):
            raise TaskExecutionError(
                f"python task {self.name!r} must return a Table, "
                f"got {type(result).__name__}"
            )
        declared = self.config.get("output_columns")
        if declared and result.schema.names != [str(c) for c in declared]:
            raise TaskExecutionError(
                f"python task {self.name!r} declared output columns "
                f"{list(declared)} but returned {result.schema.names}"
            )
        return result


class NativeMapReduceTask(Task):
    """``type: native_mr`` — an existing map-reduce job as a task.

    ``mapper`` emits ``(key, value)`` pairs per input row; ``reducer``
    receives each key with its value list and yields output row dicts.
    ``output_columns`` declares the output schema.  On the local engine
    the shuffle is an in-process group-by; on the distributed engine the
    same callables run inside its partitioned shuffle.
    """

    type_name = "native_mr"

    def _validate_config(self) -> None:
        mapper = self.config.get("mapper")
        reducer = self.config.get("reducer")
        if not callable(mapper) or not callable(reducer):
            raise TaskConfigError(
                f"native_mr task {self.name!r} needs callable "
                f"'mapper' and 'reducer'"
            )
        if not self.config_list("output_columns"):
            raise TaskConfigError(
                f"native_mr task {self.name!r} needs 'output_columns'"
            )
        self._mapper: Mapper = mapper
        self._reducer: Reducer = reducer

    @property
    def output_columns(self) -> list[str]:
        return [str(c) for c in self.config_list("output_columns")]

    def output_schema(self, input_schemas: Sequence[Schema]) -> Schema:
        return Schema(self.output_columns)

    def apply(self, inputs: Sequence[Table], context: TaskContext) -> Table:
        table = self._single(inputs)
        shuffle: dict[Any, list[Any]] = {}
        key_order: list[Any] = []
        for row in table.rows():
            try:
                pairs = self._mapper(row)
            except Exception as exc:
                raise TaskExecutionError(
                    f"native_mr task {self.name!r} mapper raised: {exc}"
                ) from exc
            for key, value in pairs:
                if key not in shuffle:
                    shuffle[key] = []
                    key_order.append(key)
                shuffle[key].append(value)
        context.bump(
            f"task.{self.name}.shuffled",
            sum(len(v) for v in shuffle.values()),
        )
        schema = Schema(self.output_columns)
        output = Table.empty(schema)
        for key in key_order:
            try:
                rows = self._reducer(key, shuffle[key])
            except Exception as exc:
                raise TaskExecutionError(
                    f"native_mr task {self.name!r} reducer raised: {exc}"
                ) from exc
            for row in rows:
                output.append_row(row)
        return output
