"""``join`` tasks.

Configuration (paper Appendix A.1)::

    join_player_team:
      type: join
      left: players_tweets by player
      right: team_players by player
      join_condition: left outer
      project:
        players_tweets_date: date
        team_players_team: team

``left``/``right`` name the flow's input data objects and their join keys
(composite keys via ``by a, b``).  ``join_condition`` is one of ``inner``
(default), ``left outer``, ``right outer``, ``full outer`` —
case-insensitive, as the paper mixes ``left outer`` and ``LEFT OUTER``.

``project`` renames ``<input>_<column>`` keys to output columns; without
it the output is all left columns plus the right's non-key columns
(collisions suffixed ``_right``).
"""

from __future__ import annotations

import re
from typing import Any, Sequence

from repro.data import Column, Schema, Table
from repro.errors import TaskConfigError, TaskExecutionError
from repro.tasks.base import Task, TaskContext

_SIDE_RE = re.compile(
    r"^\s*(?P<name>[A-Za-z_][\w.]*)\s+by\s+(?P<keys>.+?)\s*$"
)

_CONDITIONS = {
    "inner": "inner",
    "left outer": "left",
    "left": "left",
    "right outer": "right",
    "right": "right",
    "full outer": "full",
    "full": "full",
    "outer": "full",
}


def _parse_side(text: str, task: str, side: str) -> tuple[str, list[str]]:
    match = _SIDE_RE.match(text)
    if match is None:
        raise TaskConfigError(
            f"join task {task!r}: {side} must look like "
            f"'<input> by <key>[, <key>...]', got {text!r}"
        )
    name = match.group("name")
    if name.startswith("D."):
        name = name[2:]
    keys = [k.strip() for k in match.group("keys").split(",") if k.strip()]
    return name, keys


class JoinTask(Task):
    """The ``type: join`` task (exactly two inputs)."""

    type_name = "join"
    arity = (2, 2)

    def _validate_config(self) -> None:
        for side in ("left", "right"):
            if side not in self.config:
                raise TaskConfigError(
                    f"join task {self.name!r} needs {side!r}"
                )
        self._left_name, self._left_keys = _parse_side(
            str(self.config["left"]), self.name, "left"
        )
        self._right_name, self._right_keys = _parse_side(
            str(self.config["right"]), self.name, "right"
        )
        if len(self._left_keys) != len(self._right_keys):
            raise TaskConfigError(
                f"join task {self.name!r}: key arity differs "
                f"({self._left_keys} vs {self._right_keys})"
            )
        condition = str(
            self.config.get("join_condition", "inner")
        ).strip().lower()
        if condition not in _CONDITIONS:
            raise TaskConfigError(
                f"join task {self.name!r}: unknown join_condition "
                f"{condition!r}; known: {sorted(set(_CONDITIONS))}"
            )
        self._condition = _CONDITIONS[condition]
        project = self.config.get("project")
        if project is not None and not isinstance(project, dict):
            raise TaskConfigError(
                f"join task {self.name!r}: 'project' must be a mapping"
            )

    @property
    def left_name(self) -> str:
        return self._left_name

    @property
    def right_name(self) -> str:
        return self._right_name

    def required_columns(self) -> set[str]:
        # The "primary" input for pushdown purposes is the left side.
        return set(self._left_keys)

    def _projection(self) -> list[tuple[str, str, str]] | None:
        """Parse ``project`` into ``(side, column, out_name)`` triples.

        Keys are prefixed with the input name (``players_tweets_date``);
        case-insensitive prefix match mirrors the paper's listings, which
        mix ``dim_teams_Team`` capitalisations.
        """
        project = self.config.get("project")
        if project is None:
            return None
        triples: list[tuple[str, str, str]] = []
        left_prefix = self._left_name.lower() + "_"
        right_prefix = self._right_name.lower() + "_"
        for key, out_name in project.items():
            lowered = str(key).lower()
            if lowered.startswith(left_prefix):
                triples.append(
                    ("left", str(key)[len(left_prefix):], str(out_name))
                )
            elif lowered.startswith(right_prefix):
                triples.append(
                    ("right", str(key)[len(right_prefix):], str(out_name))
                )
            else:
                raise TaskConfigError(
                    f"join task {self.name!r}: project key {key!r} does "
                    f"not start with {self._left_name!r} or "
                    f"{self._right_name!r}"
                )
        return triples

    def output_schema(self, input_schemas: Sequence[Schema]) -> Schema:
        left, right = input_schemas[0], input_schemas[1]
        left.require(self._left_keys, context=f"{self.name} (left)")
        right.require(self._right_keys, context=f"{self.name} (right)")
        projection = self._projection()
        if projection is not None:
            for side, column, _out in projection:
                schema = left if side == "left" else right
                schema.require([column], context=f"{self.name} project")
            return Schema(
                Column(out_name) for _side, _column, out_name in projection
            )
        columns = [Column(c.name) for c in left]
        taken = set(left.names)
        right_keys = set(self._right_keys)
        for column in right:
            if column.name in right_keys:
                continue
            name = column.name
            if name in taken:
                name = f"{name}_right"
            taken.add(name)
            columns.append(Column(name))
        return Schema(columns)

    def apply(self, inputs: Sequence[Table], context: TaskContext) -> Table:
        if len(inputs) != 2:
            raise TaskExecutionError(
                f"join task {self.name!r} needs exactly 2 inputs, "
                f"got {len(inputs)}"
            )
        left, right = self._ordered(inputs, context)
        left.schema.require(self._left_keys, context=f"{self.name} (left)")
        right.schema.require(
            self._right_keys, context=f"{self.name} (right)"
        )
        # Hash join: build on the right side.  Single-key joins hash
        # bare values, composite keys are built column-wise via zip —
        # no per-row generator-into-tuple.  Matched right rows are a
        # bytearray bitmap, so the right/full-outer sweep is one pass
        # over bytes instead of per-row set membership.
        single = len(self._right_keys) == 1
        build: dict[Any, list[int]] = {}
        right_key_cols = [right.column(k) for k in self._right_keys]
        if single:
            for i, key in enumerate(right_key_cols[0]):
                build.setdefault(key, []).append(i)
        else:
            for i, key in enumerate(zip(*right_key_cols)):
                build.setdefault(key, []).append(i)
        matched = bytearray(right.num_rows)
        keep_unmatched_left = self._condition in ("left", "full")
        pairs: list[tuple[int | None, int | None]] = []
        append = pairs.append
        left_key_cols = [left.column(k) for k in self._left_keys]
        if single:
            for i, key in enumerate(left_key_cols[0]):
                matches = build.get(key)
                if matches and key is not None:
                    for j in matches:
                        append((i, j))
                        matched[j] = 1
                elif keep_unmatched_left:
                    append((i, None))
        else:
            for i, key in enumerate(zip(*left_key_cols)):
                matches = build.get(key)
                if matches and all(k is not None for k in key):
                    for j in matches:
                        append((i, j))
                        matched[j] = 1
                elif keep_unmatched_left:
                    append((i, None))
        if self._condition in ("right", "full"):
            pairs.extend(
                (None, j) for j, hit in enumerate(matched) if not hit
            )
        context.bump(f"task.{self.name}.pairs", len(pairs))
        return self._materialize(left, right, pairs)

    def _ordered(
        self, inputs: Sequence[Table], context: TaskContext
    ) -> tuple[Table, Table]:
        """Order inputs as (left, right) using flow input names if known."""
        names = getattr(context, "input_names", None)
        if names and len(names) == 2:
            lowered = [n.lower() for n in names]
            if (
                lowered[0] == self._right_name.lower()
                and lowered[1] == self._left_name.lower()
            ):
                return inputs[1], inputs[0]
        return inputs[0], inputs[1]

    def _materialize(
        self,
        left: Table,
        right: Table,
        pairs: list[tuple[int | None, int | None]],
    ) -> Table:
        projection = self._projection()
        schema = self.output_schema([left.schema, right.schema])
        if projection is not None:
            sources = []
            for side, column, _out in projection:
                table = left if side == "left" else right
                sources.append((side, table.column(column)))
            data: dict[str, list[Any]] = {
                name: [] for name in schema.names
            }
            for li, ri in pairs:
                for (side, values), name in zip(sources, schema.names):
                    index = li if side == "left" else ri
                    data[name].append(
                        values[index] if index is not None else None
                    )
            return Table(schema, data)
        # Default projection: left columns, then right non-key columns.
        right_keys = set(self._right_keys)
        right_cols = [c for c in right.schema.names if c not in right_keys]
        data = {name: [] for name in schema.names}
        left_names = left.schema.names
        for li, ri in pairs:
            for name in left_names:
                data[name].append(
                    left.column(name)[li] if li is not None else None
                )
            for name, out_name in zip(
                right_cols, schema.names[len(left_names):]
            ):
                data[out_name].append(
                    right.column(name)[ri] if ri is not None else None
                )
        return Table(schema, data)
