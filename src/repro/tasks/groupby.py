"""``groupby`` tasks and the user-defined-aggregate API.

Configuration (paper Fig. 8)::

    get_svn_jira_count:
      type: groupby
      groupby: [project, year]
      aggregates:
        - operator: sum
          apply_on: noOfCheckins
          out_field: total_checkins

With no ``aggregates`` the task counts rows per group into a ``count``
column (Fig. 23).  ``orderby_aggregates: true`` sorts groups by the first
aggregate, descending (Appendix A.2 ``aggregate_by_word``).

List-valued group columns (produced by ``extract_words``) are exploded
into one row per element before grouping, which is how the tag-cloud
pipeline turns token lists into word counts.

User-defined aggregates — category 2 of the §4.2 extension API — register
via :func:`register_aggregate` with a factory returning an object with
``add(value)`` and ``result()``.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.data import Column, Schema, Table
from repro.errors import TaskConfigError
from repro.tasks.base import Task, TaskContext


class Aggregate:
    """Incremental aggregate protocol: feed values, read a result."""

    def add(self, value: Any) -> None:
        raise NotImplementedError

    def result(self) -> Any:
        raise NotImplementedError


class _Sum(Aggregate):
    def __init__(self) -> None:
        self._total: float | int = 0
        self._seen = False

    def add(self, value: Any) -> None:
        if value is None:
            return
        try:
            self._total += value
        except TypeError:
            self._total += float(value)
        self._seen = True

    def result(self) -> Any:
        return self._total if self._seen else None


class _Count(Aggregate):
    def __init__(self) -> None:
        self._count = 0

    def add(self, value: Any) -> None:
        self._count += 1

    def result(self) -> int:
        return self._count


class _CountNonNull(Aggregate):
    def __init__(self) -> None:
        self._count = 0

    def add(self, value: Any) -> None:
        if value is not None:
            self._count += 1

    def result(self) -> int:
        return self._count


class _CountDistinct(Aggregate):
    def __init__(self) -> None:
        self._seen: set[Any] = set()

    def add(self, value: Any) -> None:
        if value is not None:
            self._seen.add(value)

    def result(self) -> int:
        return len(self._seen)


class _Avg(Aggregate):
    def __init__(self) -> None:
        self._total = 0.0
        self._count = 0

    def add(self, value: Any) -> None:
        if value is None:
            return
        self._total += float(value)
        self._count += 1

    def result(self) -> float | None:
        return self._total / self._count if self._count else None


class _Min(Aggregate):
    def __init__(self) -> None:
        self._value: Any = None

    def add(self, value: Any) -> None:
        if value is None:
            return
        if self._value is None or value < self._value:
            self._value = value

    def result(self) -> Any:
        return self._value


class _Max(Aggregate):
    def __init__(self) -> None:
        self._value: Any = None

    def add(self, value: Any) -> None:
        if value is None:
            return
        if self._value is None or value > self._value:
            self._value = value

    def result(self) -> Any:
        return self._value


class _Collect(Aggregate):
    def __init__(self) -> None:
        self._values: list[Any] = []

    def add(self, value: Any) -> None:
        if value is not None:
            self._values.append(value)

    def result(self) -> list[Any]:
        return self._values


class _First(Aggregate):
    def __init__(self) -> None:
        self._value: Any = None
        self._seen = False

    def add(self, value: Any) -> None:
        if not self._seen and value is not None:
            self._value = value
            self._seen = True

    def result(self) -> Any:
        return self._value


_AGGREGATE_FACTORIES: dict[str, Callable[[], Aggregate]] = {
    "sum": _Sum,
    "count": _Count,
    "count_nonnull": _CountNonNull,
    "count_distinct": _CountDistinct,
    "avg": _Avg,
    "mean": _Avg,
    "min": _Min,
    "max": _Max,
    "collect": _Collect,
    "first": _First,
}


def register_aggregate(name: str, factory: Callable[[], Aggregate]) -> None:
    """Register a user-defined aggregate (§4.2 category 2)."""
    _AGGREGATE_FACTORIES[name.lower()] = factory


def aggregate_names() -> list[str]:
    return sorted(_AGGREGATE_FACTORIES)


def _explode(table: Table, columns: Sequence[str]) -> Table:
    """One row per element of any list-valued cell in ``columns``."""
    needs_explode = any(
        isinstance(v, list)
        for column in columns
        for v in table.column(column)
    )
    if not needs_explode:
        return table
    records: list[dict[str, Any]] = []
    explode_set = set(columns)
    for row in table.rows():
        list_columns = [
            c for c in explode_set if isinstance(row.get(c), list)
        ]
        if not list_columns:
            records.append(row)
            continue
        # Cartesian explode is overkill for pipelines here; explode each
        # list column independently only when a single one is a list.
        column = list_columns[0]
        for value in row[column]:
            new_row = dict(row)
            new_row[column] = value
            records.append(new_row)
    return Table.from_rows(table.schema, records)


class GroupByTask(Task):
    """The ``type: groupby`` task."""

    type_name = "groupby"

    def _validate_config(self) -> None:
        if not self.config_list("groupby"):
            raise TaskConfigError(
                f"groupby task {self.name!r} needs 'groupby' columns"
            )
        for spec in self._aggregate_specs():
            operator = str(spec.get("operator", "")).lower()
            if operator not in _AGGREGATE_FACTORIES:
                raise TaskConfigError(
                    f"groupby task {self.name!r}: unknown aggregate "
                    f"{operator!r}; known: {aggregate_names()}"
                )
            if operator not in ("count",) and "apply_on" not in spec:
                raise TaskConfigError(
                    f"groupby task {self.name!r}: aggregate {operator!r} "
                    f"needs 'apply_on'"
                )

    def _aggregate_specs(self) -> list[dict[str, Any]]:
        specs = self.config.get("aggregates")
        if not specs:
            # Fig. 23: bare groupby yields a count column.
            return [{"operator": "count", "out_field": "count"}]
        if not isinstance(specs, list):
            raise TaskConfigError(
                f"groupby task {self.name!r}: 'aggregates' must be a list"
            )
        return [dict(s) for s in specs]

    @property
    def group_columns(self) -> list[str]:
        return [str(c) for c in self.config_list("groupby")]

    def required_columns(self) -> set[str]:
        needed = set(self.group_columns)
        for spec in self._aggregate_specs():
            if "apply_on" in spec:
                needed.add(str(spec["apply_on"]))
        return needed

    def output_schema(self, input_schemas: Sequence[Schema]) -> Schema:
        schema = input_schemas[0]
        schema.require(self.required_columns(), context=self.name)
        columns = [schema[c] for c in self.group_columns]
        for spec in self._aggregate_specs():
            out_field = str(
                spec.get("out_field")
                or spec.get("apply_on")
                or spec["operator"]
            )
            columns.append(Column(out_field))
        return Schema(columns)

    def apply(self, inputs: Sequence[Table], context: TaskContext) -> Table:
        table = self._single(inputs)
        group_columns = self.group_columns
        table.schema.require(group_columns, context=self.name)
        table = _explode(table, group_columns)
        specs = self._aggregate_specs()
        out_fields = []
        for spec in specs:
            out_fields.append(
                str(
                    spec.get("out_field")
                    or spec.get("apply_on")
                    or spec["operator"]
                )
            )
        groups: dict[tuple, list[Aggregate]] = {}
        order: list[tuple] = []
        group_cols = [table.column(c) for c in group_columns]
        apply_cols = [
            table.column(str(spec["apply_on"])) if "apply_on" in spec else None
            for spec in specs
        ]
        factories = [
            _AGGREGATE_FACTORIES[str(spec["operator"]).lower()]
            for spec in specs
        ]
        for i in range(table.num_rows):
            key = tuple(col[i] for col in group_cols)
            aggs = groups.get(key)
            if aggs is None:
                aggs = [factory() for factory in factories]
                groups[key] = aggs
                order.append(key)
            for agg, col in zip(aggs, apply_cols):
                agg.add(col[i] if col is not None else None)
        records = []
        for key in order:
            record = dict(zip(group_columns, key))
            for out_field, agg in zip(out_fields, groups[key]):
                record[out_field] = agg.result()
            records.append(record)
        schema = self.output_schema([table.schema])
        result = Table.from_rows(schema, records)
        if _truthy(self.config.get("orderby_aggregates")):
            result = result.sorted_by([out_fields[0]], descending=[True])
        context.bump(f"task.{self.name}.groups", len(order))
        return result


def _truthy(value: Any) -> bool:
    if isinstance(value, str):
        return value.strip().lower() in ("true", "yes", "1")
    return bool(value)
