"""``groupby`` tasks and the user-defined-aggregate API.

Configuration (paper Fig. 8)::

    get_svn_jira_count:
      type: groupby
      groupby: [project, year]
      aggregates:
        - operator: sum
          apply_on: noOfCheckins
          out_field: total_checkins

With no ``aggregates`` the task counts rows per group into a ``count``
column (Fig. 23).  ``orderby_aggregates: true`` sorts groups by the first
aggregate, descending (Appendix A.2 ``aggregate_by_word``).

List-valued group columns (produced by ``extract_words``) are exploded
into one row per element before grouping, which is how the tag-cloud
pipeline turns token lists into word counts.

User-defined aggregates — category 2 of the §4.2 extension API — register
via :func:`register_aggregate` with a factory returning an object with
``add(value)`` and ``result()``.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Sequence

from repro.data import Column, Schema, Table
from repro.data.kernels import group_indices
from repro.errors import TaskConfigError
from repro.tasks.base import Task, TaskContext


class Aggregate:
    """Incremental aggregate protocol: feed values, read a result."""

    def add(self, value: Any) -> None:
        raise NotImplementedError

    def result(self) -> Any:
        raise NotImplementedError


class _Sum(Aggregate):
    def __init__(self) -> None:
        self._total: float | int = 0
        self._seen = False

    def add(self, value: Any) -> None:
        if value is None:
            return
        try:
            self._total += value
        except TypeError:
            self._total += float(value)
        self._seen = True

    def result(self) -> Any:
        return self._total if self._seen else None


class _Count(Aggregate):
    def __init__(self) -> None:
        self._count = 0

    def add(self, value: Any) -> None:
        self._count += 1

    def result(self) -> int:
        return self._count


class _CountNonNull(Aggregate):
    def __init__(self) -> None:
        self._count = 0

    def add(self, value: Any) -> None:
        if value is not None:
            self._count += 1

    def result(self) -> int:
        return self._count


class _CountDistinct(Aggregate):
    def __init__(self) -> None:
        self._seen: set[Any] = set()

    def add(self, value: Any) -> None:
        if value is not None:
            self._seen.add(value)

    def result(self) -> int:
        return len(self._seen)


class _Avg(Aggregate):
    def __init__(self) -> None:
        self._total = 0.0
        self._count = 0

    def add(self, value: Any) -> None:
        if value is None:
            return
        self._total += float(value)
        self._count += 1

    def result(self) -> float | None:
        return self._total / self._count if self._count else None


class _Min(Aggregate):
    def __init__(self) -> None:
        self._value: Any = None

    def add(self, value: Any) -> None:
        if value is None:
            return
        if self._value is None or value < self._value:
            self._value = value

    def result(self) -> Any:
        return self._value


class _Max(Aggregate):
    def __init__(self) -> None:
        self._value: Any = None

    def add(self, value: Any) -> None:
        if value is None:
            return
        if self._value is None or value > self._value:
            self._value = value

    def result(self) -> Any:
        return self._value


class _Collect(Aggregate):
    def __init__(self) -> None:
        self._values: list[Any] = []

    def add(self, value: Any) -> None:
        if value is not None:
            self._values.append(value)

    def result(self) -> list[Any]:
        return self._values


class _First(Aggregate):
    def __init__(self) -> None:
        self._value: Any = None
        self._seen = False

    def add(self, value: Any) -> None:
        if not self._seen and value is not None:
            self._value = value
            self._seen = True

    def result(self) -> Any:
        return self._value


_AGGREGATE_FACTORIES: dict[str, Callable[[], Aggregate]] = {
    "sum": _Sum,
    "count": _Count,
    "count_nonnull": _CountNonNull,
    "count_distinct": _CountDistinct,
    "avg": _Avg,
    "mean": _Avg,
    "min": _Min,
    "max": _Max,
    "collect": _Collect,
    "first": _First,
}


def register_aggregate(name: str, factory: Callable[[], Aggregate]) -> None:
    """Register a user-defined aggregate (§4.2 category 2)."""
    _AGGREGATE_FACTORIES[name.lower()] = factory


# -- bulk aggregation --------------------------------------------------------
# Whole-bucket implementations of the built-in aggregates, used by the
# group-by hot path: one C-speed pass over the bucket's values instead of
# a Python method call per row.  Each is value-for-value identical to
# feeding the incremental object (same ordering, same error behaviour);
# user-registered aggregates keep the incremental protocol.


def _bulk_sum(values: list[Any]) -> Any:
    present = [v for v in values if v is not None]
    if not present:
        return None
    try:
        return sum(present)
    except TypeError:
        total: Any = 0
        for v in present:
            try:
                total += v
            except TypeError:
                total += float(v)
        return total


def _bulk_avg(values: list[Any]) -> float | None:
    present = [float(v) for v in values if v is not None]
    return sum(present) / len(present) if present else None


def _bulk_min(values: list[Any]) -> Any:
    present = [v for v in values if v is not None]
    return min(present) if present else None


def _bulk_max(values: list[Any]) -> Any:
    present = [v for v in values if v is not None]
    return max(present) if present else None


#: factories as shipped — bulk fast paths only apply while the operator
#: still maps to the built-in (a user re-registering e.g. "sum" wins)
_BUILTIN_FACTORIES: dict[str, Callable[[], Aggregate]] = dict(
    _AGGREGATE_FACTORIES
)


def _is_builtin(operator: str) -> bool:
    return _AGGREGATE_FACTORIES.get(operator) is _BUILTIN_FACTORIES.get(
        operator
    )


_BULK_AGGREGATORS: dict[str, Callable[[list[Any]], Any]] = {
    "sum": _bulk_sum,
    "count": len,
    "count_nonnull": lambda vs: sum(1 for v in vs if v is not None),
    "count_distinct": lambda vs: len({v for v in vs if v is not None}),
    "avg": _bulk_avg,
    "mean": _bulk_avg,
    "min": _bulk_min,
    "max": _bulk_max,
    "collect": lambda vs: [v for v in vs if v is not None],
    "first": lambda vs: next((v for v in vs if v is not None), None),
}


def aggregate_names() -> list[str]:
    return sorted(_AGGREGATE_FACTORIES)


def _explode(table: Table, columns: Sequence[str]) -> Table:
    """One row per combination of list-valued cells in ``columns``.

    A row whose cells are lists in *several* of the explode columns
    expands to their cartesian product — every column must come out
    scalar, or the group keys built from them stay unhashable.  Output
    is assembled column-at-a-time; no row dicts.
    """
    explode_names = [
        c
        for c in dict.fromkeys(columns)
        if any(isinstance(v, list) for v in table.column(c))
    ]
    if not explode_names:
        return table
    explode_set = set(explode_names)
    names = table.schema.names
    source = [table.column(n) for n in names]
    out: list[list[Any]] = [[] for _ in names]
    list_positions = [
        j for j, n in enumerate(names) if n in explode_set
    ]
    for i in range(table.num_rows):
        pools = []
        for j in list_positions:
            cell = source[j][i]
            if isinstance(cell, list):
                pools.append((j, cell))
        if not pools:
            for j, column in enumerate(source):
                out[j].append(column[i])
            continue
        for combo in itertools.product(*(cells for _j, cells in pools)):
            replacement = {
                j: value for (j, _cells), value in zip(pools, combo)
            }
            for j, column in enumerate(source):
                out[j].append(replacement.get(j, column[i]))
    return Table(table.schema, dict(zip(names, out)))


class GroupByTask(Task):
    """The ``type: groupby`` task."""

    type_name = "groupby"

    def _validate_config(self) -> None:
        if not self.config_list("groupby"):
            raise TaskConfigError(
                f"groupby task {self.name!r} needs 'groupby' columns"
            )
        for spec in self._aggregate_specs():
            operator = str(spec.get("operator", "")).lower()
            if operator not in _AGGREGATE_FACTORIES:
                raise TaskConfigError(
                    f"groupby task {self.name!r}: unknown aggregate "
                    f"{operator!r}; known: {aggregate_names()}"
                )
            if operator not in ("count",) and "apply_on" not in spec:
                raise TaskConfigError(
                    f"groupby task {self.name!r}: aggregate {operator!r} "
                    f"needs 'apply_on'"
                )

    def _aggregate_specs(self) -> list[dict[str, Any]]:
        specs = self.config.get("aggregates")
        if not specs:
            # Fig. 23: bare groupby yields a count column.
            return [{"operator": "count", "out_field": "count"}]
        if not isinstance(specs, list):
            raise TaskConfigError(
                f"groupby task {self.name!r}: 'aggregates' must be a list"
            )
        return [dict(s) for s in specs]

    @property
    def group_columns(self) -> list[str]:
        return [str(c) for c in self.config_list("groupby")]

    def required_columns(self) -> set[str]:
        needed = set(self.group_columns)
        for spec in self._aggregate_specs():
            if "apply_on" in spec:
                needed.add(str(spec["apply_on"]))
        return needed

    def output_schema(self, input_schemas: Sequence[Schema]) -> Schema:
        schema = input_schemas[0]
        schema.require(self.required_columns(), context=self.name)
        columns = [schema[c] for c in self.group_columns]
        for spec in self._aggregate_specs():
            out_field = str(
                spec.get("out_field")
                or spec.get("apply_on")
                or spec["operator"]
            )
            columns.append(Column(out_field))
        return Schema(columns)

    def apply(self, inputs: Sequence[Table], context: TaskContext) -> Table:
        table = self._single(inputs)
        group_columns = self.group_columns
        table.schema.require(group_columns, context=self.name)
        table = _explode(table, group_columns)
        specs = self._aggregate_specs()
        out_fields = []
        for spec in specs:
            out_fields.append(
                str(
                    spec.get("out_field")
                    or spec.get("apply_on")
                    or spec["operator"]
                )
            )
        # Encoded key columns group by dictionary code (no hashing);
        # plain columns keep the historical boxed loop.
        keys, buckets = group_indices(
            table._kernel_columns(group_columns)
        )
        data: dict[str, list[Any]] = {}
        if len(group_columns) == 1:
            data[group_columns[0]] = list(keys)
        else:
            for j, column in enumerate(group_columns):
                data[column] = [key[j] for key in keys]
        for spec, out_field in zip(specs, out_fields):
            operator = str(spec["operator"]).lower()
            col = (
                table.column(str(spec["apply_on"]))
                if "apply_on" in spec
                else None
            )
            bulk = _BULK_AGGREGATORS.get(operator)
            if bulk is not None and _is_builtin(operator):
                if col is None:
                    # Bare count: no value column to gather.
                    data[out_field] = [len(b) for b in buckets]
                else:
                    data[out_field] = [
                        bulk([col[i] for i in b]) for b in buckets
                    ]
            else:
                factory = _AGGREGATE_FACTORIES[operator]
                results = []
                for bucket in buckets:
                    agg = factory()
                    for i in bucket:
                        agg.add(col[i] if col is not None else None)
                    results.append(agg.result())
                data[out_field] = results
        schema = self.output_schema([table.schema])
        result = Table(schema, {n: data[n] for n in schema.names})
        if _truthy(self.config.get("orderby_aggregates")):
            result = result.sorted_by([out_fields[0]], descending=[True])
        context.bump(f"task.{self.name}.groups", len(keys))
        return result


def _truthy(value: Any) -> bool:
    if isinstance(value, str):
        return value.strip().lower() in ("true", "yes", "1")
    return bool(value)
