"""Data-cleansing tasks.

"It is a common experience that data cleaning takes a significant
percentage of the total time" (paper §4.5.3, citing Dasu & Johnson), and
§5.2 obs. 4 notes that real competition data "forced teams to define
more elaborate pipelines to cleanse the data".  These tasks are that
vocabulary:

* ``fill_na`` — replace missing values per column (constant or a
  column-level statistic),
* ``cast`` — coerce columns to declared types, with a policy for cells
  that will not convert,
* ``sample`` — seeded row sampling (fraction or fixed n) for working on
  a slice of a huge feed.
"""

from __future__ import annotations

import random
from typing import Any, Sequence

from repro.data import Column, ColumnType, Schema, Table
from repro.errors import TaskConfigError, TaskExecutionError
from repro.tasks.base import Task, TaskContext

_STRATEGIES = ("constant", "mean", "min", "max", "mode")


class FillNaTask(Task):
    """``type: fill_na`` — replace missing cells.

    Configuration::

        fill_missing:
          type: fill_na
          columns:
            rating: 0              # constant
            region: 'unknown'
          strategy: constant       # or mean/min/max/mode with a list
    """

    type_name = "fill_na"

    def _validate_config(self) -> None:
        columns = self.config.get("columns")
        strategy = str(self.config.get("strategy", "constant")).lower()
        if strategy not in _STRATEGIES:
            raise TaskConfigError(
                f"fill_na task {self.name!r}: unknown strategy "
                f"{strategy!r}; known: {_STRATEGIES}"
            )
        self._strategy = strategy
        if strategy == "constant":
            if not isinstance(columns, dict) or not columns:
                raise TaskConfigError(
                    f"fill_na task {self.name!r} with constant strategy "
                    f"needs a 'columns' mapping of column: value"
                )
            self._fills: dict[str, Any] = dict(columns)
        else:
            names = columns if isinstance(columns, list) else None
            if not names:
                raise TaskConfigError(
                    f"fill_na task {self.name!r} with {strategy!r} "
                    f"strategy needs a 'columns' list"
                )
            self._fills = {str(c): None for c in names}

    def required_columns(self) -> set[str]:
        return set(self._fills)

    def preserves_rows(self) -> bool:
        return True

    def partition_local(self) -> bool:
        # Statistic strategies (mean/mode/...) need the whole column.
        return self._strategy == "constant"

    def output_schema(self, input_schemas: Sequence[Schema]) -> Schema:
        schema = input_schemas[0]
        schema.require(self._fills, context=self.name)
        return schema

    def apply(self, inputs: Sequence[Table], context: TaskContext) -> Table:
        table = self._single(inputs)
        table.schema.require(self._fills, context=self.name)
        result = table
        for name, constant in self._fills.items():
            values = result.column(name)
            fill = (
                constant
                if self._strategy == "constant"
                else _statistic(values, self._strategy, self.name, name)
            )
            filled = [fill if v is None else v for v in values]
            result = result.with_column(name, filled)
        context.bump(f"task.{self.name}.rows", table.num_rows)
        return result


def _statistic(
    values: list[Any], strategy: str, task: str, column: str
) -> Any:
    present = [v for v in values if v is not None]
    if not present:
        return None
    if strategy == "mode":
        counts: dict[Any, int] = {}
        for value in present:
            key = str(value) if isinstance(value, (list, dict)) else value
            counts[key] = counts.get(key, 0) + 1
        return max(counts.items(), key=lambda kv: kv[1])[0]
    try:
        if strategy == "mean":
            return sum(present) / len(present)
        if strategy == "min":
            return min(present)
        if strategy == "max":
            return max(present)
    except TypeError as exc:
        raise TaskExecutionError(
            f"fill_na task {task!r}: column {column!r} is not "
            f"numeric/orderable for strategy {strategy!r}"
        ) from exc
    raise TaskConfigError(f"unknown strategy {strategy!r}")


_CAST_TYPES = {
    "int": ColumnType.INT,
    "float": ColumnType.FLOAT,
    "string": ColumnType.STRING,
    "bool": ColumnType.BOOL,
}


class CastTask(Task):
    """``type: cast`` — coerce columns to declared logical types.

    ``on_error`` decides what happens to unconvertible cells:
    ``null`` (default — dirty data becomes missing data), ``keep``
    (leave the original value), or ``fail``.
    """

    type_name = "cast"

    def _validate_config(self) -> None:
        columns = self.config.get("columns")
        if not isinstance(columns, dict) or not columns:
            raise TaskConfigError(
                f"cast task {self.name!r} needs a 'columns' mapping of "
                f"column: type"
            )
        self._casts: dict[str, ColumnType] = {}
        for name, type_name in columns.items():
            ctype = _CAST_TYPES.get(str(type_name).lower())
            if ctype is None:
                raise TaskConfigError(
                    f"cast task {self.name!r}: unknown type "
                    f"{type_name!r}; known: {sorted(_CAST_TYPES)}"
                )
            self._casts[str(name)] = ctype
        self._on_error = str(self.config.get("on_error", "null")).lower()
        if self._on_error not in ("null", "keep", "fail"):
            raise TaskConfigError(
                f"cast task {self.name!r}: on_error must be null, "
                f"keep or fail"
            )

    def required_columns(self) -> set[str]:
        return set(self._casts)

    def preserves_rows(self) -> bool:
        return True

    def partition_local(self) -> bool:
        return True

    def output_schema(self, input_schemas: Sequence[Schema]) -> Schema:
        schema = input_schemas[0]
        schema.require(self._casts, context=self.name)
        for name, ctype in self._casts.items():
            schema = schema.with_column(Column(name, type=ctype))
        # with_column appends; rebuild in original order
        original = input_schemas[0].names
        return Schema(schema[n] for n in original)

    def apply(self, inputs: Sequence[Table], context: TaskContext) -> Table:
        table = self._single(inputs)
        table.schema.require(self._casts, context=self.name)
        result = table
        converted_away = 0
        for name, ctype in self._casts.items():
            values = []
            for value in result.column(name):
                cast, ok = _cast_cell(value, ctype)
                if ok:
                    values.append(cast)
                elif self._on_error == "null":
                    values.append(None)
                    converted_away += 1
                elif self._on_error == "keep":
                    values.append(value)
                else:
                    raise TaskExecutionError(
                        f"cast task {self.name!r}: cannot cast "
                        f"{value!r} to {ctype.value} in column {name!r}"
                    )
            result = result.with_column(name, values)
        # Restore column order and carry the declared types.
        result = result.select(table.schema.names)
        result = Table(self.output_schema([table.schema]), {
            n: result.column(n) for n in table.schema.names
        })
        context.bump(f"task.{self.name}.nullified", converted_away)
        return result


def _cast_cell(value: Any, ctype: ColumnType) -> tuple[Any, bool]:
    if value is None:
        return None, True
    try:
        if ctype is ColumnType.INT:
            if isinstance(value, bool):
                return int(value), True
            return int(float(value)), True
        if ctype is ColumnType.FLOAT:
            return float(value), True
        if ctype is ColumnType.STRING:
            return str(value), True
        if ctype is ColumnType.BOOL:
            if isinstance(value, str):
                lowered = value.strip().lower()
                if lowered in ("true", "yes", "1"):
                    return True, True
                if lowered in ("false", "no", "0"):
                    return False, True
                return None, False
            return bool(value), True
    except (TypeError, ValueError):
        return None, False
    return None, False


class SampleTask(Task):
    """``type: sample`` — seeded row sampling.

    One of ``fraction`` (0..1) or ``n`` (row count); ``seed`` makes the
    sample reproducible across runs (default 0).
    """

    type_name = "sample"

    def _validate_config(self) -> None:
        fraction = self.config.get("fraction")
        n = self.config.get("n")
        if (fraction is None) == (n is None):
            raise TaskConfigError(
                f"sample task {self.name!r} needs exactly one of "
                f"'fraction' or 'n'"
            )
        if fraction is not None:
            self._fraction: float | None = float(fraction)
            if not 0 <= self._fraction <= 1:
                raise TaskConfigError(
                    f"sample task {self.name!r}: fraction must be in "
                    f"[0, 1]"
                )
            self._n = None
        else:
            self._fraction = None
            self._n = int(n)
            if self._n < 0:
                raise TaskConfigError(
                    f"sample task {self.name!r}: n must be >= 0"
                )
        self._seed = int(self.config.get("seed", 0))

    def preserves_rows(self) -> bool:
        return True

    def output_schema(self, input_schemas: Sequence[Schema]) -> Schema:
        return input_schemas[0]

    def apply(self, inputs: Sequence[Table], context: TaskContext) -> Table:
        table = self._single(inputs)
        rng = random.Random(self._seed)
        if self._fraction is not None:
            indices = [
                i
                for i in range(table.num_rows)
                if rng.random() < self._fraction
            ]
        else:
            count = min(self._n or 0, table.num_rows)
            indices = sorted(rng.sample(range(table.num_rows), count))
        context.bump(f"task.{self.name}.sampled", len(indices))
        return table.take(indices)
