"""Task base classes and execution context.

A task is configured once in the ``T:`` section and may be reused in many
flows "as long as the preceding data source has the column the task
consumes" (paper §3.3).  That contract is captured by two methods:

* :meth:`Task.output_schema` — static schema propagation, used by the
  flow-file validator to type-check whole pipelines before running them;
* :meth:`Task.apply` — the actual table transformation.

Tasks can add columns (join), reduce columns (group) or preserve columns
(filter); ``output_schema`` is the single source of truth for which.

:class:`TaskContext` carries everything a task may need at run time beyond
its inputs: widget selections (for §3.5.1 interaction flows), dictionary
files (for ``extract`` operators), and the dashboard's data directory.
"""

from __future__ import annotations

import abc
import json
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.data import Schema, Table
from repro.errors import TaskConfigError, TaskExecutionError


@dataclass
class WidgetSelection:
    """The current selection state of one widget, seen as data.

    The paper "treat[s] widgets as data objects and widget columns as data
    columns" (§3.5.1).  A selection is either a set of discrete values
    (List, BubbleChart click) or an inclusive range (Slider) per widget
    column.
    """

    values: dict[str, list[Any]] = field(default_factory=dict)
    ranges: dict[str, tuple[Any, Any]] = field(default_factory=dict)

    def for_column(self, column: str) -> "WidgetSelection":
        selection = WidgetSelection()
        if column in self.values:
            selection.values[column] = self.values[column]
        if column in self.ranges:
            selection.ranges[column] = self.ranges[column]
        return selection

    def is_empty(self) -> bool:
        return not self.values and not self.ranges


class TaskContext:
    """Runtime environment handed to every task application."""

    def __init__(
        self,
        data_dir: str | Path | None = None,
        dictionaries: Mapping[str, Mapping[str, str]] | None = None,
        widget_selections: Mapping[str, WidgetSelection] | None = None,
    ):
        self.data_dir = Path(data_dir) if data_dir else None
        self._dictionaries = {
            name: dict(mapping)
            for name, mapping in (dictionaries or {}).items()
        }
        self.widget_selections = dict(widget_selections or {})
        #: execution counters, populated by tasks (rows in/out etc.)
        self.counters: dict[str, int] = {}
        # Partition attempts may run on worker threads; counter updates
        # and cache creation must not lose increments under contention.
        self._lock = threading.Lock()
        self._value_caches: dict[str, dict[Any, Any]] = {}

    def __getstate__(self) -> dict[str, Any]:
        # Contexts cross into warm-pool workers by pickle; the lock is
        # process-local and recreated on the other side.  Worker-side
        # counter/cache mutations stay in the worker — the same
        # semantics fork-inherited contexts already have.
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def bump(self, counter: str, amount: int = 1) -> None:
        with self._lock:
            self.counters[counter] = self.counters.get(counter, 0) + amount

    def value_cache(self, key: str) -> dict[Any, Any]:
        """A per-run memo dict scoped to ``key`` (usually a task
        fingerprint).

        Deterministic per-value operators use it to skip recomputing the
        same transformation — across partitions and across flows that
        apply the same task to the same feed.  The context dies with the
        run, so there is nothing to invalidate.
        """
        with self._lock:
            return self._value_caches.setdefault(key, {})

    def dictionary(self, name: str) -> dict[str, str]:
        """Resolve a dictionary by name, loading from data_dir if needed.

        Dictionary files map surface forms to canonical names, one
        ``surface,canonical`` (or ``surface\tcanonical``) pair per line;
        a line with a single token maps the token to itself.
        """
        if name in self._dictionaries:
            return self._dictionaries[name]
        if self.data_dir is not None:
            path = self.data_dir / name
            if path.exists():
                mapping = _parse_dictionary(path.read_text(encoding="utf-8"))
                self._dictionaries[name] = mapping
                return mapping
        raise TaskConfigError(
            f"dictionary {name!r} not provided and not found in data dir"
        )

    def add_dictionary(self, name: str, mapping: Mapping[str, str]) -> None:
        self._dictionaries[name] = dict(mapping)

    def widget_selection(self, widget: str) -> WidgetSelection:
        return self.widget_selections.get(widget, WidgetSelection())


def _parse_dictionary(text: str) -> dict[str, str]:
    mapping: dict[str, str] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        sep = "," if "," in line else "\t" if "\t" in line else None
        if sep is None:
            mapping[line.lower()] = line
        else:
            surface, _, canonical = line.partition(sep)
            mapping[surface.strip().lower()] = canonical.strip()
    return mapping


class Task(abc.ABC):
    """Base class for all tasks.

    ``name`` is the key under the ``T:`` section; ``config`` is the raw
    configuration mapping (everything but ``type``).
    """

    #: value of the ``type:`` key this class implements
    type_name: str = ""
    #: how many input tables the task accepts: (min, max); max None = any
    arity: tuple[int, int | None] = (1, 1)

    def __init__(self, name: str, config: Mapping[str, Any]):
        self.name = name
        self.config = dict(config)
        self._validate_config()

    def _validate_config(self) -> None:
        """Subclasses raise :class:`TaskConfigError` on bad configuration."""

    # -- static interface ------------------------------------------------
    @abc.abstractmethod
    def output_schema(self, input_schemas: Sequence[Schema]) -> Schema:
        """Schema of the output given input schemas.

        Must raise :class:`~repro.errors.SchemaError` (or
        :class:`TaskConfigError`) when inputs lack required columns — this
        is what lets the validator reject bad pipelines before execution.
        """

    def required_columns(self) -> set[str]:
        """Columns the task reads from its primary input (for pushdown)."""
        return set()

    def preserves_rows(self) -> bool:
        """True when output rows are a subset of input rows (filters)."""
        return False

    def partition_local(self) -> bool:
        """True when the task can run independently per data partition.

        Partition-local tasks run map-side on the distributed engine (no
        shuffle); anything keyed or global must return False (the
        default) and be handled by an engine strategy.
        """
        return False

    # -- runtime interface -------------------------------------------------
    @abc.abstractmethod
    def apply(self, inputs: Sequence[Table], context: TaskContext) -> Table:
        """Transform input tables into the output table."""

    def fingerprint(self) -> str:
        """A stable identity string for caching.

        Covers the task *type and full configuration*, not just the
        name: two tasks that share a name but differ in config (a
        re-configured dashboard, distinct flows reusing a task key)
        must never collide on a cache key.  Non-JSON config values fall
        back to ``str`` — stable for the value types flow files can
        express.
        """
        return json.dumps(
            {
                "type": self.type_name,
                "name": self.name,
                "config": self.config,
            },
            sort_keys=True,
            default=str,
        )

    # -- helpers -----------------------------------------------------------
    def _single(self, inputs: Sequence[Table]) -> Table:
        lo, hi = self.arity
        if len(inputs) < lo or (hi is not None and len(inputs) > hi):
            raise TaskExecutionError(
                f"task {self.name!r} ({self.type_name}) takes "
                f"{lo}..{hi or 'n'} inputs, got {len(inputs)}"
            )
        return inputs[0]

    def config_list(self, key: str, required: bool = False) -> list[Any]:
        value = self.config.get(key)
        if value is None:
            if required:
                raise TaskConfigError(
                    f"task {self.name!r} needs a {key!r} list"
                )
            return []
        if isinstance(value, (list, tuple)):
            return list(value)
        return [value]

    def config_str(self, key: str, default: str | None = None) -> str:
        value = self.config.get(key, default)
        if value is None:
            raise TaskConfigError(f"task {self.name!r} needs {key!r}")
        return str(value)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
