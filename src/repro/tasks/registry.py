"""Task registry: ``type:`` strings → task classes, and task-set building.

The registry instantiates the ``T:`` section of a flow file into bound
:class:`~repro.tasks.base.Task` objects (wiring ``parallel`` sub-task
references) and is the entry point for the §4.2 task extension API:
``register_type`` makes a user task class available to every flow file on
the platform.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.errors import ExtensionError, TaskConfigError
from repro.tasks.base import Task
from repro.tasks.filter import FilterTask
from repro.tasks.groupby import GroupByTask
from repro.tasks.join import JoinTask
from repro.tasks.map_ops import MapTask
from repro.tasks.misc import (
    AddColumnTask,
    DistinctTask,
    LimitTask,
    ProjectTask,
    RenameTask,
    SortTask,
    UnionTask,
)
from repro.tasks.cleansing import CastTask, FillNaTask, SampleTask
from repro.tasks.parallel import ParallelTask
from repro.tasks.topn import TopNTask
from repro.tasks.udf import NativeMapReduceTask, PythonTask

_BUILTIN_TYPES: list[type[Task]] = [
    FillNaTask,
    CastTask,
    SampleTask,
    MapTask,
    FilterTask,
    GroupByTask,
    JoinTask,
    TopNTask,
    ParallelTask,
    ProjectTask,
    RenameTask,
    SortTask,
    LimitTask,
    UnionTask,
    DistinctTask,
    AddColumnTask,
    PythonTask,
    NativeMapReduceTask,
]


class TaskRegistry:
    """Task ``type`` name → class."""

    def __init__(self, include_builtins: bool = True):
        self._types: dict[str, type[Task]] = {}
        if include_builtins:
            for cls in _BUILTIN_TYPES:
                self.register_type(cls)

    def register_type(self, cls: type[Task], replace: bool = False) -> None:
        if not cls.type_name:
            raise ExtensionError(f"task class {cls.__name__} has no type_name")
        key = cls.type_name.lower()
        if key in self._types and not replace:
            raise ExtensionError(
                f"task type {cls.type_name!r} already registered"
            )
        self._types[key] = cls

    def type_names(self) -> list[str]:
        return sorted(self._types)

    def create(self, name: str, config: Mapping[str, Any]) -> Task:
        """Instantiate one task from its flow-file configuration."""
        config = dict(config)
        type_name = config.pop("type", None)
        if type_name is None:
            # Fig. 20: parallel tasks may omit `type` — the `parallel`
            # key alone identifies them.
            if "parallel" in config:
                type_name = "parallel"
            else:
                raise TaskConfigError(f"task {name!r} has no 'type'")
        cls = self._types.get(str(type_name).lower())
        if cls is None:
            raise TaskConfigError(
                f"task {name!r}: unknown type {type_name!r}; "
                f"known: {self.type_names()}"
            )
        return cls(name, config)

    def build_section(
        self, section: Mapping[str, Mapping[str, Any]]
    ) -> dict[str, Task]:
        """Instantiate a whole ``T:`` section and bind parallel refs."""
        tasks: dict[str, Task] = {}
        for name, config in section.items():
            tasks[name] = self.create(name, config)

        def resolver(ref: str) -> Task:
            task = tasks.get(ref)
            if task is None:
                raise TaskConfigError(
                    f"unknown task reference {ref!r}; "
                    f"defined: {sorted(tasks)}"
                )
            return task

        for task in tasks.values():
            if isinstance(task, ParallelTask):
                task.bind(resolver)
                # Fail fast on dangling references.
                task._sub_tasks()
        return tasks


def default_task_registry() -> TaskRegistry:
    """A registry with all built-in task types."""
    return TaskRegistry(include_builtins=True)
