"""Structural tasks: project, rename, sort, limit, union, distinct.

These round out the relational vocabulary the compiler needs (the paper's
task library is "pre-loaded with a set of useful transformations"; these
are the ones its flows rely on implicitly — e.g. sinks with narrower
schemas than their inputs imply a projection).
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.data import Schema, Table
from repro.errors import TaskConfigError
from repro.tasks.base import Task, TaskContext


class ProjectTask(Task):
    """``type: project`` — keep only ``columns`` (in order)."""

    type_name = "project"

    def _validate_config(self) -> None:
        if not self.config_list("columns"):
            raise TaskConfigError(
                f"project task {self.name!r} needs 'columns'"
            )

    @property
    def columns(self) -> list[str]:
        return [str(c) for c in self.config_list("columns")]

    def required_columns(self) -> set[str]:
        return set(self.columns)

    def partition_local(self) -> bool:
        return True

    def output_schema(self, input_schemas: Sequence[Schema]) -> Schema:
        return input_schemas[0].select(self.columns)

    def apply(self, inputs: Sequence[Table], context: TaskContext) -> Table:
        return self._single(inputs).select(self.columns)


class RenameTask(Task):
    """``type: rename`` — rename columns via a ``mapping`` of old: new."""

    type_name = "rename"

    def _validate_config(self) -> None:
        mapping = self.config.get("mapping")
        if not isinstance(mapping, dict) or not mapping:
            raise TaskConfigError(
                f"rename task {self.name!r} needs a 'mapping' dict"
            )
        self._mapping = {str(k): str(v) for k, v in mapping.items()}

    def required_columns(self) -> set[str]:
        return set(self._mapping)

    def partition_local(self) -> bool:
        return True

    def output_schema(self, input_schemas: Sequence[Schema]) -> Schema:
        return input_schemas[0].rename(self._mapping)

    def apply(self, inputs: Sequence[Table], context: TaskContext) -> Table:
        return self._single(inputs).rename(self._mapping)


class SortTask(Task):
    """``type: sort`` — order rows by ``orderby_column`` entries."""

    type_name = "sort"

    def _validate_config(self) -> None:
        entries = self.config_list("orderby_column", required=True)
        self._order: list[tuple[str, bool]] = []
        for entry in entries:
            parts = str(entry).split()
            if not parts or len(parts) > 2:
                raise TaskConfigError(
                    f"sort task {self.name!r}: bad entry {entry!r}"
                )
            descending = len(parts) == 2 and parts[1].upper() == "DESC"
            self._order.append((parts[0], descending))

    def required_columns(self) -> set[str]:
        return {c for c, _d in self._order}

    def preserves_rows(self) -> bool:
        return True

    def output_schema(self, input_schemas: Sequence[Schema]) -> Schema:
        schema = input_schemas[0]
        schema.require(self.required_columns(), context=self.name)
        return schema

    def apply(self, inputs: Sequence[Table], context: TaskContext) -> Table:
        table = self._single(inputs)
        return table.sorted_by(
            [c for c, _d in self._order], [d for _c, d in self._order]
        )


class LimitTask(Task):
    """``type: limit`` — keep the first ``limit`` rows."""

    type_name = "limit"

    def _validate_config(self) -> None:
        try:
            self._limit = int(self.config.get("limit"))
        except (TypeError, ValueError):
            raise TaskConfigError(
                f"limit task {self.name!r} needs an integer 'limit'"
            ) from None
        if self._limit < 0:
            raise TaskConfigError(
                f"limit task {self.name!r}: limit must be non-negative"
            )

    def preserves_rows(self) -> bool:
        return True

    def output_schema(self, input_schemas: Sequence[Schema]) -> Schema:
        return input_schemas[0]

    def apply(self, inputs: Sequence[Table], context: TaskContext) -> Table:
        return self._single(inputs).head(self._limit)


class UnionTask(Task):
    """``type: union`` — vertical union of same-schema inputs."""

    type_name = "union"
    arity = (1, None)

    def output_schema(self, input_schemas: Sequence[Schema]) -> Schema:
        first = input_schemas[0]
        for other in input_schemas[1:]:
            if other.names != first.names:
                raise TaskConfigError(
                    f"union task {self.name!r}: incompatible schemas "
                    f"{first.names} vs {other.names}"
                )
        return first

    def apply(self, inputs: Sequence[Table], context: TaskContext) -> Table:
        if not inputs:
            raise TaskConfigError(
                f"union task {self.name!r} needs at least one input"
            )
        if len(inputs) == 1:
            return inputs[0]
        return Table.concat_all(inputs)


class DistinctTask(Task):
    """``type: distinct`` — deduplicate rows (optionally by ``columns``)."""

    type_name = "distinct"

    @property
    def columns(self) -> list[str] | None:
        cols = self.config_list("columns")
        return [str(c) for c in cols] if cols else None

    def required_columns(self) -> set[str]:
        return set(self.columns or [])

    def preserves_rows(self) -> bool:
        return True

    def output_schema(self, input_schemas: Sequence[Schema]) -> Schema:
        schema = input_schemas[0]
        if self.columns:
            schema.require(self.columns, context=self.name)
        return schema

    def apply(self, inputs: Sequence[Table], context: TaskContext) -> Table:
        return self._single(inputs).distinct(self.columns)


class AddColumnTask(Task):
    """``type: add_column`` — computed column from an expression.

    A thin alias for ``map`` with the ``expression`` operator; kept as its
    own type because hackathon flow files used it heavily for derived
    metrics (weighted activity indexes, ratios).
    """

    type_name = "add_column"

    def _validate_config(self) -> None:
        from repro.data.expressions import compile_expression

        if "output" not in self.config:
            raise TaskConfigError(
                f"add_column task {self.name!r} needs 'output'"
            )
        if "expression" not in self.config:
            raise TaskConfigError(
                f"add_column task {self.name!r} needs 'expression'"
            )
        self._expression = compile_expression(
            str(self.config["expression"])
        )

    def required_columns(self) -> set[str]:
        return self._expression.references()

    def partition_local(self) -> bool:
        return True

    def output_schema(self, input_schemas: Sequence[Schema]) -> Schema:
        schema = input_schemas[0]
        schema.require(self.required_columns(), context=self.name)
        return schema.with_column(str(self.config["output"]))

    def apply(self, inputs: Sequence[Table], context: TaskContext) -> Table:
        table = self._single(inputs)
        values: list[Any] = [self._expression(row) for row in table.rows()]
        return table.with_column(str(self.config["output"]), values)
