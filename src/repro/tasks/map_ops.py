"""``map`` tasks: per-row operators.

A map task applies an *operator* to one column (``transform:``) and writes
the result to an output column (``output:``), preserving all other columns
— exactly the shape of the paper's Fig. 21 tasks::

    norm_ipldate:
      type: map
      operator: date
      transform: postedTime
      input_format: 'E MMM dd HH:mm:ss Z yyyy'
      output_format: yyyy-MM-dd
      output: date

Built-in operators: ``date`` (format conversion, Java SimpleDateFormat
patterns), ``extract`` (dictionary entity extraction), ``extract_location``
(city→state geo lookup), ``extract_words`` (tokenizer), ``expression``
(computed column via the expression language), ``copy``, ``lower``,
``upper``.  User operators register through
:func:`register_operator` — category 1 of the §4.2 task extension API.
"""

from __future__ import annotations

import datetime as _dt
import re
from typing import Any, Callable, Mapping, Sequence

from repro.data import Column, Schema, Table
from repro.data.expressions import compile_expression
from repro.errors import TaskConfigError, TaskExecutionError
from repro.tasks.base import Task, TaskContext

# ---------------------------------------------------------------------------
# Java SimpleDateFormat → strptime translation
# ---------------------------------------------------------------------------
# The paper's flow files use Java patterns ('E MMM dd HH:mm:ss Z yyyy',
# 'yyyy-MM-dd'); we translate the subset that appears in feed data.

_JAVA_TOKENS = [
    ("yyyy", "%Y"),
    ("yy", "%y"),
    ("MMMM", "%B"),
    ("MMM", "%b"),
    ("MM", "%m"),
    ("dd", "%d"),
    ("EEEE", "%A"),
    ("E", "%a"),
    ("HH", "%H"),
    ("hh", "%I"),
    ("mm", "%M"),
    ("ss", "%S"),
    ("SSS", "%f"),
    ("Z", "%z"),
    ("a", "%p"),
]


def java_to_strptime(pattern: str) -> str:
    """Translate a Java SimpleDateFormat pattern to a strptime pattern."""
    out = []
    i = 0
    while i < len(pattern):
        for token, replacement in _JAVA_TOKENS:
            if pattern.startswith(token, i):
                out.append(replacement)
                i += len(token)
                break
        else:
            out.append(pattern[i])
            i += 1
    return "".join(out)


class _Operator:
    """A compiled per-value operator: ``value, row -> value``."""

    def __init__(self, fn: Callable[[Any, Mapping[str, Any]], Any]):
        self._fn = fn

    def __call__(self, value: Any, row: Mapping[str, Any]) -> Any:
        return self._fn(value, row)


OperatorFactory = Callable[[Mapping[str, Any], "TaskContext | None"], _Operator]

_OPERATOR_FACTORIES: dict[str, Callable[..., Any]] = {}


def register_operator(name: str, factory: Callable[..., Any]) -> None:
    """Register an operator factory.

    ``factory(config)`` must return a callable ``(value, row) -> value``.
    User-registered operators are indistinguishable from built-ins in the
    flow file (§5.2 observation 2).
    """
    key = name.lower()
    _OPERATOR_FACTORIES[key] = factory


def operator_names() -> list[str]:
    return sorted(_OPERATOR_FACTORIES)


# -- built-in operator factories --------------------------------------------


#: the feed-timestamp shape of the paper's workloads
#: ('E MMM dd HH:mm:ss Z yyyy', e.g. ``Sat May 04 22:06:23 +0000 2013``)
_FAST_DATE_IN = "%a %b %d %H:%M:%S %z %Y"
_FAST_DATE_RE = re.compile(
    r"^(?:Mon|Tue|Wed|Thu|Fri|Sat|Sun) "
    r"(Jan|Feb|Mar|Apr|May|Jun|Jul|Aug|Sep|Oct|Nov|Dec) "
    r"(\d{1,2}) (?:[01]\d|2[0-3]):[0-5]\d:(?:[0-5]\d|6[01]) "
    r"[+-]\d{4} (\d{4})$",
    re.IGNORECASE,
)
_MONTH_NUMBERS = {
    abbr: index + 1
    for index, abbr in enumerate(
        "jan feb mar apr may jun jul aug sep oct nov dec".split()
    )
}


def _date_factory(config: Mapping[str, Any]) -> Callable[[Any, Any], Any]:
    input_format = config.get("input_format")
    output_format = config.get("output_format", "yyyy-MM-dd")
    in_pattern = java_to_strptime(str(input_format)) if input_format else None
    out_pattern = java_to_strptime(str(output_format))
    # strptime dominates batch map time on feed data; the one pattern the
    # paper's flows use gets a regex kernel (validated against the real
    # calendar, so dirty rows still normalise exactly like strptime).
    fast = in_pattern == _FAST_DATE_IN and out_pattern == "%Y-%m-%d"

    def convert(value: Any, _row: Mapping[str, Any]) -> Any:
        if value is None:
            return None
        if isinstance(value, (_dt.date, _dt.datetime)):
            return value.strftime(out_pattern)
        text = str(value).strip()
        if fast:
            match = _FAST_DATE_RE.match(text)
            if match:
                month = _MONTH_NUMBERS[match.group(1).lower()]
                day = int(match.group(2))
                year = int(match.group(3))
                try:
                    _dt.date(year, month, day)
                except ValueError:
                    return None
                return f"{year:04d}-{month:02d}-{day:02d}"
        parsed: _dt.datetime | None = None
        if in_pattern:
            try:
                parsed = _dt.datetime.strptime(text, in_pattern)
            except ValueError:
                parsed = None
        if parsed is None:
            parsed = _parse_fallback(text)
        if parsed is None:
            return None  # dirty feed rows normalise to missing, not crash
        return parsed.strftime(out_pattern)

    return convert


_ISO_RE = re.compile(r"(\d{4})-(\d{2})-(\d{2})")


def _parse_fallback(text: str) -> _dt.datetime | None:
    match = _ISO_RE.search(text)
    if match:
        try:
            return _dt.datetime(
                int(match.group(1)), int(match.group(2)), int(match.group(3))
            )
        except ValueError:
            return None
    for pattern in ("%a %b %d %H:%M:%S %z %Y", "%d/%m/%Y", "%m/%d/%Y"):
        try:
            return _dt.datetime.strptime(text, pattern)
        except ValueError:
            continue
    return None


_WORD_RE = re.compile(r"[A-Za-z][A-Za-z']+")


def _extract_factory(
    config: Mapping[str, Any], context: TaskContext | None = None
) -> Callable[[Any, Any], Any]:
    """Dictionary entity extraction (Fig. 21 ``extract_players``).

    Scans the text for surface forms listed in the dictionary and returns
    the canonical name of the first match (feeds that mention several
    entities produce one row per flow application; the paper's pipelines
    group afterwards).
    """
    dict_name = config.get("dict")
    if not dict_name:
        raise TaskConfigError("extract operator needs a 'dict' file")
    mapping: dict[str, str] | None = None

    def extract(value: Any, _row: Mapping[str, Any], _ctx=context) -> Any:
        nonlocal mapping
        if mapping is None:
            if _ctx is None:
                raise TaskExecutionError(
                    "extract operator needs a TaskContext for dictionaries"
                )
            mapping = _ctx.dictionary(str(dict_name))
        if value is None:
            return None
        text = str(value).lower()
        for word in _WORD_RE.findall(text):
            canonical = mapping.get(word)
            if canonical is not None:
                return canonical
        # Multi-word surface forms ("super kings"): substring pass.
        for surface, canonical in mapping.items():
            if " " in surface and surface in text:
                return canonical
        return None

    return extract


def _extract_location_factory(
    config: Mapping[str, Any], context: TaskContext | None = None
) -> Callable[[Any, Any], Any]:
    """City → region lookup (Fig. 21 ``extract_location``).

    ``match: city`` with ``country: IND`` resolves city mentions to their
    state using the built-in gazetteer (extendable via a ``dict`` option).
    """
    country = str(config.get("country", "IND")).upper()
    dict_name = config.get("dict")
    gazetteer: dict[str, str] | None = None

    def locate(value: Any, _row: Mapping[str, Any], _ctx=context) -> Any:
        nonlocal gazetteer
        if gazetteer is None:
            if dict_name and _ctx is not None:
                gazetteer = _ctx.dictionary(str(dict_name))
            else:
                from repro.tasks.gazetteer import cities_for_country

                gazetteer = cities_for_country(country)
        if value is None:
            return None
        text = str(value).lower()
        for city, state in gazetteer.items():
            if city in text:
                return state
        return None

    return locate


_STOPWORDS = frozenset(
    """a an and are as at be but by for from has have i in is it its of on
    or rt so that the this to was we were will with you your not amp http
    https t co www com me my our they them he she his her what when who
    just can out up all about more very via if than then there their
    been had do does did no yes get got like one two""".split()
)


def _extract_words_factory(
    config: Mapping[str, Any],
) -> Callable[[Any, Any], Any]:
    """Tokenizer used by the tag-cloud pipeline (Fig. A.1).

    Emits the list of non-stopword tokens; downstream ``groupby`` tasks
    flatten list-valued columns (one row per element).
    """
    min_length = int(config.get("min_length", 3))

    def words(value: Any, _row: Mapping[str, Any]) -> Any:
        if value is None:
            return []
        tokens = [
            t.lower() for t in _WORD_RE.findall(str(value))
        ]
        return [
            t for t in tokens if len(t) >= min_length and t not in _STOPWORDS
        ]

    return words


def _expression_factory(
    config: Mapping[str, Any],
) -> Callable[[Any, Any], Any]:
    source = config.get("expression")
    if not source:
        raise TaskConfigError("expression operator needs an 'expression'")
    expression = compile_expression(str(source))

    def compute(_value: Any, row: Mapping[str, Any]) -> Any:
        return expression(row)

    return compute


_COPY_FACTORY = lambda config: (lambda v, row: v)  # noqa: E731
_LOWER_FACTORY = lambda config: (  # noqa: E731
    lambda v, row: v.lower() if isinstance(v, str) else v
)
_UPPER_FACTORY = lambda config: (  # noqa: E731
    lambda v, row: v.upper() if isinstance(v, str) else v
)

register_operator("date", _date_factory)
register_operator("extract", _extract_factory)
register_operator("extract_location", _extract_location_factory)
register_operator("extract_words", _extract_words_factory)
register_operator("expression", _expression_factory)
register_operator("copy", _COPY_FACTORY)
register_operator("lower", _LOWER_FACTORY)
register_operator("upper", _UPPER_FACTORY)

#: built-in operators that are pure functions of the transform value —
#: eligible for the columnar fast path (no row dicts) and the per-run
#: value cache.  Keyed by factory identity so a user who re-registers
#: one of these names with a row-reading operator silently falls back
#: to the generic row-at-a-time path.
_VALUE_ONLY_FACTORIES: dict[str, Callable[..., Any]] = {
    "date": _date_factory,
    "extract": _extract_factory,
    "extract_location": _extract_location_factory,
    "extract_words": _extract_words_factory,
    "copy": _COPY_FACTORY,
    "lower": _LOWER_FACTORY,
    "upper": _UPPER_FACTORY,
}

#: stop inserting (but keep reading) past this many distinct values
_VALUE_CACHE_LIMIT = 200_000

_EMPTY_ROW: Mapping[str, Any] = {}


def _build_operator(
    name: str, config: Mapping[str, Any], context: TaskContext | None
) -> Callable[[Any, Mapping[str, Any]], Any]:
    factory = _OPERATOR_FACTORIES.get(name.lower())
    if factory is None:
        raise TaskConfigError(
            f"unknown map operator {name!r}; known: {operator_names()}"
        )
    try:
        return factory(config, context)
    except TypeError:
        return factory(config)


class MapTask(Task):
    """The ``type: map`` task."""

    type_name = "map"

    def _validate_config(self) -> None:
        if "operator" not in self.config:
            raise TaskConfigError(f"map task {self.name!r} needs 'operator'")
        operator = str(self.config["operator"]).lower()
        if operator not in _OPERATOR_FACTORIES:
            raise TaskConfigError(
                f"map task {self.name!r}: unknown operator {operator!r}; "
                f"known: {operator_names()}"
            )
        # `expression` operators read whole rows; others need `transform`.
        if operator != "expression" and "transform" not in self.config:
            raise TaskConfigError(
                f"map task {self.name!r} needs a 'transform' column"
            )
        if "output" not in self.config:
            raise TaskConfigError(
                f"map task {self.name!r} needs an 'output' column"
            )

    @property
    def transform_column(self) -> str | None:
        value = self.config.get("transform")
        return str(value) if value is not None else None

    @property
    def output_column(self) -> str:
        return str(self.config["output"])

    def partition_local(self) -> bool:
        return True

    def required_columns(self) -> set[str]:
        refs: set[str] = set()
        if self.transform_column:
            refs.add(self.transform_column)
        if str(self.config.get("operator", "")).lower() == "expression":
            refs |= compile_expression(
                str(self.config["expression"])
            ).references()
        return refs

    def output_schema(self, input_schemas: Sequence[Schema]) -> Schema:
        schema = input_schemas[0]
        if self.transform_column:
            schema.require([self.transform_column], context=self.name)
        return schema.with_column(Column(self.output_column))

    def _is_value_only(self) -> bool:
        """True when the operator is a pure function of the transform value.

        Guarded by factory *identity*: re-registering one of the builtin
        names with a custom operator (which may read other row columns)
        must drop the task back onto the generic row-at-a-time path.
        """
        name = str(self.config["operator"]).lower()
        builtin = _VALUE_ONLY_FACTORIES.get(name)
        return (
            builtin is not None
            and _OPERATOR_FACTORIES.get(name) is builtin
            and self.transform_column is not None
        )

    def apply(self, inputs: Sequence[Table], context: TaskContext) -> Table:
        table = self._single(inputs)
        operator = _build_operator(
            str(self.config["operator"]), self.config, context
        )
        transform = self.transform_column
        if transform:
            table.schema.require([transform], context=self.name)
        if transform and self._is_value_only():
            values = self._apply_columnar(table, transform, operator, context)
        else:
            values = []
            for row in table.rows():
                source_value = row.get(transform) if transform else None
                try:
                    values.append(operator(source_value, row))
                except Exception as exc:  # wrap user-operator failures
                    raise TaskExecutionError(
                        f"map task {self.name!r} failed on value "
                        f"{source_value!r}: {exc}"
                    ) from exc
        context.bump(f"task.{self.name}.rows", table.num_rows)
        return table.with_column(self.output_column, values)

    def _apply_columnar(
        self,
        table: Table,
        transform: str,
        operator: Callable[[Any, Mapping[str, Any]], Any],
        context: TaskContext,
    ) -> list[Any]:
        """Value-only fast path: one pass over the transform column.

        No row dicts are built, and results are memoized per distinct
        input value in a context-scoped cache keyed by the task
        fingerprint — the same tweet body or timestamp appearing in four
        flows (or thousands of rows) is transformed once per run.  The
        memo key carries the value's class so equal-but-distinct keys
        (``1``/``True``/``1.0``) never alias; unhashable values bypass
        the cache, and failures are raised (never cached) with the same
        wrapping as the row path.
        """
        cache = context.value_cache(self.fingerprint())
        values: list[Any] = []
        append = values.append
        sentinel = _EMPTY_ROW
        for source_value in table.column(transform):
            try:
                key = (source_value.__class__, source_value)
                cached = cache.get(key, sentinel)
            except TypeError:  # unhashable value: compute directly
                try:
                    append(operator(source_value, sentinel))
                except Exception as exc:
                    raise TaskExecutionError(
                        f"map task {self.name!r} failed on value "
                        f"{source_value!r}: {exc}"
                    ) from exc
                continue
            if cached is not sentinel:
                append(cached)
                continue
            try:
                result = operator(source_value, sentinel)
            except Exception as exc:
                raise TaskExecutionError(
                    f"map task {self.name!r} failed on value "
                    f"{source_value!r}: {exc}"
                ) from exc
            if len(cache) < _VALUE_CACHE_LIMIT:
                cache[key] = result
            append(result)
        return values
