"""``filter_by`` tasks.

Two configuration shapes, both from the paper:

1. expression filters (Fig. 7)::

       classification:
         type: filter_by
         filter_expression: rating < 3

2. widget-interaction filters (Fig. 15) — the source of truth is another
   widget's current selection::

       filter_projects:
         type: filter_by
         filter_by: [project]
         filter_source: W.project_category_bubble
         filter_val: [text]

   Selections are either discrete values (membership filter) or ranges
   (between filter, from Slider widgets).  An empty selection passes all
   rows through — an unselected widget should not blank the dashboard.
"""

from __future__ import annotations

from typing import Sequence

from repro.data import Schema, Table
from repro.data.expressions import Expression, compile_expression
from repro.data.kernels import (
    AndPredicate,
    ColumnarPredicate,
    MembershipPredicate,
    RangePredicate,
    compile_expression_predicate,
)
from repro.errors import ExpressionError, TaskConfigError, TaskExecutionError
from repro.tasks.base import Task, TaskContext, WidgetSelection


def _strip_widget_prefix(reference: str) -> str:
    reference = reference.strip()
    if reference.startswith("W."):
        return reference[2:]
    return reference


class FilterTask(Task):
    """The ``type: filter_by`` task."""

    type_name = "filter_by"

    def _validate_config(self) -> None:
        has_expression = "filter_expression" in self.config
        has_widget = "filter_source" in self.config
        if not has_expression and not has_widget:
            raise TaskConfigError(
                f"filter task {self.name!r} needs 'filter_expression' "
                f"or 'filter_source'"
            )
        if has_expression:
            try:
                self._expression: Expression | None = compile_expression(
                    str(self.config["filter_expression"])
                )
            except ExpressionError as exc:
                raise TaskConfigError(
                    f"filter task {self.name!r}: {exc}"
                ) from exc
            # Simple comparison shapes compile once to a columnar
            # predicate; richer expressions keep the row path.
            self._columnar = compile_expression_predicate(self._expression)
        else:
            self._expression = None
            self._columnar = None
            if not self.config_list("filter_by"):
                raise TaskConfigError(
                    f"filter task {self.name!r} needs 'filter_by' columns"
                )

    @property
    def widget_source(self) -> str | None:
        source = self.config.get("filter_source")
        return _strip_widget_prefix(str(source)) if source else None

    def required_columns(self) -> set[str]:
        if self._expression is not None:
            return self._expression.references()
        return set(str(c) for c in self.config_list("filter_by"))

    def preserves_rows(self) -> bool:
        return True

    def partition_local(self) -> bool:
        return True

    def output_schema(self, input_schemas: Sequence[Schema]) -> Schema:
        schema = input_schemas[0]
        schema.require(self.required_columns(), context=self.name)
        return schema

    def apply(self, inputs: Sequence[Table], context: TaskContext) -> Table:
        table = self._single(inputs)
        if self._expression is not None:
            result = self._apply_expression(table)
        else:
            result = self._apply_widget(table, context)
        context.bump(f"task.{self.name}.rows_in", table.num_rows)
        context.bump(f"task.{self.name}.rows_out", result.num_rows)
        return result

    def _apply_expression(self, table: Table) -> Table:
        expression = self._expression
        assert expression is not None
        table.schema.require(expression.references(), context=self.name)
        try:
            if self._columnar is not None:
                return table.filter_rows(self._columnar)
            return table.filter_rows(lambda row: bool(expression(row)))
        except ExpressionError as exc:
            raise TaskExecutionError(
                f"filter task {self.name!r} failed: {exc}"
            ) from exc

    def _apply_widget(self, table: Table, context: TaskContext) -> Table:
        columns = [str(c) for c in self.config_list("filter_by")]
        table.schema.require(columns, context=self.name)
        widget = self.widget_source
        assert widget is not None
        selection = context.widget_selection(widget)
        if selection.is_empty():
            return table
        widget_columns = [str(c) for c in self.config_list("filter_val")]
        predicates: list[ColumnarPredicate] = []
        for i, column in enumerate(columns):
            widget_column = (
                widget_columns[i] if i < len(widget_columns) else None
            )
            predicate = _selection_predicate(
                selection, widget_column, column
            )
            if predicate is not None:
                predicates.append(predicate)
        if not predicates:
            return table
        if len(predicates) == 1:
            return table.filter_rows(predicates[0])
        return table.filter_rows(AndPredicate(predicates))


def _selection_predicate(
    selection: WidgetSelection,
    widget_column: str | None,
    data_column: str,
) -> ColumnarPredicate | None:
    """Build a columnar predicate over ``data_column`` from a widget
    selection.

    With a named widget column we look that column up; without one (the
    Slider case in Appendix A.2, where ``filter_val`` is omitted) we use
    the widget's sole selection entry.
    """
    if widget_column is not None:
        if widget_column in selection.ranges:
            lo, hi = selection.ranges[widget_column]
            return RangePredicate(data_column, lo, hi)
        if widget_column in selection.values:
            return MembershipPredicate(
                data_column, selection.values[widget_column]
            )
        return None
    if len(selection.ranges) == 1:
        lo, hi = next(iter(selection.ranges.values()))
        return RangePredicate(data_column, lo, hi)
    if len(selection.values) == 1:
        return MembershipPredicate(
            data_column, next(iter(selection.values.values()))
        )
    return None
