"""``topn`` tasks.

Configuration (paper Appendix A.1)::

    topwords:
      type: topn
      groupby: [date]
      orderby_column: [count DESC]
      limit: 20

Keeps the top ``limit`` rows per group, ordered by ``orderby_column``
entries (each ``<column> [ASC|DESC]``).  Without ``groupby`` the whole
table is one group.
"""

from __future__ import annotations

from typing import Sequence

from repro.data import Schema, Table
from repro.errors import TaskConfigError
from repro.tasks.base import Task, TaskContext


def _parse_order(entry: str, task: str) -> tuple[str, bool]:
    parts = str(entry).split()
    if not parts or len(parts) > 2:
        raise TaskConfigError(
            f"topn task {task!r}: bad orderby entry {entry!r}"
        )
    column = parts[0]
    descending = False
    if len(parts) == 2:
        direction = parts[1].upper()
        if direction not in ("ASC", "DESC"):
            raise TaskConfigError(
                f"topn task {task!r}: direction must be ASC or DESC, "
                f"got {parts[1]!r}"
            )
        descending = direction == "DESC"
    return column, descending


class TopNTask(Task):
    """The ``type: topn`` task."""

    type_name = "topn"

    def _validate_config(self) -> None:
        orderby = self.config_list("orderby_column", required=True)
        self._order = [_parse_order(e, self.name) for e in orderby]
        limit = self.config.get("limit")
        if limit is None:
            raise TaskConfigError(f"topn task {self.name!r} needs 'limit'")
        try:
            self._limit = int(limit)
        except (TypeError, ValueError):
            raise TaskConfigError(
                f"topn task {self.name!r}: limit must be an integer, "
                f"got {limit!r}"
            ) from None
        if self._limit < 1:
            raise TaskConfigError(
                f"topn task {self.name!r}: limit must be positive"
            )

    @property
    def group_columns(self) -> list[str]:
        return [str(c) for c in self.config_list("groupby")]

    def required_columns(self) -> set[str]:
        return set(self.group_columns) | {c for c, _d in self._order}

    def preserves_rows(self) -> bool:
        return True

    def output_schema(self, input_schemas: Sequence[Schema]) -> Schema:
        schema = input_schemas[0]
        schema.require(self.required_columns(), context=self.name)
        return schema

    def apply(self, inputs: Sequence[Table], context: TaskContext) -> Table:
        table = self._single(inputs)
        table.schema.require(self.required_columns(), context=self.name)
        group_columns = self.group_columns
        order_keys = [c for c, _d in self._order]
        order_desc = [d for _c, d in self._order]
        if not group_columns:
            result = table.sorted_by(order_keys, order_desc).head(self._limit)
            context.bump(f"task.{self.name}.rows_out", result.num_rows)
            return result
        # Partition indices per group, preserving first-seen group order.
        groups: dict[tuple, list[int]] = {}
        order: list[tuple] = []
        group_cols = [table.column(c) for c in group_columns]
        for i in range(table.num_rows):
            key = tuple(col[i] for col in group_cols)
            bucket = groups.get(key)
            if bucket is None:
                groups[key] = [i]
                order.append(key)
            else:
                bucket.append(i)
        kept: list[int] = []
        for key in order:
            subset = table.take(groups[key])
            ranked = subset.sorted_by(order_keys, order_desc)
            top = min(self._limit, ranked.num_rows)
            # Map back to original indices via a rank of the subset rows.
            sub_indices = groups[key]
            ranked_positions = _rank_positions(
                subset, order_keys, order_desc
            )[:top]
            kept.extend(sub_indices[p] for p in ranked_positions)
        result = table.take(kept)
        context.bump(f"task.{self.name}.rows_out", result.num_rows)
        return result


def _rank_positions(
    table: Table, keys: list[str], descending: list[bool]
) -> list[int]:
    """Positions of table rows in sorted order (stable)."""
    positions = list(range(table.num_rows))
    for key, desc in reversed(list(zip(keys, descending))):
        values = table.column(key)

        def sort_key(i: int, values=values) -> tuple:
            v = values[i]
            return (v is not None, v)

        try:
            positions.sort(key=sort_key, reverse=desc)
        except TypeError:
            positions.sort(
                key=lambda i, values=values: (
                    values[i] is not None,
                    str(values[i]),
                ),
                reverse=desc,
            )
    return positions
