"""``topn`` tasks.

Configuration (paper Appendix A.1)::

    topwords:
      type: topn
      groupby: [date]
      orderby_column: [count DESC]
      limit: 20

Keeps the top ``limit`` rows per group, ordered by ``orderby_column``
entries (each ``<column> [ASC|DESC]``).  Without ``groupby`` the whole
table is one group.
"""

from __future__ import annotations

from typing import Sequence

from repro.data import Schema, Table
from repro.data.kernels import argsort, group_indices, top_n_indices
from repro.errors import TaskConfigError
from repro.tasks.base import Task, TaskContext


def _parse_order(entry: str, task: str) -> tuple[str, bool]:
    parts = str(entry).split()
    if not parts or len(parts) > 2:
        raise TaskConfigError(
            f"topn task {task!r}: bad orderby entry {entry!r}"
        )
    column = parts[0]
    descending = False
    if len(parts) == 2:
        direction = parts[1].upper()
        if direction not in ("ASC", "DESC"):
            raise TaskConfigError(
                f"topn task {task!r}: direction must be ASC or DESC, "
                f"got {parts[1]!r}"
            )
        descending = direction == "DESC"
    return column, descending


class TopNTask(Task):
    """The ``type: topn`` task."""

    type_name = "topn"

    def _validate_config(self) -> None:
        orderby = self.config_list("orderby_column", required=True)
        self._order = [_parse_order(e, self.name) for e in orderby]
        limit = self.config.get("limit")
        if limit is None:
            raise TaskConfigError(f"topn task {self.name!r} needs 'limit'")
        try:
            self._limit = int(limit)
        except (TypeError, ValueError):
            raise TaskConfigError(
                f"topn task {self.name!r}: limit must be an integer, "
                f"got {limit!r}"
            ) from None
        if self._limit < 1:
            raise TaskConfigError(
                f"topn task {self.name!r}: limit must be positive"
            )

    @property
    def group_columns(self) -> list[str]:
        return [str(c) for c in self.config_list("groupby")]

    def required_columns(self) -> set[str]:
        return set(self.group_columns) | {c for c, _d in self._order}

    def preserves_rows(self) -> bool:
        return True

    def output_schema(self, input_schemas: Sequence[Schema]) -> Schema:
        schema = input_schemas[0]
        schema.require(self.required_columns(), context=self.name)
        return schema

    def apply(self, inputs: Sequence[Table], context: TaskContext) -> Table:
        table = self._single(inputs)
        table.schema.require(self.required_columns(), context=self.name)
        group_columns = self.group_columns
        order_keys = [c for c, _d in self._order]
        order_desc = [d for _c, d in self._order]
        if not group_columns:
            if len(order_keys) == 1:
                # Single key: the heap kernel beats a full sort.
                kept = top_n_indices(
                    table.column(order_keys[0]), order_desc[0], self._limit
                )
                result = table.take(kept)
            else:
                result = table.sorted_by(
                    order_keys, order_desc
                ).head(self._limit)
            context.bump(f"task.{self.name}.rows_out", result.num_rows)
            return result
        # Partition indices per group (first-seen order), then rank each
        # bucket's key values directly — no per-group table subsets.
        _keys, buckets = group_indices(
            [table.column(c) for c in group_columns]
        )
        order_cols = [table.column(c) for c in order_keys]
        kept: list[int] = []
        for bucket in buckets:
            gathered = [
                [column[i] for i in bucket] for column in order_cols
            ]
            positions = argsort(len(bucket), gathered, order_desc)
            kept.extend(bucket[p] for p in positions[: self._limit])
        result = table.take(kept)
        context.bump(f"task.{self.name}.rows_out", result.num_rows)
        return result


def _rank_positions(
    table: Table, keys: list[str], descending: list[bool]
) -> list[int]:
    """Positions of table rows in sorted order (stable)."""
    return argsort(
        table.num_rows, [table.column(k) for k in keys], descending
    )
