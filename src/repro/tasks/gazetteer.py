"""Built-in gazetteer for the ``extract_location`` operator.

The IPL pipeline (paper Fig. 21) resolves tweet ``user.location`` strings
to Indian states with ``match: city`` / ``country: IND``.  This module
carries a small city→state table for India (IPL host cities and other
major cities) and a handful of other countries so the operator is usable
out of the box; users can override with a ``dict`` option.
"""

from __future__ import annotations

from repro.errors import TaskConfigError

_INDIA = {
    "mumbai": "Maharashtra",
    "pune": "Maharashtra",
    "nagpur": "Maharashtra",
    "delhi": "Delhi",
    "new delhi": "Delhi",
    "kolkata": "West Bengal",
    "chennai": "Tamil Nadu",
    "bangalore": "Karnataka",
    "bengaluru": "Karnataka",
    "hyderabad": "Telangana",
    "jaipur": "Rajasthan",
    "mohali": "Punjab",
    "chandigarh": "Punjab",
    "ahmedabad": "Gujarat",
    "rajkot": "Gujarat",
    "kochi": "Kerala",
    "lucknow": "Uttar Pradesh",
    "kanpur": "Uttar Pradesh",
    "indore": "Madhya Pradesh",
    "bhopal": "Madhya Pradesh",
    "visakhapatnam": "Andhra Pradesh",
    "ranchi": "Jharkhand",
    "dharamsala": "Himachal Pradesh",
    "cuttack": "Odisha",
    "guwahati": "Assam",
    "patna": "Bihar",
    "raipur": "Chhattisgarh",
    "surat": "Gujarat",
    "nashik": "Maharashtra",
    "coimbatore": "Tamil Nadu",
    "madurai": "Tamil Nadu",
    "mysore": "Karnataka",
    "vadodara": "Gujarat",
    "amritsar": "Punjab",
    "varanasi": "Uttar Pradesh",
    "agra": "Uttar Pradesh",
    "goa": "Goa",
    "panaji": "Goa",
    "thiruvananthapuram": "Kerala",
    "srinagar": "Jammu and Kashmir",
}

_USA = {
    "new york": "New York",
    "san francisco": "California",
    "los angeles": "California",
    "seattle": "Washington",
    "chicago": "Illinois",
    "boston": "Massachusetts",
    "austin": "Texas",
    "houston": "Texas",
    "miami": "Florida",
    "denver": "Colorado",
    "portland": "Oregon",
    "atlanta": "Georgia",
}

_AUS = {
    "melbourne": "Victoria",
    "sydney": "New South Wales",
    "brisbane": "Queensland",
    "perth": "Western Australia",
    "adelaide": "South Australia",
    "hobart": "Tasmania",
    "canberra": "Australian Capital Territory",
}

_GAZETTEERS = {
    "IND": _INDIA,
    "USA": _USA,
    "US": _USA,
    "AUS": _AUS,
}


def cities_for_country(country: str) -> dict[str, str]:
    """City (lowercase) → state mapping for ``country``."""
    table = _GAZETTEERS.get(country.upper())
    if table is None:
        raise TaskConfigError(
            f"no built-in gazetteer for country {country!r}; "
            f"available: {sorted(_GAZETTEERS)} (or supply a 'dict' option)"
        )
    return dict(table)


def register_country(country: str, cities: dict[str, str]) -> None:
    """Extension hook: add or extend a country's gazetteer."""
    key = country.upper()
    table = _GAZETTEERS.setdefault(key, {})
    table.update({city.lower(): state for city, state in cities.items()})
