"""Task section implementation.

Tasks are reusable, configuration-driven transformations (paper §3.3).
They are instantiated from flow-file ``T:`` entries by the
:class:`~repro.tasks.registry.TaskRegistry` and applied to tables by the
engine.  The extension categories of §4.2 — operators, user-defined
aggregates, engine tasks, native map-reduce jobs — are all supported.
"""

from repro.tasks.base import Task, TaskContext, WidgetSelection
from repro.tasks.registry import TaskRegistry, default_task_registry

__all__ = [
    "Task",
    "TaskContext",
    "WidgetSelection",
    "TaskRegistry",
    "default_task_registry",
]
