"""``parallel`` composite tasks.

Configuration (paper Fig. 20)::

    players_pipeline:
      type: parallel
      parallel: [T.norm_ipldate, T.extract_players]

Each referenced sub-task transforms the *original* input independently
("transforms (in parallel) the date ... and extracts player names",
§3.7.1); their added columns are merged into one output (Fig. 22's
intermediate schema).  The independence constraint is enforced: a sub-task
may only read columns present on the shared input, never a sibling's
output.  The engines are free to execute sub-tasks concurrently; results
are merged deterministically in declaration order.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.data import Schema, Table
from repro.errors import TaskConfigError
from repro.tasks.base import Task, TaskContext


def _strip_task_prefix(reference: str) -> str:
    reference = str(reference).strip()
    if reference.startswith("T."):
        return reference[2:]
    return reference


class ParallelTask(Task):
    """The ``type: parallel`` task."""

    type_name = "parallel"

    def _validate_config(self) -> None:
        refs = self.config_list("parallel", required=True)
        self._refs = [_strip_task_prefix(r) for r in refs]
        if not self._refs:
            raise TaskConfigError(
                f"parallel task {self.name!r} needs at least one sub-task"
            )
        self._resolver: Callable[[str], Task] | None = None

    @property
    def sub_task_names(self) -> list[str]:
        return list(self._refs)

    def bind(self, resolver: Callable[[str], Task]) -> None:
        """Attach the task resolver (set by the registry after build)."""
        self._resolver = resolver

    def _sub_tasks(self) -> list[Task]:
        if self._resolver is None:
            raise TaskConfigError(
                f"parallel task {self.name!r} is not bound to a task set"
            )
        tasks = []
        for ref in self._refs:
            sub = self._resolver(ref)
            if isinstance(sub, ParallelTask):
                raise TaskConfigError(
                    f"parallel task {self.name!r} cannot nest parallel "
                    f"task {ref!r}"
                )
            tasks.append(sub)
        return tasks

    def required_columns(self) -> set[str]:
        needed: set[str] = set()
        for sub in self._sub_tasks():
            needed |= sub.required_columns()
        return needed

    def partition_local(self) -> bool:
        return all(sub.partition_local() for sub in self._sub_tasks())

    def output_schema(self, input_schemas: Sequence[Schema]) -> Schema:
        schema = input_schemas[0]
        # Independence: every sub-task must be satisfied by the original
        # input schema alone.
        for sub in self._sub_tasks():
            schema.require(
                sub.required_columns(),
                context=f"{self.name} -> {sub.name}",
            )
        merged = schema
        for sub in self._sub_tasks():
            sub_schema = sub.output_schema([schema])
            for column in sub_schema:
                if column.name not in merged:
                    merged = merged.with_column(column)
        return merged

    def apply(self, inputs: Sequence[Table], context: TaskContext) -> Table:
        table = self._single(inputs)
        merged = table
        for sub in self._sub_tasks():
            # Apply against the ORIGINAL table, merge new columns.
            result = sub.apply([table], context)
            for name in result.schema.names:
                if name not in merged.schema:
                    merged = merged.with_column(name, result.column(name))
        context.bump(f"task.{self.name}.subtasks", len(self._refs))
        return merged
