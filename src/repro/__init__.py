"""ShareInsights reproduction — unified full-stack data processing.

A faithful, dependency-light Python reproduction of *ShareInsights: An
Unified Approach to Full-stack Data Processing* (SIGMOD 2015): the flow
file DSL, its compiler, batch + interactive execution engines, the widget
and layout system, REST services, and the collaboration model.

Quickstart::

    from repro import Platform

    platform = Platform()
    dashboard = platform.create_dashboard("demo", FLOW_FILE_TEXT)
    platform.run_dashboard("demo")
    print(dashboard.render().text)

See ``examples/`` for complete dashboards (the paper's Apache and IPL
pipelines) and ``DESIGN.md`` for the architecture map.
"""

from repro.data import Column, ColumnType, Schema, Table
from repro.dsl import (
    FlowFile,
    parse_flow_file,
    serialize_flow_file,
    validate_flow_file,
)
from repro.compiler import (
    FlowCompiler,
    generate_cube_spec,
    generate_pig_script,
)
from repro.dashboard import Dashboard, EnvironmentProfile
from repro.platform import Platform, PlatformEvent
from repro.collab import FlowFileRepository, SharedDataCatalog
from repro.dsl.diagnostics import diagnose
from repro.dashboard.profiler import profile_table
from repro.errors import ShareInsightsError

__version__ = "1.0.0"

__all__ = [
    "Column",
    "ColumnType",
    "Schema",
    "Table",
    "FlowFile",
    "parse_flow_file",
    "serialize_flow_file",
    "validate_flow_file",
    "FlowCompiler",
    "generate_pig_script",
    "generate_cube_spec",
    "Dashboard",
    "EnvironmentProfile",
    "Platform",
    "PlatformEvent",
    "FlowFileRepository",
    "SharedDataCatalog",
    "diagnose",
    "profile_table",
    "ShareInsightsError",
    "__version__",
]
