"""Flow DAG construction.

"On submission, the platform internally builds a directed acyclic graph
(DAG) from the collection of flows specified by the user" (paper §3.4.2).
Users only write *linear* flows; arbitrary shapes emerge because sinks can
feed other flows.  This module assembles that graph, rejects cycles and
duplicate producers, and provides the topological order the executor and
validator walk.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dsl.ast_nodes import FlowFile, FlowSpec
from repro.errors import FlowFileValidationError


@dataclass
class FlowNode:
    """One flow in the DAG: produces ``output`` from ``inputs``."""

    flow: FlowSpec
    #: producing flows this node depends on (output names)
    upstream: set[str] = field(default_factory=set)

    @property
    def output(self) -> str:
        return self.flow.output


class FlowDag:
    """The assembled graph over a flow file's flows."""

    def __init__(self, nodes: dict[str, FlowNode], sources: set[str]):
        self.nodes = nodes
        #: data objects not produced by any flow (external sources or
        #: shared objects resolved from the platform catalog)
        self.sources = sources
        self._order = self._topological_order()

    @property
    def order(self) -> list[str]:
        """Flow outputs in execution order."""
        return list(self._order)

    def ordered_flows(self) -> list[FlowSpec]:
        return [self.nodes[name].flow for name in self._order]

    def downstream_of(self, name: str) -> set[str]:
        """All flow outputs transitively consuming ``name``."""
        result: set[str] = set()
        frontier = [name]
        while frontier:
            current = frontier.pop()
            for node in self.nodes.values():
                if current in node.flow.inputs and node.output not in result:
                    result.add(node.output)
                    frontier.append(node.output)
        return result

    def _topological_order(self) -> list[str]:
        in_degree = {
            name: len(node.upstream) for name, node in self.nodes.items()
        }
        ready = sorted(name for name, deg in in_degree.items() if deg == 0)
        order: list[str] = []
        while ready:
            current = ready.pop(0)
            order.append(current)
            newly_ready = []
            for name, node in self.nodes.items():
                if current in node.upstream:
                    in_degree[name] -= 1
                    if in_degree[name] == 0:
                        newly_ready.append(name)
            # Deterministic order keeps plans and benchmarks stable.
            ready = sorted(ready + newly_ready)
        if len(order) != len(self.nodes):
            cyclic = sorted(set(self.nodes) - set(order))
            raise FlowFileValidationError(
                f"flows form a cycle involving {cyclic}"
            )
        return order


def build_dag(
    flow_file: FlowFile, external: set[str] | None = None
) -> FlowDag:
    """Build the DAG for ``flow_file``.

    ``external`` names data objects resolvable outside the file (the
    shared-object catalog, §3.4.1) — they count as sources.
    """
    external = external or set()
    producers: dict[str, FlowNode] = {}
    for flow in flow_file.flows:
        if flow.output in producers:
            raise FlowFileValidationError(
                f"data object {flow.output!r} is produced by more than "
                f"one flow"
            )
        producers[flow.output] = FlowNode(flow=flow)

    sources: set[str] = set()
    for node in producers.values():
        for input_name in node.flow.inputs:
            if input_name == node.output:
                raise FlowFileValidationError(
                    f"flow {node.output!r} consumes its own output"
                )
            if input_name in producers:
                node.upstream.add(input_name)
            else:
                declared = input_name in flow_file.data
                obj = flow_file.data.get(input_name)
                is_loadable = declared and obj is not None and obj.is_source
                if is_loadable or input_name in external or declared:
                    sources.add(input_name)
                else:
                    raise FlowFileValidationError(
                        f"flow {node.output!r} reads {input_name!r}, "
                        f"which is neither declared, produced by a flow, "
                        f"nor available on the platform"
                    )
    return FlowDag(producers, sources)
