"""The flow-file compiler (paper §4.1, Fig. 25).

Pipeline: parse (done upstream) → validate → build flow DAG → lower to a
logical plan → optimize → split widget pipelines into server/client
halves.  The result, :class:`CompiledFlowFile`, is everything the
dashboard runtime and the engines need; :mod:`repro.compiler.codegen`
renders it to the paper's two build artifacts (a Pig-style batch script
and a JSON cube spec).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler.dag import FlowDag, build_dag
from repro.data import Schema
from repro.dsl.ast_nodes import FlowFile, WidgetSpec
from repro.dsl.validator import ValidationResult, validate_flow_file
from repro.engine.datacube import split_widget_pipeline
from repro.engine.optimizer import OptimizationReport, optimize_plan
from repro.engine.plan import LogicalPlan, build_logical_plan
from repro.errors import CompilationError
from repro.tasks.base import Task
from repro.tasks.registry import TaskRegistry, default_task_registry


def flow_fingerprints(compiled: "CompiledFlowFile") -> dict[str, str]:
    """A content fingerprint per flow output.

    Two compilations assign the same fingerprint to an output iff its
    pipe expression, every task configuration in its transitive upstream,
    and every upstream source's configuration are identical — the
    invariant behind incremental recomputation (a save that does not
    touch a flow's inputs must not re-run it).
    """
    import hashlib
    import json

    flow_file = compiled.flow_file
    fingerprints: dict[str, str] = {}

    def source_fingerprint(name: str) -> str:
        obj = flow_file.data.get(name)
        config = obj.config if obj is not None else {}
        schema = obj.schema.names if obj is not None and obj.schema else []
        return json.dumps(
            ["source", name, schema, config], sort_keys=True, default=str
        )

    for flow in compiled.dag.ordered_flows():
        parts: list[str] = [str(flow.pipe)]
        for task_name in flow.tasks:
            spec = flow_file.tasks.get(task_name)
            config = spec.config if spec is not None else {}
            parts.append(
                json.dumps(
                    [task_name, config], sort_keys=True, default=str
                )
            )
            # Parallel composites depend on their sub-tasks' configs.
            for ref in config.get("parallel", []) or []:
                sub_name = str(ref).removeprefix("T.")
                sub = flow_file.tasks.get(sub_name)
                if sub is not None:
                    parts.append(
                        json.dumps(
                            [sub_name, sub.config],
                            sort_keys=True,
                            default=str,
                        )
                    )
        for input_name in flow.inputs:
            parts.append(
                fingerprints.get(input_name)
                or source_fingerprint(input_name)
            )
        fingerprints[flow.output] = hashlib.sha256(
            "\n".join(parts).encode("utf-8")
        ).hexdigest()
    return fingerprints


@dataclass
class WidgetPlan:
    """How one widget gets its data.

    ``server_tasks`` run once per flow execution (their output is the
    endpoint payload shipped to the client); ``client_tasks`` re-run in
    the data cube on every interaction.  ``static_values`` covers widgets
    with literal sources (Appendix A.2's date Slider).
    """

    widget: WidgetSpec
    source_name: str | None = None
    server_tasks: list[Task] = field(default_factory=list)
    client_tasks: list[Task] = field(default_factory=list)
    static_values: list | None = None

    @property
    def is_static(self) -> bool:
        return self.static_values is not None


@dataclass
class CompiledFlowFile:
    """Everything produced by one compilation."""

    flow_file: FlowFile
    dag: FlowDag
    plan: LogicalPlan
    tasks: dict[str, Task]
    widget_plans: dict[str, WidgetPlan]
    validation: ValidationResult
    optimization: OptimizationReport
    #: computed schema per flow output (from validation)
    schemas: dict[str, Schema] = field(default_factory=dict)

    @property
    def endpoint_names(self) -> list[str]:
        return [obj.name for obj in self.flow_file.endpoints()]


class FlowCompiler:
    """Compiles flow files against a task registry and shared catalog."""

    def __init__(
        self,
        task_registry: TaskRegistry | None = None,
        optimize: bool = True,
        split_widget_flows: bool = True,
    ):
        self._registry = task_registry or default_task_registry()
        self._optimize = optimize
        self._split_widget_flows = split_widget_flows

    def compile(
        self,
        flow_file: FlowFile,
        catalog_schemas: dict[str, Schema] | None = None,
    ) -> CompiledFlowFile:
        """Validate, lower and optimize ``flow_file``.

        Raises :class:`~repro.errors.FlowFileValidationError` on invalid
        input — compilation never produces a plan for a file that would
        fail at run time (§5.2 obs. 7: errors surface at the abstraction
        level, before the engine is involved).
        """
        validation = validate_flow_file(
            flow_file,
            task_registry=self._registry,
            catalog_schemas=catalog_schemas,
        )
        validation.raise_if_errors()
        tasks = self._registry.build_section(
            {name: spec.config for name, spec in flow_file.tasks.items()}
        )
        external = set(catalog_schemas or {})
        dag = build_dag(flow_file, external=external)
        plan = build_logical_plan(dag, tasks)
        if self._optimize:
            optimization = optimize_plan(plan)
        else:
            optimization = OptimizationReport()
        widget_plans = self._plan_widgets(flow_file, tasks)
        return CompiledFlowFile(
            flow_file=flow_file,
            dag=dag,
            plan=plan,
            tasks=tasks,
            widget_plans=widget_plans,
            validation=validation,
            optimization=optimization,
            schemas=dict(validation.schemas),
        )

    def _plan_widgets(
        self, flow_file: FlowFile, tasks: dict[str, Task]
    ) -> dict[str, WidgetPlan]:
        plans: dict[str, WidgetPlan] = {}
        for name, widget in flow_file.widgets.items():
            if widget.static_source is not None:
                plans[name] = WidgetPlan(
                    widget=widget, static_values=list(widget.static_source)
                )
                continue
            if widget.source is None:
                plans[name] = WidgetPlan(widget=widget)
                continue
            pipeline: list[Task] = []
            for task_name in widget.source.tasks:
                task = tasks.get(task_name)
                if task is None:
                    raise CompilationError(
                        f"widget {name!r} uses undefined task {task_name!r}"
                    )
                pipeline.append(task)
            if self._split_widget_flows:
                server, client = split_widget_pipeline(pipeline)
            else:
                server, client = [], pipeline
            plans[name] = WidgetPlan(
                widget=widget,
                source_name=widget.source.inputs[0],
                server_tasks=server,
                client_tasks=client,
            )
        return plans
