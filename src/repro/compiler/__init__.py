"""Flow-file compilation services (paper §4.1, Fig. 25).

The compiler builds a DAG from the collection of linear flows, validates
it, optimizes it, and lowers it to execution plans for the batch engine
and to a data-cube spec for interactive widget flows.
"""

from repro.compiler.dag import FlowDag, build_dag
from repro.compiler.compiler import CompiledFlowFile, FlowCompiler, WidgetPlan
from repro.compiler.codegen import (
    generate_cube_spec,
    generate_pig_script,
    generate_spark_job,
)

__all__ = [
    "FlowDag",
    "build_dag",
    "CompiledFlowFile",
    "FlowCompiler",
    "WidgetPlan",
    "generate_pig_script",
    "generate_spark_job",
    "generate_cube_spec",
]
