"""Code generation: compiled flow file → engine artifacts (Fig. 25).

The paper's compiler emits "either a Pig/Spark job — for data processing
— and a data cube (in JavaScript) — for ad-hoc widget interaction".  Our
engines execute logical plans directly, but the artifacts are still
produced: a readable Pig-Latin-style script (one statement per plan node)
and a JSON cube specification (endpoint payloads plus per-widget client
pipelines).  Both serve as the inspectable lowering the dashboard editor
shows and as compile-path regression anchors for tests.
"""

from __future__ import annotations

import json
from typing import Any

from repro.compiler.compiler import CompiledFlowFile
from repro.engine.plan import FusedPipelineTask, PlanNode
from repro.tasks.base import Task
from repro.tasks.filter import FilterTask
from repro.tasks.groupby import GroupByTask
from repro.tasks.join import JoinTask
from repro.tasks.map_ops import MapTask
from repro.tasks.misc import (
    AddColumnTask,
    DistinctTask,
    LimitTask,
    ProjectTask,
    SortTask,
    UnionTask,
)
from repro.tasks.parallel import ParallelTask
from repro.tasks.topn import TopNTask


def generate_pig_script(compiled: CompiledFlowFile) -> str:
    """Render the batch half of the compilation as a Pig-style script."""
    lines = [
        f"-- generated from flow file {compiled.flow_file.name!r}",
        "-- one statement per logical plan node",
    ]
    alias: dict[str, str] = {}
    for node in compiled.plan.topological_order():
        name = _alias(node, alias)
        if node.kind == "load":
            obj = compiled.flow_file.data.get(node.load_name or "")
            schema = (
                " AS (" + ", ".join(obj.schema.names) + ")"
                if obj is not None and obj.schema is not None
                else ""
            )
            source = (
                obj.config.get("source", node.load_name)
                if obj is not None
                else node.load_name
            )
            lines.append(f"{name} = LOAD '{source}'{schema};")
        else:
            assert node.task is not None
            inputs = [alias[i] for i in node.inputs]
            lines.append(f"{name} = {_statement(node.task, inputs)};")
        if node.materializes:
            obj = compiled.flow_file.data.get(node.materializes)
            if obj is not None and obj.endpoint:
                lines.append(
                    f"STORE {name} INTO 'endpoint://{node.materializes}';"
                )
            elif obj is not None and obj.publish:
                lines.append(
                    f"STORE {name} INTO 'published://{obj.publish}';"
                )
    return "\n".join(lines) + "\n"


def _alias(node: PlanNode, alias: dict[str, str]) -> str:
    name = node.materializes or node.id
    alias[node.id] = name
    return name


def _statement(task: Task, inputs: list[str]) -> str:
    source = inputs[0] if inputs else "?"
    if isinstance(task, FilterTask):
        if task.widget_source is not None:
            return (
                f"FILTER {source} BY /* widget {task.widget_source} "
                f"selection */ TRUE"
            )
        return (
            f"FILTER {source} BY "
            f"{task.config.get('filter_expression', 'TRUE')}"
        )
    if isinstance(task, GroupByTask):
        keys = ", ".join(task.group_columns)
        aggs = ", ".join(
            f"{spec.get('operator', 'count').upper()}"
            f"({spec.get('apply_on', '*')}) AS "
            f"{spec.get('out_field') or spec.get('apply_on') or 'count'}"
            for spec in task._aggregate_specs()
        )
        return (
            f"FOREACH (GROUP {source} BY ({keys})) GENERATE "
            f"group, {aggs}"
        )
    if isinstance(task, JoinTask):
        right = inputs[1] if len(inputs) > 1 else "?"
        keys_left = ", ".join(task._left_keys)
        keys_right = ", ".join(task._right_keys)
        how = task._condition.upper()
        suffix = "" if how == "INNER" else f" {how} OUTER"
        return (
            f"JOIN {source} BY ({keys_left}){suffix}, "
            f"{right} BY ({keys_right})"
        )
    if isinstance(task, MapTask):
        operator = task.config.get("operator", "map")
        return (
            f"FOREACH {source} GENERATE *, "
            f"{operator}({task.config.get('transform', '*')}) AS "
            f"{task.config.get('output', 'out')}"
        )
    if isinstance(task, AddColumnTask):
        return (
            f"FOREACH {source} GENERATE *, "
            f"({task.config.get('expression')}) AS "
            f"{task.config.get('output')}"
        )
    if isinstance(task, TopNTask):
        order = ", ".join(task.config_list("orderby_column"))
        keys = ", ".join(task.group_columns) or "ALL"
        return (
            f"FOREACH (GROUP {source} BY ({keys})) {{ ordered = ORDER "
            f"{source} BY {order}; lim = LIMIT ordered "
            f"{task.config.get('limit')}; GENERATE FLATTEN(lim); }}"
        )
    if isinstance(task, ParallelTask):
        subs = ", ".join(task.sub_task_names)
        return f"FOREACH {source} GENERATE * /* parallel: {subs} */"
    if isinstance(task, FusedPipelineTask):
        chain = " | ".join(
            f"{sub.type_name}:{sub.name}" for sub in task.sub_tasks
        )
        return f"FOREACH {source} GENERATE * /* fused pipeline: {chain} */"
    if isinstance(task, ProjectTask):
        return f"FOREACH {source} GENERATE {', '.join(task.columns)}"
    if isinstance(task, SortTask):
        order = ", ".join(task.config_list("orderby_column"))
        return f"ORDER {source} BY {order}"
    if isinstance(task, LimitTask):
        return f"LIMIT {source} {task.config.get('limit')}"
    if isinstance(task, UnionTask):
        return f"UNION {', '.join(inputs)}"
    if isinstance(task, DistinctTask):
        return f"DISTINCT {source}"
    from repro.tasks.cleansing import CastTask, FillNaTask, SampleTask

    if isinstance(task, FillNaTask):
        fills = ", ".join(
            f"COALESCE({column}, "
            f"{'<' + task._strategy + '>' if task._strategy != 'constant' else repr(value)})"
            f" AS {column}"
            for column, value in task._fills.items()
        )
        return f"FOREACH {source} GENERATE *, {fills}"
    if isinstance(task, CastTask):
        casts = ", ".join(
            f"({ctype.value}) {column} AS {column}"
            for column, ctype in task._casts.items()
        )
        return f"FOREACH {source} GENERATE {casts}, *"
    if isinstance(task, SampleTask):
        amount = (
            task._fraction
            if task._fraction is not None
            else f"{task._n} ROWS"
        )
        return f"SAMPLE {source} {amount}"
    return f"/* custom task {task.type_name}:{task.name} */ {source}"


def generate_spark_job(compiled: CompiledFlowFile) -> str:
    """Render the batch half as a PySpark-style script.

    The paper's compiler targets "either a Pig/Spark job"; this is the
    Spark lowering — DataFrame API calls, one per plan node.  Like the
    Pig script it is an inspectable artifact (our simulated engine is
    what actually executes the plan).
    """
    lines = [
        f"# generated from flow file {compiled.flow_file.name!r}",
        "# PySpark DataFrame lowering, one statement per plan node",
        "from pyspark.sql import SparkSession, functions as F",
        "",
        "spark = SparkSession.builder.appName("
        f"{compiled.flow_file.name!r}).getOrCreate()",
    ]
    alias: dict[str, str] = {}
    for node in compiled.plan.topological_order():
        name = _alias(node, alias)
        if node.kind == "load":
            obj = compiled.flow_file.data.get(node.load_name or "")
            source = (
                obj.config.get("source", node.load_name)
                if obj is not None
                else node.load_name
            )
            fmt = (
                obj.config.get("format", "csv") if obj is not None else "csv"
            )
            lines.append(
                f"{name} = spark.read.format({str(fmt)!r})"
                f".option('header', True).load({str(source)!r})"
            )
        else:
            assert node.task is not None
            inputs = [alias[i] for i in node.inputs]
            lines.append(
                f"{name} = {_spark_statement(node.task, inputs)}"
            )
        if node.materializes:
            obj = compiled.flow_file.data.get(node.materializes)
            if obj is not None and obj.endpoint:
                lines.append(
                    f"{name}.write.mode('overwrite')"
                    f".save('endpoint://{node.materializes}')"
                )
    return "\n".join(lines) + "\n"


def _spark_statement(task: Task, inputs: list[str]) -> str:
    source = inputs[0] if inputs else "df"
    if isinstance(task, FilterTask):
        if task.widget_source is not None:
            return f"{source}  # widget filter: client-side cube"
        expr = str(task.config.get("filter_expression", "true"))
        return f"{source}.filter({expr!r})"
    if isinstance(task, GroupByTask):
        keys = ", ".join(repr(c) for c in task.group_columns)
        aggs = ", ".join(
            f"F.{_spark_agg(spec)}"
            for spec in task._aggregate_specs()
        )
        return f"{source}.groupBy({keys}).agg({aggs})"
    if isinstance(task, JoinTask):
        right = inputs[1] if len(inputs) > 1 else "df2"
        condition = " & ".join(
            f"({source}.{l} == {right}.{r})"
            for l, r in zip(task._left_keys, task._right_keys)
        )
        how = {"inner": "inner", "left": "left", "right": "right",
               "full": "outer"}[task._condition]
        return f"{source}.join({right}, {condition}, {how!r})"
    if isinstance(task, MapTask):
        return (
            f"{source}.withColumn("
            f"{str(task.config.get('output'))!r}, "
            f"udf_{task.config.get('operator')}("
            f"F.col({str(task.config.get('transform', ''))!r})))"
        )
    if isinstance(task, AddColumnTask):
        return (
            f"{source}.withColumn({str(task.config.get('output'))!r}, "
            f"F.expr({str(task.config.get('expression'))!r}))"
        )
    if isinstance(task, TopNTask):
        order = ", ".join(repr(e) for e in task.config_list("orderby_column"))
        keys = ", ".join(repr(c) for c in task.group_columns)
        return (
            f"top_n_per_group({source}, keys=[{keys}], "
            f"order=[{order}], limit={task.config.get('limit')})"
        )
    if isinstance(task, ProjectTask):
        return f"{source}.select({', '.join(map(repr, task.columns))})"
    if isinstance(task, SortTask):
        order = ", ".join(
            repr(e) for e in task.config_list("orderby_column")
        )
        return f"{source}.orderBy({order})"
    if isinstance(task, LimitTask):
        return f"{source}.limit({task.config.get('limit')})"
    if isinstance(task, UnionTask):
        return ".unionByName(".join(inputs) + ")" * (len(inputs) - 1)
    if isinstance(task, DistinctTask):
        return f"{source}.dropDuplicates()"
    if isinstance(task, ParallelTask):
        return f"{source}  # parallel: {', '.join(task.sub_task_names)}"
    if isinstance(task, FusedPipelineTask):
        # A fused chain is just the sub-statements applied in order.
        expression = source
        for sub in task.sub_tasks:
            expression = _spark_statement(sub, [expression])
        return expression
    return f"{source}  # custom task {task.type_name}:{task.name}"


def _spark_agg(spec: dict) -> str:
    operator = str(spec.get("operator", "count")).lower()
    apply_on = spec.get("apply_on", "*")
    out = spec.get("out_field") or apply_on or "count"
    fn = {"sum": "sum", "count": "count", "avg": "avg", "mean": "avg",
          "min": "min", "max": "max"}.get(operator, operator)
    return f"{fn}({str(apply_on)!r}).alias({str(out)!r})"


def generate_cube_spec(compiled: CompiledFlowFile) -> str:
    """Render the interactive half as a JSON cube specification.

    Lists each endpoint payload and, per widget, the client-side pipeline
    the browser cube would evaluate — the artifact the paper's generated
    single-page app embeds.
    """
    spec: dict[str, Any] = {
        "dashboard": compiled.flow_file.name,
        "endpoints": compiled.endpoint_names,
        "widgets": {},
    }
    for name, plan in compiled.widget_plans.items():
        widget_spec: dict[str, Any] = {"type": plan.widget.type_name}
        if plan.is_static:
            widget_spec["static"] = plan.static_values
        else:
            widget_spec["source"] = plan.source_name
            widget_spec["server_tasks"] = [
                t.name for t in plan.server_tasks
            ]
            widget_spec["client_tasks"] = [
                {"name": t.name, "type": t.type_name}
                for t in plan.client_tasks
            ]
        spec["widgets"][name] = widget_spec
    return json.dumps(spec, indent=2, sort_keys=True)
