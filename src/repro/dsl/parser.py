"""Flow-file parser: raw config tree → :class:`~repro.dsl.ast_nodes.FlowFile`.

Section semantics implemented here (paper §3):

* ``D:`` — schema declarations (``name: [col, col => path]``) and, for
  convenience, detail blocks; top-level ``D.name:`` blocks are the
  data-details section of the Appendix B grammar.
* ``T:`` — task configurations (opaque here; instantiated by the task
  registry).
* ``F:`` — flows ``D.out : <pipe>``; detail blocks are also accepted
  inside ``F`` because the paper's own listings put them there (Fig. 19).
* ``W:`` — widgets, with pipe-expression or literal sources.
* ``L:`` — the 12-column grid layout.
* ``+D.name`` — alias for ``endpoint: true`` (Fig. 9).
"""

from __future__ import annotations

import re
from typing import Any

from repro.data import Column, Schema
from repro.dsl.ast_nodes import (
    DataObject,
    FlowFile,
    FlowSpec,
    LayoutCell,
    LayoutSpec,
    TaskSpec,
    WidgetSpec,
)
from repro.dsl.pipes import parse_pipe
from repro.dsl.raw import ConfigMapping, parse_raw
from repro.errors import FlowFileSyntaxError, FlowFileValidationError

_SPAN_RE = re.compile(r"^span(\d{1,2})$", re.IGNORECASE)
_ARROW = "=>"

#: data-object configuration keys with platform meaning; everything else
#: is passed to the connector/format as options.
_SHARING_KEYS = ("endpoint", "publish")


def parse_flow_file(source: str, name: str = "dashboard") -> FlowFile:
    """Parse flow-file text into the object model."""
    raw = parse_raw(source)
    flow_file = FlowFile(name=name)
    for key, value in raw.items():
        key = _normalize_key(key)
        if key in ("D", "data"):
            _parse_data_section(value, flow_file)
        elif key in ("T", "tasks"):
            _parse_task_section(value, flow_file)
        elif key in ("F", "flows"):
            _parse_flow_section(value, flow_file)
        elif key in ("W", "widgets"):
            _parse_widget_section(value, flow_file)
        elif key in ("L", "layout"):
            _parse_layout_section(value, flow_file)
        elif key == "name":
            flow_file.name = str(value)
        elif key.startswith("D.") or key.startswith("+D."):
            # Top-level data-details / endpoint-alias entries.
            _parse_data_entry(key, value, flow_file)
        else:
            raise FlowFileSyntaxError(
                f"unknown top-level section {key!r} "
                f"(expected D, T, F, W, L)"
            )
    return flow_file


def _normalize_key(key: str) -> str:
    """Collapse whitespace around dots: ``D. stack_summary`` → ``D.stack_summary``."""
    return re.sub(r"\s*\.\s*", ".", key.strip())


def _data_name(key: str) -> tuple[str, bool]:
    """Strip ``D.``/``+D.`` qualifiers; returns (name, endpoint_alias)."""
    key = _normalize_key(key)
    endpoint_alias = False
    if key.startswith("+"):
        endpoint_alias = True
        key = key[1:]
    if key.startswith("D."):
        key = key[2:]
    return key, endpoint_alias


def _ensure_data_object(flow_file: FlowFile, name: str) -> DataObject:
    obj = flow_file.data.get(name)
    if obj is None:
        obj = DataObject(name=name)
        flow_file.data[name] = obj
    return obj


# ---------------------------------------------------------------------------
# D section
# ---------------------------------------------------------------------------


def _parse_data_section(section: Any, flow_file: FlowFile) -> None:
    if not isinstance(section, ConfigMapping):
        raise FlowFileSyntaxError("D section must contain data objects")
    for key, value in section.items():
        _parse_data_entry(key, value, flow_file)


def _parse_data_entry(key: str, value: Any, flow_file: FlowFile) -> None:
    name, endpoint_alias = _data_name(key)
    obj = _ensure_data_object(flow_file, name)
    if endpoint_alias:
        obj.endpoint = True
    if isinstance(value, list):
        obj.schema = _parse_schema(name, value)
    elif isinstance(value, ConfigMapping):
        _apply_details(obj, value)
    elif isinstance(value, str) and value.strip():
        # A flow defined in data-section position (Fig. 9).
        flow_file.flows.append(
            FlowSpec(output=name, pipe=parse_pipe(value, allow_no_tasks=False))
        )
    elif value in ("", None):
        pass  # bare mention, e.g. `+D.name:` alias alone
    else:
        raise FlowFileSyntaxError(
            f"data object {name!r}: cannot interpret value {value!r}"
        )


def _parse_schema(name: str, entries: list[Any]) -> Schema:
    columns = []
    for entry in entries:
        if not isinstance(entry, str):
            raise FlowFileSyntaxError(
                f"data object {name!r}: schema entries must be column "
                f"names, got {entry!r}"
            )
        if _ARROW in entry:
            left, _, right = entry.partition(_ARROW)
            # `column => payload_path` (Fig. 18: `location =>
            # user.location` binds payload path user.location to the
            # schema attribute `location`; Fig. 22's intermediate schema
            # confirms the left-hand names are the columns).
            columns.append(
                Column(left.strip(), source_path=right.strip())
            )
        else:
            columns.append(Column(entry.strip()))
    return Schema(columns)


def _apply_details(obj: DataObject, details: ConfigMapping) -> None:
    for key, value in details.items():
        key = key.strip()
        if key == "endpoint":
            obj.endpoint = _truthy(value)
        elif key == "publish":
            obj.publish = str(value)
        else:
            obj.config[key] = _plain_value(value)


# ---------------------------------------------------------------------------
# T section
# ---------------------------------------------------------------------------


def _parse_task_section(section: Any, flow_file: FlowFile) -> None:
    if not isinstance(section, ConfigMapping):
        raise FlowFileSyntaxError("T section must contain task entries")
    for key, value in section.items():
        name = _normalize_key(key)
        if name.startswith("T."):
            name = name[2:]
        if not isinstance(value, ConfigMapping):
            raise FlowFileSyntaxError(
                f"task {name!r} must be a configuration block"
            )
        config = _plain_value(value)
        if name in flow_file.tasks:
            raise FlowFileValidationError(f"duplicate task {name!r}")
        flow_file.tasks[name] = TaskSpec(name=name, config=config)


# ---------------------------------------------------------------------------
# F section
# ---------------------------------------------------------------------------


def _parse_flow_section(section: Any, flow_file: FlowFile) -> None:
    if not isinstance(section, ConfigMapping):
        raise FlowFileSyntaxError("F section must contain flow entries")
    for key, value in section.items():
        name, endpoint_alias = _data_name(key)
        if isinstance(value, ConfigMapping):
            # Data details inside F (paper Fig. 19).
            obj = _ensure_data_object(flow_file, name)
            if endpoint_alias:
                obj.endpoint = True
            _apply_details(obj, value)
            continue
        if not isinstance(value, str) or not value.strip():
            raise FlowFileSyntaxError(
                f"flow {name!r} must be a pipe expression"
            )
        obj = _ensure_data_object(flow_file, name)
        if endpoint_alias:
            obj.endpoint = True
        flow_file.flows.append(
            FlowSpec(output=name, pipe=parse_pipe(value, allow_no_tasks=False))
        )


# ---------------------------------------------------------------------------
# W section
# ---------------------------------------------------------------------------


def _parse_widget_section(section: Any, flow_file: FlowFile) -> None:
    if not isinstance(section, ConfigMapping):
        raise FlowFileSyntaxError("W section must contain widget entries")
    for key, value in section.items():
        name = _normalize_key(key)
        if name.startswith("W."):
            name = name[2:]
        if not isinstance(value, ConfigMapping):
            raise FlowFileSyntaxError(
                f"widget {name!r} must be a configuration block"
            )
        config = _plain_value(value)
        type_name = config.pop("type", None)
        if type_name is None:
            raise FlowFileValidationError(
                f"widget {name!r} has no 'type'"
            )
        source = config.pop("source", None)
        pipe = None
        static = None
        if isinstance(source, list):
            static = source
        elif isinstance(source, str) and source.strip():
            pipe = parse_pipe(source, allow_no_tasks=True)
        elif source is not None:
            raise FlowFileSyntaxError(
                f"widget {name!r}: cannot interpret source {source!r}"
            )
        if name in flow_file.widgets:
            raise FlowFileValidationError(f"duplicate widget {name!r}")
        flow_file.widgets[name] = WidgetSpec(
            name=name,
            type_name=str(type_name),
            source=pipe,
            static_source=static,
            config=config,
        )


# ---------------------------------------------------------------------------
# L section
# ---------------------------------------------------------------------------


def _parse_layout_section(section: Any, flow_file: FlowFile) -> None:
    if not isinstance(section, ConfigMapping):
        raise FlowFileSyntaxError("L section must be a configuration block")
    layout = LayoutSpec()
    for key, value in section.items():
        if key == "description":
            layout.description = str(value)
        elif key == "rows":
            layout.rows = _parse_rows(value)
        else:
            raise FlowFileSyntaxError(
                f"unknown layout key {key!r} (expected description, rows)"
            )
    flow_file.layout = layout


def _parse_rows(value: Any) -> list[list[LayoutCell]]:
    if not isinstance(value, list):
        raise FlowFileSyntaxError("layout 'rows' must be a list")
    rows: list[list[LayoutCell]] = []
    for row in value:
        if not isinstance(row, list):
            raise FlowFileSyntaxError(
                f"layout row must be a cell list, got {row!r}"
            )
        cells: list[LayoutCell] = []
        for cell in row:
            cells.append(_parse_cell(cell))
        total = sum(c.span for c in cells)
        if total > 12:
            raise FlowFileValidationError(
                f"layout row spans {total} columns; the grid has 12"
            )
        rows.append(cells)
    return rows


def _parse_cell(cell: Any) -> LayoutCell:
    if isinstance(cell, ConfigMapping):
        cell = cell.to_dict()
    if isinstance(cell, dict) and len(cell) == 1:
        (span_key, widget), = cell.items()
        match = _SPAN_RE.match(str(span_key).strip())
        if match is None:
            raise FlowFileSyntaxError(
                f"layout cell key must be span<N>, got {span_key!r}"
            )
        widget_name = _normalize_key(str(widget))
        if widget_name.startswith("W."):
            widget_name = widget_name[2:]
        return LayoutCell(span=int(match.group(1)), widget=widget_name)
    raise FlowFileSyntaxError(
        f"layout cell must be a single span<N>: W.widget entry, got {cell!r}"
    )


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _plain_value(value: Any) -> Any:
    if isinstance(value, ConfigMapping):
        return {k: _plain_value(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_plain_value(v) for v in value]
    return value


def _truthy(value: Any) -> bool:
    if isinstance(value, str):
        return value.strip().lower() in ("true", "yes", "1")
    return bool(value)
