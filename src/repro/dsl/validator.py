"""Static flow-file validation.

Checks performed before anything executes (the platform's answer to
§5.2 observation 7 — error reporting should not leak engine internals):

* every flow input resolves to a declared object, another flow's output,
  or a shared catalog object;
* every flow/widget task reference resolves in the ``T:`` section;
* the flow graph is acyclic (delegated to the DAG builder);
* schemas propagate: each task's column requirements are satisfied by
  its input schema, walked in topological order (per §3.3's contract
  "as long as the preceding data source has the column the task
  consumes");
* declared sink schemas are consistent with the computed schemas;
* widgets bind to existing data objects and their data attributes to
  existing columns; interaction filter sources name existing widgets;
* layout cells reference defined widgets and rows fit the 12-column grid
  (grid arithmetic is enforced at parse time; references here).

Results are collected, not raised one at a time, so an editor can show
every problem in one pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.data import Schema
from repro.dsl.ast_nodes import FlowFile, WidgetSpec
from repro.errors import (
    FlowFileValidationError,
    SchemaError,
    ShareInsightsError,
    TaskConfigError,
)
from repro.tasks.registry import TaskRegistry, default_task_registry

#: widget config keys that bind to data-source columns, by widget type;
#: "*" applies to every type.  (Data attributes, §3.5.)
_DATA_ATTRIBUTES: dict[str, tuple[str, ...]] = {
    "*": (),
    "bubblechart": ("text", "size", "legend_text"),
    "wordcloud": ("text", "size"),
    "streamgraph": ("x", "y", "serie", "color"),
    "line": ("x", "y"),
    "bar": ("x", "y"),
    "pie": ("label", "value"),
    "list": ("text",),
    "datagrid": (),
    "mapmarker": (),
    "html": (),
    "slider": (),
}


@dataclass
class ValidationResult:
    """Accumulated validation findings."""

    errors: list[str] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)
    #: computed output schema per flow output (for tooling)
    schemas: dict[str, Schema] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.errors

    def raise_if_errors(self) -> None:
        if self.errors:
            raise FlowFileValidationError(
                "flow file is invalid:\n  - " + "\n  - ".join(self.errors)
            )


def validate_flow_file(
    flow_file: FlowFile,
    task_registry: TaskRegistry | None = None,
    catalog_schemas: dict[str, Schema] | None = None,
) -> ValidationResult:
    """Validate ``flow_file``; returns a :class:`ValidationResult`.

    ``catalog_schemas`` maps published shared-object names to their
    schemas so consumption dashboards (§3.7.2) validate against the
    platform catalog.
    """
    result = ValidationResult()
    registry = task_registry or default_task_registry()
    catalog_schemas = catalog_schemas or {}

    tasks = _instantiate_tasks(flow_file, registry, result)
    known_schemas = _seed_schemas(flow_file, catalog_schemas)
    _validate_flows(flow_file, tasks, known_schemas, catalog_schemas, result)
    _validate_widgets(flow_file, tasks, known_schemas, result)
    _validate_layout(flow_file, result)
    result.schemas = known_schemas
    return result


def _instantiate_tasks(flow_file, registry, result) -> dict[str, Any]:
    try:
        return registry.build_section(
            {name: spec.config for name, spec in flow_file.tasks.items()}
        )
    except (TaskConfigError, ShareInsightsError) as exc:
        result.errors.append(str(exc))
        # Best-effort: instantiate individually so later checks still run.
        tasks = {}
        for name, spec in flow_file.tasks.items():
            try:
                tasks[name] = registry.create(name, spec.config)
            except ShareInsightsError:
                continue
        return tasks


def _seed_schemas(flow_file, catalog_schemas) -> dict[str, Schema]:
    known: dict[str, Schema] = {}
    produced = {flow.output for flow in flow_file.flows}
    for name, obj in flow_file.data.items():
        if obj.schema is not None and name not in produced:
            known[name] = obj.schema
    for name, schema in catalog_schemas.items():
        known.setdefault(name, schema)
    return known


def _validate_flows(
    flow_file, tasks, known_schemas, catalog_schemas, result
) -> None:
    # Imported here to avoid a package-level cycle (the compiler package
    # imports this module for its ValidationResult type).
    from repro.compiler.dag import build_dag

    try:
        dag = build_dag(flow_file, external=set(catalog_schemas))
    except FlowFileValidationError as exc:
        result.errors.append(str(exc))
        return
    for flow in dag.ordered_flows():
        input_schemas: list[Schema] = []
        resolvable = True
        for input_name in flow.inputs:
            schema = known_schemas.get(input_name)
            if schema is None:
                obj = flow_file.data.get(input_name)
                if obj is not None and obj.schema is not None:
                    schema = obj.schema
            if schema is None:
                result.warnings.append(
                    f"flow {flow.output!r}: input {input_name!r} has no "
                    f"declared schema; skipping schema propagation"
                )
                resolvable = False
                break
            input_schemas.append(schema)
        if not resolvable:
            continue
        schema = _propagate(flow, input_schemas, tasks, result)
        if schema is None:
            continue
        known_schemas[flow.output] = schema
        declared = flow_file.data.get(flow.output)
        if declared is not None and declared.schema is not None:
            missing = [
                c for c in declared.schema.names if c not in schema
            ]
            if missing:
                result.errors.append(
                    f"flow {flow.output!r} declares columns {missing} "
                    f"that the flow does not produce "
                    f"(computed: {schema.names})"
                )


def _propagate(flow, input_schemas, tasks, result) -> Schema | None:
    current = list(input_schemas)
    for i, task_name in enumerate(flow.tasks):
        task = tasks.get(task_name)
        if task is None:
            result.errors.append(
                f"flow {flow.output!r} uses undefined task {task_name!r}"
            )
            return None
        try:
            output = task.output_schema(current)
        except (SchemaError, TaskConfigError, FlowFileValidationError) as exc:
            result.errors.append(
                f"flow {flow.output!r}, task {task_name!r}: {exc}"
            )
            return None
        current = [output]
        if i == 0 and len(input_schemas) > 1 and task.arity == (1, 1):
            result.errors.append(
                f"flow {flow.output!r}: task {task_name!r} takes one "
                f"input but the flow fans in {len(input_schemas)}"
            )
            return None
    return current[0]


def _validate_widgets(flow_file, tasks, known_schemas, result) -> None:
    for widget in flow_file.widgets.values():
        if widget.source is None:
            continue
        source_name = widget.source.inputs[0]
        schema = known_schemas.get(source_name)
        declared = flow_file.data.get(source_name)
        if schema is None and declared is not None:
            schema = declared.schema
        if schema is None and declared is None:
            result.warnings.append(
                f"widget {widget.name!r} reads {source_name!r}, which is "
                f"not declared locally (resolved from the shared catalog "
                f"at run time)"
            )
        # Interaction-flow tasks must exist and their widget sources too.
        for task_name in widget.source.tasks:
            task = tasks.get(task_name)
            if task is None:
                result.errors.append(
                    f"widget {widget.name!r} uses undefined task "
                    f"{task_name!r}"
                )
                continue
            filter_source = getattr(task, "widget_source", None)
            if filter_source and filter_source not in flow_file.widgets:
                result.errors.append(
                    f"task {task_name!r} filters by widget "
                    f"{filter_source!r}, which is not defined"
                )
        if schema is not None and not widget.source.tasks:
            _check_data_attributes(widget, schema, result)


def _check_data_attributes(
    widget: WidgetSpec, schema: Schema, result: ValidationResult
) -> None:
    attribute_names = _DATA_ATTRIBUTES.get(widget.type_name.lower())
    if attribute_names is None:
        return  # custom widget: columns unknown statically
    for attribute in attribute_names:
        value = widget.config.get(attribute)
        if isinstance(value, str) and value and value not in schema:
            result.errors.append(
                f"widget {widget.name!r}: data attribute "
                f"{attribute}={value!r} is not a column of its source "
                f"(has {schema.names})"
            )


def _validate_layout(flow_file, result) -> None:
    if flow_file.layout is None:
        return
    for name in flow_file.layout.widget_names():
        if name not in flow_file.widgets:
            result.errors.append(
                f"layout references undefined widget {name!r}"
            )
    # Sub-layout widgets (type Layout / TabLayout) also reference widgets.
    for widget in flow_file.widgets.values():
        if widget.type_name.lower() == "layout":
            for row in widget.config.get("rows", []):
                for cell in row if isinstance(row, list) else []:
                    for ref in (
                        cell.values() if isinstance(cell, dict) else []
                    ):
                        ref_name = str(ref)
                        if ref_name.startswith("W."):
                            ref_name = ref_name[2:]
                        if ref_name not in flow_file.widgets:
                            result.errors.append(
                                f"sub-layout {widget.name!r} references "
                                f"undefined widget {ref_name!r}"
                            )
        elif widget.type_name.lower() == "tablayout":
            for tab in widget.config.get("tabs", []):
                body = tab.get("body") if isinstance(tab, dict) else None
                if body:
                    ref_name = str(body)
                    if ref_name.startswith("W."):
                        ref_name = ref_name[2:]
                    if ref_name not in flow_file.widgets:
                        result.errors.append(
                            f"tab layout {widget.name!r} references "
                            f"undefined widget {ref_name!r}"
                        )
