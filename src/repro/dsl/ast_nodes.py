"""Flow-file object model.

:class:`FlowFile` is what :func:`repro.dsl.parser.parse_flow_file`
produces, what the validator checks, what the compiler lowers, and what
the serializer writes back out — the AST at the centre of Fig. 25.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.data import Schema
from repro.dsl.pipes import PipeExpr
from repro.errors import FlowFileValidationError


@dataclass
class DataObject:
    """One ``D`` section entry: declared schema + details.

    ``schema`` comes from the ``name: [col, col => path, ...]`` form
    (Figs. 5, 6, 18); ``config`` from the details block (source, protocol,
    format and friends, Figs. 4, 6).  ``endpoint`` and ``publish``
    implement the sharing semantics of §3.4.1.
    """

    name: str
    schema: Schema | None = None
    config: dict[str, Any] = field(default_factory=dict)
    endpoint: bool = False
    publish: str | None = None

    @property
    def is_source(self) -> bool:
        """Has external configuration (a place to fetch from)."""
        return bool(
            self.config.get("source")
            or self.config.get("rows") is not None
            or self.config.get("protocol")
            or self.config.get("query")
            or self.config.get("table")
        )

    @property
    def is_shared(self) -> bool:
        return self.endpoint or self.publish is not None


@dataclass
class TaskSpec:
    """One ``T`` section entry (uninstantiated task configuration)."""

    name: str
    config: dict[str, Any] = field(default_factory=dict)

    @property
    def type_name(self) -> str | None:
        value = self.config.get("type")
        if value is None and "parallel" in self.config:
            return "parallel"
        return str(value) if value is not None else None


@dataclass
class FlowSpec:
    """One ``F`` section entry: ``D.output : <pipe expression>``."""

    output: str
    pipe: PipeExpr

    @property
    def inputs(self) -> tuple[str, ...]:
        return self.pipe.inputs

    @property
    def tasks(self) -> tuple[str, ...]:
        return self.pipe.tasks


@dataclass
class WidgetSpec:
    """One ``W`` section entry.

    ``source`` is the parsed pipe expression when the widget reads a data
    object (possibly through interaction-flow tasks, §3.5.1);
    ``static_source`` holds literal values (the Slider in Appendix A.2).
    ``config`` keeps every other attribute — the widget implementation
    splits them into data attributes and visual attributes.
    """

    name: str
    type_name: str
    source: PipeExpr | None = None
    static_source: list[Any] | None = None
    config: dict[str, Any] = field(default_factory=dict)


@dataclass
class LayoutCell:
    """One grid cell: a column span and a widget reference."""

    span: int
    widget: str

    def __post_init__(self) -> None:
        if not 1 <= self.span <= 12:
            raise FlowFileValidationError(
                f"layout span must be 1..12, got {self.span} "
                f"for widget {self.widget!r}"
            )


@dataclass
class LayoutSpec:
    """The ``L`` section: description plus rows of cells (§3.6)."""

    description: str = ""
    rows: list[list[LayoutCell]] = field(default_factory=list)

    def widget_names(self) -> list[str]:
        return [cell.widget for row in self.rows for cell in row]


@dataclass
class FlowFile:
    """A parsed flow file: the five sections of §3.1."""

    name: str = "dashboard"
    data: dict[str, DataObject] = field(default_factory=dict)
    tasks: dict[str, TaskSpec] = field(default_factory=dict)
    flows: list[FlowSpec] = field(default_factory=list)
    widgets: dict[str, WidgetSpec] = field(default_factory=dict)
    layout: LayoutSpec | None = None

    # -- section-presence helpers (flow-file groups, §4.5.3) ---------------
    @property
    def is_data_processing_only(self) -> bool:
        """True for data-processing-mode files: D/F/T but no W/L (§3.7.1)."""
        return bool(self.flows) and not self.widgets and self.layout is None

    @property
    def is_consumption_only(self) -> bool:
        """True for consumption-mode files: W/L/T but no F (§3.7.2)."""
        return bool(self.widgets) and not self.flows

    # -- lookup helpers ------------------------------------------------------
    def data_object(self, name: str) -> DataObject:
        obj = self.data.get(name)
        if obj is None:
            raise FlowFileValidationError(
                f"unknown data object {name!r}; "
                f"declared: {sorted(self.data)}"
            )
        return obj

    def flow_for(self, output: str) -> FlowSpec | None:
        for flow in self.flows:
            if flow.output == output:
                return flow
        return None

    def endpoints(self) -> list[DataObject]:
        return [obj for obj in self.data.values() if obj.endpoint]

    def published(self) -> list[DataObject]:
        return [obj for obj in self.data.values() if obj.publish]

    def external_sources(self) -> list[DataObject]:
        """Data objects fetched from outside (not produced by a flow)."""
        produced = {flow.output for flow in self.flows}
        return [
            obj
            for name, obj in self.data.items()
            if name not in produced and obj.is_source
        ]
