"""Flow-file serialization: object model → canonical text.

The collaboration layer stores flow files as text (the paper's branch &
merge model works "since the entire data pipeline is represented as a
single text file", §4.5.1), so the model must round-trip:
``parse_flow_file(serialize_flow_file(ff))`` is equivalent to ``ff``.

The emitted form is canonical — four-space indentation, sections in
D, F, T, W, L order, one blank line between entries — which also makes
three-way merges (section- and entry-granular) well-behaved.
"""

from __future__ import annotations

from typing import Any

from repro.dsl.ast_nodes import FlowFile, LayoutSpec

_INDENT = "    "


def serialize_flow_file(flow_file: FlowFile) -> str:
    """Render ``flow_file`` as canonical flow-file text."""
    parts: list[str] = []
    if flow_file.data:
        parts.append(_serialize_data(flow_file))
    if flow_file.flows:
        parts.append(_serialize_flows(flow_file))
    if flow_file.tasks:
        parts.append(_serialize_tasks(flow_file))
    if flow_file.widgets:
        parts.append(_serialize_widgets(flow_file))
    if flow_file.layout is not None:
        parts.append(_serialize_layout(flow_file.layout))
    return "\n".join(parts) + "\n"


def _serialize_data(flow_file: FlowFile) -> str:
    lines = ["D:"]
    details: list[str] = []
    for name, obj in flow_file.data.items():
        if obj.schema is not None:
            columns = []
            for column in obj.schema:
                if column.source_path:
                    columns.append(f"{column.name} => {column.source_path}")
                else:
                    columns.append(column.name)
            lines.append(f"{_INDENT}{name}: [{', '.join(columns)}]")
        if obj.config or obj.endpoint or obj.publish:
            details.append(f"D.{name}:")
            if obj.endpoint:
                details.append(f"{_INDENT}endpoint: true")
            if obj.publish:
                details.append(f"{_INDENT}publish: {obj.publish}")
            for key, value in obj.config.items():
                details.extend(_emit(key, value, 1))
    body = "\n".join(lines)
    if details:
        body += "\n\n" + "\n".join(details)
    return body + "\n"


def _serialize_flows(flow_file: FlowFile) -> str:
    lines = ["F:"]
    for flow in flow_file.flows:
        lines.append(f"{_INDENT}D.{flow.output}: {flow.pipe}")
    return "\n".join(lines) + "\n"


def _serialize_tasks(flow_file: FlowFile) -> str:
    lines = ["T:"]
    for name, spec in flow_file.tasks.items():
        lines.append(f"{_INDENT}{name}:")
        for key, value in spec.config.items():
            lines.extend(_emit(key, value, 2))
    return "\n".join(lines) + "\n"


def _serialize_widgets(flow_file: FlowFile) -> str:
    lines = ["W:"]
    for name, widget in flow_file.widgets.items():
        lines.append(f"{_INDENT}{name}:")
        lines.append(f"{_INDENT * 2}type: {widget.type_name}")
        if widget.source is not None:
            lines.append(f"{_INDENT * 2}source: {widget.source}")
        elif widget.static_source is not None:
            lines.append(
                f"{_INDENT * 2}source: "
                f"{_inline_list(widget.static_source)}"
            )
        for key, value in widget.config.items():
            lines.extend(_emit(key, value, 2))
    return "\n".join(lines) + "\n"


def _serialize_layout(layout: LayoutSpec) -> str:
    lines = ["L:"]
    if layout.description:
        lines.append(f"{_INDENT}description: {layout.description}")
    if layout.rows:
        lines.append(f"{_INDENT}rows:")
        for row in layout.rows:
            cells = ", ".join(
                f"span{cell.span}: W.{cell.widget}" for cell in row
            )
            lines.append(f"{_INDENT}- [{cells}]")
    return "\n".join(lines) + "\n"


def _emit(key: str, value: Any, depth: int) -> list[str]:
    prefix = _INDENT * depth
    if isinstance(value, dict):
        lines = [f"{prefix}{key}:"]
        for sub_key, sub_value in value.items():
            lines.extend(_emit(sub_key, sub_value, depth + 1))
        return lines
    if isinstance(value, list):
        if value and all(isinstance(v, list) for v in value):
            # Nested rows (sub-layout grids): one inline row per item.
            lines = [f"{prefix}{key}:"]
            for row in value:
                lines.append(f"{prefix}- {_inline_list(row)}")
            return lines
        if value and all(isinstance(v, dict) for v in value):
            lines = [f"{prefix}{key}:"]
            for item in value:
                first = True
                for sub_key, sub_value in item.items():
                    marker = "- " if first else "  "
                    lines.extend(
                        _emit_inline(
                            f"{prefix}{_INDENT}{marker}",
                            sub_key,
                            sub_value,
                            depth + 2,
                        )
                    )
                    first = False
            return lines
        return [f"{prefix}{key}: {_inline_list(value)}"]
    return [f"{prefix}{key}: {_scalar(value)}"]


def _emit_inline(
    lead: str, key: str, value: Any, depth: int
) -> list[str]:
    if isinstance(value, (dict, list)):
        lines = [f"{lead}{key}:"]
        if isinstance(value, dict):
            for sub_key, sub_value in value.items():
                lines.extend(_emit(sub_key, sub_value, depth))
        else:
            lines[-1] = f"{lead}{key}: {_inline_list(value)}"
        return lines
    return [f"{lead}{key}: {_scalar(value)}"]


def _inline_list(values: list[Any]) -> str:
    parts = []
    for value in values:
        if isinstance(value, dict) and len(value) == 1:
            (k, v), = value.items()
            parts.append(f"{k}: {_scalar(v)}")
        else:
            parts.append(_scalar(value))
    return "[" + ", ".join(parts) + "]"


def _scalar(value: Any) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if value is None:
        return "''"
    if isinstance(value, str):
        needs_quote = (
            value == ""
            or value != value.strip()
            or any(ch in value for ch in ":#[]{}")
            and not value.startswith(("D.", "T.", "W."))
        )
        # Dates and other hyphenated literals survive unquoted, but
        # quoting strings with separators keeps the parser honest.
        if needs_quote:
            escaped = value.replace("'", "\\'")
            return f"'{escaped}'"
        return value
    return str(value)
