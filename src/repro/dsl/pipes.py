"""Pipe-expression parser (paper Appendix B, flow section grammar).

A flow expression transforms data objects through tasks with Unix pipe
notation::

    flow := '('? D.input (',' D.input)* ')'? ('|' T.task)+

The same notation configures widget sources (§3.5: "source:
D.project_data | T.get_date | T.aggregate_project_bubbles"), where zero
tasks are also legal (a widget bound straight to a data object).

This is a hand-written recursive-descent parser over a token stream, per
the lexer rules in Appendix B (identifiers, round brackets, ``D.``/``T.``
qualifiers, ``|`` and ``,``).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.errors import FlowFileSyntaxError

_TOKEN_RE = re.compile(
    r"\s*(?:(?P<qual>[DTW])\s*\.\s*(?P<qname>[A-Za-z_][A-Za-z0-9_]*)"
    r"|(?P<name>[A-Za-z_][A-Za-z0-9_]*)"
    r"|(?P<punct>[(),|]))"
)


@dataclass(frozen=True)
class PipeExpr:
    """A parsed pipe expression: fan-in inputs, then a task chain."""

    inputs: tuple[str, ...]
    tasks: tuple[str, ...] = field(default_factory=tuple)

    def __str__(self) -> str:
        if len(self.inputs) == 1:
            head = f"D.{self.inputs[0]}"
        else:
            head = "(" + ", ".join(f"D.{i}" for i in self.inputs) + ")"
        tail = "".join(f" | T.{t}" for t in self.tasks)
        return head + tail


@dataclass(frozen=True)
class _Token:
    kind: str  # data | task | widget | bare | punct | eof
    text: str
    position: int


def _tokenize(source: str) -> list[_Token]:
    tokens: list[_Token] = []
    pos = 0
    while pos < len(source):
        if source[pos].isspace():
            pos += 1
            continue
        match = _TOKEN_RE.match(source, pos)
        if match is None or match.end() == pos:
            raise FlowFileSyntaxError(
                f"bad pipe expression near {source[pos:pos + 12]!r} "
                f"in {source!r}"
            )
        if match.group("qual"):
            kind = {"D": "data", "T": "task", "W": "widget"}[
                match.group("qual")
            ]
            tokens.append(_Token(kind, match.group("qname"), pos))
        elif match.group("name"):
            tokens.append(_Token("bare", match.group("name"), pos))
        else:
            tokens.append(_Token("punct", match.group("punct"), pos))
        pos = match.end()
    tokens.append(_Token("eof", "", pos))
    return tokens


def parse_pipe(source: str, allow_no_tasks: bool = True) -> PipeExpr:
    """Parse a flow/widget-source pipe expression.

    Bare identifiers (no ``D.`` qualifier) are accepted as data-object
    names for convenience; the paper's listings always qualify.
    """
    tokens = _tokenize(source)
    pos = 0

    def peek() -> _Token:
        return tokens[pos]

    def advance() -> _Token:
        nonlocal pos
        token = tokens[pos]
        pos += 1
        return token

    inputs: list[str] = []
    if peek().kind == "punct" and peek().text == "(":
        advance()
        while True:
            token = advance()
            if token.kind not in ("data", "bare"):
                raise FlowFileSyntaxError(
                    f"expected data object in fan-in, got {token.text!r} "
                    f"in {source!r}"
                )
            inputs.append(token.text)
            token = advance()
            if token.text == ")":
                break
            if token.text != ",":
                raise FlowFileSyntaxError(
                    f"expected ',' or ')' in fan-in, got {token.text!r} "
                    f"in {source!r}"
                )
    else:
        token = advance()
        if token.kind not in ("data", "bare"):
            raise FlowFileSyntaxError(
                f"pipe expression must start with a data object, "
                f"got {token.text!r} in {source!r}"
            )
        inputs.append(token.text)

    tasks: list[str] = []
    while peek().kind == "punct" and peek().text == "|":
        advance()
        token = advance()
        if token.kind not in ("task", "bare"):
            raise FlowFileSyntaxError(
                f"expected task after '|', got {token.text!r} in {source!r}"
            )
        tasks.append(token.text)

    trailing = peek()
    if trailing.kind != "eof":
        raise FlowFileSyntaxError(
            f"unexpected trailing {trailing.text!r} in {source!r}"
        )
    if not tasks and not allow_no_tasks:
        raise FlowFileSyntaxError(
            f"flow must apply at least one task: {source!r}"
        )
    return PipeExpr(inputs=tuple(inputs), tasks=tuple(tasks))


def looks_like_pipe(value: object) -> bool:
    """Heuristic: does a raw config value hold a pipe expression?"""
    if not isinstance(value, str):
        return False
    text = value.strip()
    return text.startswith(("D.", "D .", "(")) or " | " in text or "|" in text
