"""The flow-file DSL (paper §3, grammar in Appendix B).

A flow file is a single text document with Data (D), Task (T), Flow (F),
Widget (W) and Layout (L) sections describing an entire data pipeline.
:func:`parse_flow_file` turns text into a :class:`FlowFile` model;
:func:`repro.dsl.serializer.serialize_flow_file` round-trips it back.
"""

from repro.dsl.ast_nodes import (
    DataObject,
    FlowFile,
    FlowSpec,
    LayoutCell,
    LayoutSpec,
    PipeExpr,
    TaskSpec,
    WidgetSpec,
)
from repro.dsl.parser import parse_flow_file
from repro.dsl.pipes import parse_pipe
from repro.dsl.serializer import serialize_flow_file
from repro.dsl.validator import validate_flow_file

__all__ = [
    "DataObject",
    "FlowFile",
    "FlowSpec",
    "LayoutCell",
    "LayoutSpec",
    "PipeExpr",
    "TaskSpec",
    "WidgetSpec",
    "parse_flow_file",
    "parse_pipe",
    "serialize_flow_file",
    "validate_flow_file",
]
