"""Error pin-pointing (paper §6, §5.2 obs. 7).

"Since the flow file is an abstraction layer, more work needs to be done
to enable users to pin-point errors quickly (without leaking the
underlying engine errors or debug logs)."

The validator already *collects* abstraction-level errors; this module
anchors them back to the flow-file **text**: each validation error is
matched to the section entry it talks about and annotated with the line
where that entry is defined, producing the editor-ready report the paper
asks for.  :func:`diagnose` is the one-call entry point used by the REST
layer and the dashboard editor.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.dsl.parser import parse_flow_file
from repro.dsl.validator import validate_flow_file
from repro.errors import FlowFileSyntaxError, ShareInsightsError

_NAME_RE = re.compile(r"'([A-Za-z_][\w]*)'")


@dataclass
class Diagnostic:
    """One pin-pointed problem."""

    message: str
    line: int | None = None
    entry: str | None = None
    severity: str = "error"  # "error" | "warning"

    def render(self) -> str:
        location = f"line {self.line}: " if self.line else ""
        return f"{self.severity}: {location}{self.message}"


@dataclass
class DiagnosticReport:
    diagnostics: list[Diagnostic] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not any(d.severity == "error" for d in self.diagnostics)

    def render(self) -> str:
        if not self.diagnostics:
            return "flow file is valid"
        return "\n".join(d.render() for d in self.diagnostics)


def _entry_lines(source: str) -> dict[str, int]:
    """Map every section entry name to its (1-based) defining line.

    An entry is a ``name:`` / ``D.name:`` / ``T.name:`` key at any
    indent; the first definition wins.
    """
    lines: dict[str, int] = {}
    key_re = re.compile(r"^\s*\+?(?:[DTWF]\s*\.\s*)?([A-Za-z_]\w*)\s*:")
    for lineno, text in enumerate(source.splitlines(), start=1):
        stripped = text.split("#", 1)[0]
        match = key_re.match(stripped)
        if match:
            lines.setdefault(match.group(1), lineno)
    return lines


def _anchor(message: str, entry_lines: dict[str, int]) -> tuple[
    int | None, str | None
]:
    """Find the most specific quoted name in ``message`` with a line."""
    best: tuple[int | None, str | None] = (None, None)
    for name in _NAME_RE.findall(message):
        line = entry_lines.get(name)
        if line is not None:
            # Prefer the *latest*-defined mentioned entry: error text
            # mentions the flow first and the failing task second, and
            # the task definition is where the fix usually goes.
            if best[0] is None or line > best[0]:
                best = (line, name)
    return best


def diagnose(
    source: str,
    task_registry=None,
    catalog_schemas=None,
) -> DiagnosticReport:
    """Parse + validate ``source``, pin-pointing every problem."""
    report = DiagnosticReport()
    try:
        flow_file = parse_flow_file(source)
    except FlowFileSyntaxError as exc:
        report.diagnostics.append(
            Diagnostic(
                message=str(exc),
                line=exc.line or None,
                severity="error",
            )
        )
        return report
    except ShareInsightsError as exc:
        report.diagnostics.append(Diagnostic(message=str(exc)))
        return report
    entry_lines = _entry_lines(source)
    result = validate_flow_file(
        flow_file,
        task_registry=task_registry,
        catalog_schemas=catalog_schemas,
    )
    for message in result.errors:
        line, entry = _anchor(message, entry_lines)
        report.diagnostics.append(
            Diagnostic(message=message, line=line, entry=entry)
        )
    for message in result.warnings:
        line, entry = _anchor(message, entry_lines)
        report.diagnostics.append(
            Diagnostic(
                message=message, line=line, entry=entry,
                severity="warning",
            )
        )
    return report
