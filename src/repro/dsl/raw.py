"""Raw flow-file text parsing: lines → an ordered multimap tree.

The flow file is an indentation-structured configuration format (the
paper's listings are YAML-flavoured).  This module handles the *textual*
layer only — section interpretation lives in :mod:`repro.dsl.parser`.

Why a multimap and not a plain dict: the same key legitimately appears
twice — ``D.players_tweets`` is both a flow definition and, later, a
data-details block (paper Fig. 19) — so mappings are ordered lists of
``(key, value)`` pairs wrapped in :class:`ConfigMapping`.

Syntax handled (all appear in the paper's listings):

* ``key: value`` entries and nested blocks by indentation
* ``- item`` list entries, including ``- key: value`` mapping items that
  continue on deeper-indented lines (Fig. 8 aggregates)
* inline lists ``[a, b => c, 'quoted']`` spanning multiple physical lines
  (bracket-balanced continuation, Figs. 5, 18, 20)
* pipe continuations: a line ending with ``|`` or a following line
  starting with ``|`` extends the previous logical line (Figs. 9, 12)
* block scalars: a key whose indented children are not ``key: value``
  pairs takes the joined text as its value (Fig. 8's flow entry)
* comments ``# ...`` (quote-aware) and the ``#+ ... +`` annotation form
* the ``+D.name:`` endpoint alias prefix is preserved for the parser
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Iterator

from repro.errors import FlowFileSyntaxError


class ConfigMapping:
    """An ordered multimap of configuration entries."""

    def __init__(self) -> None:
        self.pairs: list[tuple[str, Any]] = []

    def add(self, key: str, value: Any) -> None:
        self.pairs.append((key, value))

    def get(self, key: str, default: Any = None) -> Any:
        for k, v in self.pairs:
            if k == key:
                return v
        return default

    def get_all(self, key: str) -> list[Any]:
        return [v for k, v in self.pairs if k == key]

    def keys(self) -> list[str]:
        return [k for k, _v in self.pairs]

    def items(self) -> list[tuple[str, Any]]:
        return list(self.pairs)

    def __contains__(self, key: object) -> bool:
        return any(k == key for k, _v in self.pairs)

    def __len__(self) -> int:
        return len(self.pairs)

    def __bool__(self) -> bool:
        return bool(self.pairs)

    def __iter__(self) -> Iterator[tuple[str, Any]]:
        return iter(self.pairs)

    def to_dict(self) -> dict[str, Any]:
        """Collapse to a plain dict (later entries win), recursively."""
        out: dict[str, Any] = {}
        for key, value in self.pairs:
            out[key] = _plain(value)
        return out

    def __repr__(self) -> str:
        return f"ConfigMapping({self.pairs!r})"


def _plain(value: Any) -> Any:
    if isinstance(value, ConfigMapping):
        return value.to_dict()
    if isinstance(value, list):
        return [_plain(v) for v in value]
    return value


# ---------------------------------------------------------------------------
# Logical lines
# ---------------------------------------------------------------------------


@dataclass
class LogicalLine:
    indent: int
    text: str
    lineno: int


def strip_comment(line: str) -> str:
    """Remove a ``#`` comment, respecting single/double quotes."""
    in_single = in_double = False
    for i, ch in enumerate(line):
        if ch == "'" and not in_double:
            in_single = not in_single
        elif ch == '"' and not in_single:
            in_double = not in_double
        elif ch == "#" and not in_single and not in_double:
            return line[:i]
    return line


def _bracket_balance(text: str) -> int:
    """Net open brackets (``(``/``[``) outside quotes."""
    balance = 0
    in_single = in_double = False
    for ch in text:
        if ch == "'" and not in_double:
            in_single = not in_single
        elif ch == '"' and not in_single:
            in_double = not in_double
        elif not in_single and not in_double:
            if ch in "([":
                balance += 1
            elif ch in ")]":
                balance -= 1
    return balance


def logical_lines(source: str) -> list[LogicalLine]:
    """Physical lines → logical lines with continuations merged."""
    physical: list[tuple[int, str, int]] = []
    for lineno, raw in enumerate(source.splitlines(), start=1):
        text = strip_comment(raw.replace("\t", "    ")).rstrip()
        stripped = text.strip()
        if not stripped:
            continue
        indent = len(text) - len(text.lstrip())
        physical.append((indent, stripped, lineno))

    merged: list[LogicalLine] = []
    i = 0
    while i < len(physical):
        indent, text, lineno = physical[i]
        i += 1
        # Continuation: unbalanced brackets, trailing '|' or trailing ','
        # inside brackets; or the next line starting with '|'.
        while i < len(physical):
            balance = _bracket_balance(text)
            next_text = physical[i][1]
            if balance > 0 or text.endswith("|") or text.endswith(","):
                text = f"{text} {next_text}"
                i += 1
            elif next_text.startswith("|"):
                text = f"{text} {next_text}"
                i += 1
            else:
                break
        if _bracket_balance(text) != 0:
            raise FlowFileSyntaxError(
                "unbalanced brackets", line=lineno
            )
        merged.append(LogicalLine(indent=indent, text=text, lineno=lineno))
    return merged


# ---------------------------------------------------------------------------
# Scalar / inline value parsing
# ---------------------------------------------------------------------------

_NUMBER_RE = re.compile(r"^-?\d+(\.\d+)?$")


def split_top_level(text: str, separator: str) -> list[str]:
    """Split on ``separator`` outside quotes and brackets."""
    parts: list[str] = []
    depth = 0
    in_single = in_double = False
    current: list[str] = []
    for ch in text:
        if ch == "'" and not in_double:
            in_single = not in_single
        elif ch == '"' and not in_single:
            in_double = not in_double
        elif not in_single and not in_double:
            if ch in "([":
                depth += 1
            elif ch in ")]":
                depth -= 1
        if ch == separator and depth == 0 and not in_single and not in_double:
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
    parts.append("".join(current))
    return parts


def parse_value(text: str, lineno: int = 0) -> Any:
    """Parse an inline value: list, quoted string, number, bool, or raw."""
    text = text.strip()
    if not text:
        return ""
    if text.startswith("[") and text.endswith("]"):
        return _parse_inline_list(text[1:-1], lineno)
    if (text.startswith("'") and text.endswith("'") and len(text) >= 2) or (
        text.startswith('"') and text.endswith('"') and len(text) >= 2
    ):
        return text[1:-1]
    lowered = text.lower()
    if lowered == "true":
        return True
    if lowered == "false":
        return False
    if _NUMBER_RE.match(text):
        return float(text) if "." in text else int(text)
    return text


def _parse_inline_list(body: str, lineno: int) -> list[Any]:
    items: list[Any] = []
    for part in split_top_level(body, ","):
        part = part.strip()
        if not part:
            continue  # tolerate trailing commas (Fig. 6)
        key, value = _try_key_value(part)
        if key is not None:
            # Layout cells: [span12: W.x, span4: W.y] → one-entry dicts.
            items.append({key: parse_value(value, lineno)})
        else:
            items.append(parse_value(part, lineno))
    return items


_KEY_RE = re.compile(r"^([A-Za-z_+][\w.+\- ]*?)\s*:\s*(.*)$", re.DOTALL)


def _try_key_value(text: str) -> tuple[str | None, str]:
    """Split ``key: value`` when the text looks like a mapping entry.

    ``=>`` mappings, pipe expressions and URLs must NOT be split: a key
    never contains ``|``, ``=>``, ``/`` or quotes before the colon.
    """
    match = _KEY_RE.match(text)
    if match is None:
        return None, text
    key = match.group(1).strip()
    if "=>" in key or "|" in key or "/" in key:
        return None, text
    value = match.group(2)
    # 'https://x' style: colon immediately followed by '//' is a URL, but
    # _KEY_RE requires whitespace-or-chars; guard anyway.
    if value.startswith("//"):
        return None, text
    return key, value


# ---------------------------------------------------------------------------
# Block parser
# ---------------------------------------------------------------------------


def parse_raw(source: str) -> ConfigMapping:
    """Parse flow-file text into a :class:`ConfigMapping` tree."""
    lines = logical_lines(source)
    mapping, consumed = _parse_block(lines, 0, min_indent=-1)
    if consumed != len(lines):
        line = lines[consumed]
        raise FlowFileSyntaxError(
            f"unexpected content {line.text!r}", line=line.lineno
        )
    if not isinstance(mapping, ConfigMapping):
        raise FlowFileSyntaxError("flow file must start with a section key")
    return mapping


def _parse_block(
    lines: list[LogicalLine], start: int, min_indent: int
) -> tuple[Any, int]:
    """Parse the block whose lines are indented more than ``min_indent``.

    Returns ``(value, next_index)``; value is a ConfigMapping, list, or
    joined scalar string.
    """
    if start >= len(lines) or lines[start].indent <= min_indent:
        return ConfigMapping(), start
    block_indent = lines[start].indent
    # Classify the block: list, mapping, or scalar continuation.
    first = lines[start]
    if first.text.startswith("- "):
        return _parse_list_block(lines, start, block_indent, min_indent)
    key, _value = _try_key_value(first.text)
    if key is None:
        return _parse_scalar_block(lines, start, min_indent)
    return _parse_mapping_block(lines, start, block_indent, min_indent)


def _parse_mapping_block(
    lines: list[LogicalLine], start: int, block_indent: int, min_indent: int
) -> tuple[ConfigMapping, int]:
    mapping = ConfigMapping()
    i = start
    while i < len(lines):
        line = lines[i]
        if line.indent <= min_indent:
            break
        if line.indent != block_indent:
            raise FlowFileSyntaxError(
                f"inconsistent indentation (expected {block_indent}, "
                f"got {line.indent})",
                line=line.lineno,
            )
        key, value_text = _try_key_value(line.text)
        if key is None:
            raise FlowFileSyntaxError(
                f"expected 'key: value', got {line.text!r}",
                line=line.lineno,
            )
        i += 1
        if value_text.strip():
            mapping.add(key, parse_value(value_text, line.lineno))
        else:
            child, i = _parse_block(lines, i, min_indent=block_indent)
            if (
                isinstance(child, ConfigMapping)
                and not child
                and i < len(lines)
                and lines[i].indent == block_indent
                and lines[i].text.startswith("- ")
            ):
                # YAML-style list at the same indent as its key
                # (paper Fig. 16: `rows:` with `- [...]` siblings).
                child, i = _parse_list_block(
                    lines,
                    i,
                    block_indent,
                    min_indent=block_indent - 1,
                    stop_on_non_item=True,
                )
            mapping.add(key, child)
    return mapping, i


def _parse_list_block(
    lines: list[LogicalLine],
    start: int,
    block_indent: int,
    min_indent: int,
    stop_on_non_item: bool = False,
) -> tuple[list[Any], int]:
    items: list[Any] = []
    i = start
    while i < len(lines):
        line = lines[i]
        if line.indent <= min_indent:
            break
        if stop_on_non_item and (
            line.indent == block_indent and not line.text.startswith("- ")
        ):
            break
        if line.indent != block_indent or not line.text.startswith("- "):
            # Continuation of the previous '- key: value' item: deeper
            # lines belong to the item's mapping.
            if line.indent > block_indent and items and isinstance(
                items[-1], ConfigMapping
            ):
                child, i = _parse_block(lines, i, min_indent=block_indent)
                if isinstance(child, ConfigMapping):
                    for k, v in child.items():
                        items[-1].add(k, v)
                    continue
            raise FlowFileSyntaxError(
                f"expected list item, got {line.text!r}", line=line.lineno
            )
        body = line.text[2:].strip()
        i += 1
        key, value_text = _try_key_value(body)
        if key is not None:
            item = ConfigMapping()
            if value_text.strip():
                item.add(key, parse_value(value_text, line.lineno))
            else:
                child, i = _parse_block(lines, i, min_indent=block_indent)
                item.add(key, child)
            # Absorb sibling keys indented under the '-' item.
            while i < len(lines) and lines[i].indent > block_indent:
                sub, i = _parse_block(lines, i, min_indent=block_indent)
                if isinstance(sub, ConfigMapping):
                    for k, v in sub.items():
                        item.add(k, v)
                else:
                    break
            items.append(item)
        else:
            items.append(parse_value(body, line.lineno))
    return items, i


def _parse_scalar_block(
    lines: list[LogicalLine], start: int, min_indent: int
) -> tuple[str, int]:
    parts = []
    i = start
    while i < len(lines) and lines[i].indent > min_indent:
        key, _ = _try_key_value(lines[i].text)
        if key is not None or lines[i].text.startswith("- "):
            break
        parts.append(lines[i].text)
        i += 1
    return " ".join(parts), i
