"""Collaboration services (paper §4.5).

Three mechanisms: the DVCS-style branch-and-merge model over flow-file
text (:mod:`repro.collab.repo`, :mod:`repro.collab.merge`), the shared
data-object catalog behind ``publish:``/``endpoint:`` (:mod:`
repro.collab.catalog`), and flow-file groups emerging from the two.
"""

from repro.collab.catalog import PublishedObject, SharedDataCatalog
from repro.collab.repo import Commit, FlowFileRepository
from repro.collab.merge import merge_flow_files

__all__ = [
    "PublishedObject",
    "SharedDataCatalog",
    "Commit",
    "FlowFileRepository",
    "merge_flow_files",
]
