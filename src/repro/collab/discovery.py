"""Shared-data-set discovery (paper §6).

"Since data is published on the platform, it potentially allows for
discovery of data-sets to enrich an existing data pipeline.  This is an
important feature [Bizer et al.; Morton et al.]."

:func:`suggest_enrichments` ranks the catalog's published objects by how
naturally they join against a given schema: shared column names are
join-key candidates, and the *new* columns an object would contribute
measure its enrichment value.  :func:`suggest_join_task` goes one step
further and emits a ready-to-paste ``T:`` section entry for the best
candidate — discovery to working pipeline in one call.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.collab.catalog import SharedDataCatalog
from repro.data import Schema


@dataclass
class EnrichmentSuggestion:
    """One ranked discovery result."""

    name: str
    owner: str
    #: columns usable as join keys (present in both schemas)
    join_keys: list[str] = field(default_factory=list)
    #: columns the published object would add
    new_columns: list[str] = field(default_factory=list)
    score: float = 0.0

    def describe(self) -> str:
        return (
            f"{self.name} (from {self.owner}): join on "
            f"{', '.join(self.join_keys)} to gain "
            f"{', '.join(self.new_columns) or 'nothing new'}"
        )


def suggest_enrichments(
    catalog: SharedDataCatalog,
    schema: Schema,
    exclude_owner: str | None = None,
    limit: int = 5,
) -> list[EnrichmentSuggestion]:
    """Published objects that can enrich a pipeline with ``schema``.

    Score = join-key plausibility × information gain: an object needs at
    least one shared column to join on, and scores higher the more new
    columns it contributes (diminishing per shared column beyond the
    first, since many shared columns usually mean near-duplicate data).
    """
    own = set(schema.names)
    suggestions: list[EnrichmentSuggestion] = []
    for entry in catalog.entries():
        if exclude_owner is not None and entry.owner == exclude_owner:
            continue
        other = entry.schema.names
        join_keys = [c for c in other if c in own]
        if not join_keys:
            continue
        new_columns = [c for c in other if c not in own]
        if not new_columns:
            continue
        score = len(new_columns) / (1 + 0.5 * (len(join_keys) - 1))
        suggestions.append(
            EnrichmentSuggestion(
                name=entry.name,
                owner=entry.owner,
                join_keys=join_keys,
                new_columns=new_columns,
                score=round(score, 4),
            )
        )
    suggestions.sort(key=lambda s: (-s.score, s.name))
    return suggestions[:limit]


def suggest_join_task(
    suggestion: EnrichmentSuggestion, left_object: str
) -> str:
    """A ready-to-paste ``T:`` entry joining ``left_object`` with the
    suggested published object."""
    key = suggestion.join_keys[0]
    task_name = f"enrich_with_{suggestion.name}"
    return (
        f"{task_name}:\n"
        f"    type: join\n"
        f"    left: {left_object} by {key}\n"
        f"    right: {suggestion.name} by {key}\n"
        f"    join_condition: left outer\n"
    )
