"""Flow-file version control (paper §4.5.1).

"The ShareInsights platform leverages the collaboration model found in
distributed version control systems (DVCS), like Git... CRUD operations
on flow files map to source commits."  This module is that store: a
content-addressed commit graph per dashboard with branches, merges (via
the section-aware three-way merge in :mod:`repro.collab.merge`), fork
lineage across dashboards, and history walks.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass

from repro.errors import RepositoryError


@dataclass(frozen=True)
class Commit:
    """One immutable commit."""

    id: str
    dashboard: str
    parents: tuple[str, ...]
    blob: str  # content hash
    message: str
    author: str
    timestamp: float


def _hash_text(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


class FlowFileRepository:
    """A DVCS over flow files, one document per dashboard."""

    DEFAULT_BRANCH = "main"

    def __init__(self) -> None:
        self._blobs: dict[str, str] = {}
        self._commits: dict[str, Commit] = {}
        #: (dashboard, branch) -> head commit id
        self._refs: dict[tuple[str, str], str] = {}
        self._counter = 0

    # ------------------------------------------------------------------
    # basic operations
    # ------------------------------------------------------------------
    def commit(
        self,
        dashboard: str,
        text: str,
        message: str = "",
        author: str = "",
        branch: str = DEFAULT_BRANCH,
    ) -> Commit:
        """Record a new version of ``dashboard`` on ``branch``."""
        blob = _hash_text(text)
        self._blobs[blob] = text
        parent = self._refs.get((dashboard, branch))
        parents = (parent,) if parent else ()
        commit = self._new_commit(
            dashboard, parents, blob, message, author
        )
        self._refs[(dashboard, branch)] = commit.id
        return commit

    def read(
        self,
        dashboard: str,
        branch: str = DEFAULT_BRANCH,
        commit_id: str | None = None,
    ) -> str:
        """Flow-file text at a branch head or a specific commit."""
        if commit_id is None:
            commit_id = self._head(dashboard, branch)
        commit = self._commits.get(commit_id)
        if commit is None:
            raise RepositoryError(f"unknown commit {commit_id!r}")
        return self._blobs[commit.blob]

    def head(self, dashboard: str, branch: str = DEFAULT_BRANCH) -> Commit:
        return self._commits[self._head(dashboard, branch)]

    def history(
        self, dashboard: str, branch: str = DEFAULT_BRANCH
    ) -> list[Commit]:
        """Commits reachable from the branch head, newest first."""
        head = self._refs.get((dashboard, branch))
        if head is None:
            raise RepositoryError(
                f"no branch {branch!r} for dashboard {dashboard!r}"
            )
        seen: set[str] = set()
        order: list[Commit] = []
        frontier = [head]
        while frontier:
            commit_id = frontier.pop(0)
            if commit_id in seen:
                continue
            seen.add(commit_id)
            commit = self._commits[commit_id]
            order.append(commit)
            frontier.extend(commit.parents)
        order.sort(key=lambda c: -c.timestamp)
        return order

    def branches(self, dashboard: str) -> list[str]:
        return sorted(
            branch
            for (doc, branch) in self._refs
            if doc == dashboard
        )

    def dashboards(self) -> list[str]:
        return sorted({doc for (doc, _branch) in self._refs})

    # ------------------------------------------------------------------
    # branching & merging
    # ------------------------------------------------------------------
    def create_branch(
        self,
        dashboard: str,
        new_branch: str,
        from_branch: str = DEFAULT_BRANCH,
    ) -> None:
        if (dashboard, new_branch) in self._refs:
            raise RepositoryError(
                f"branch {new_branch!r} already exists for "
                f"{dashboard!r}"
            )
        self._refs[(dashboard, new_branch)] = self._head(
            dashboard, from_branch
        )

    def merge(
        self,
        dashboard: str,
        source_branch: str,
        into_branch: str = DEFAULT_BRANCH,
        author: str = "",
    ) -> Commit:
        """Three-way merge of ``source_branch`` into ``into_branch``.

        Fast-forwards when possible; otherwise performs the section-aware
        flow-file merge and records a two-parent merge commit.  Raises
        :class:`~repro.errors.MergeConflictError` on conflicting edits.
        """
        from repro.collab.merge import merge_flow_files

        ours_id = self._head(dashboard, into_branch)
        theirs_id = self._head(dashboard, source_branch)
        if ours_id == theirs_id:
            return self._commits[ours_id]
        base_id = self._common_ancestor(ours_id, theirs_id)
        if base_id == ours_id:
            # Fast-forward.
            self._refs[(dashboard, into_branch)] = theirs_id
            return self._commits[theirs_id]
        if base_id == theirs_id:
            return self._commits[ours_id]
        base = self._blobs[self._commits[base_id].blob] if base_id else ""
        ours = self._blobs[self._commits[ours_id].blob]
        theirs = self._blobs[self._commits[theirs_id].blob]
        merged = merge_flow_files(base, ours, theirs)
        blob = _hash_text(merged)
        self._blobs[blob] = merged
        commit = self._new_commit(
            dashboard,
            (ours_id, theirs_id),
            blob,
            f"merge {source_branch} into {into_branch}",
            author,
        )
        self._refs[(dashboard, into_branch)] = commit.id
        return commit

    def fork(
        self, source_dashboard: str, new_dashboard: str, author: str = ""
    ) -> Commit:
        """Copy another dashboard's head as a new document root.

        The fork commit keeps the source head as its parent, preserving
        lineage (the §5.2 'fork to go' observation is measured off this).
        """
        if (new_dashboard, self.DEFAULT_BRANCH) in self._refs:
            raise RepositoryError(
                f"dashboard {new_dashboard!r} already has history"
            )
        source_head = self._head(source_dashboard)
        source_commit = self._commits[source_head]
        commit = self._new_commit(
            new_dashboard,
            (source_head,),
            source_commit.blob,
            f"fork of {source_dashboard}",
            author,
        )
        self._refs[(new_dashboard, self.DEFAULT_BRANCH)] = commit.id
        return commit

    def fork_origin(self, dashboard: str) -> str | None:
        """The dashboard this one was forked from, if any."""
        # The dashboard's own oldest commit; history() may continue into
        # the fork source's commits, so filter by document first.
        own = [c for c in self.history(dashboard) if c.dashboard == dashboard]
        root = own[-1]
        if root.parents:
            parent = self._commits.get(root.parents[0])
            if parent is not None and parent.dashboard != dashboard:
                return parent.dashboard
        return None

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _head(self, dashboard: str, branch: str = DEFAULT_BRANCH) -> str:
        head = self._refs.get((dashboard, branch))
        if head is None:
            raise RepositoryError(
                f"no branch {branch!r} for dashboard {dashboard!r}"
            )
        return head

    def _new_commit(
        self,
        dashboard: str,
        parents: tuple[str, ...],
        blob: str,
        message: str,
        author: str,
    ) -> Commit:
        self._counter += 1
        commit_id = hashlib.sha256(
            f"{dashboard}:{parents}:{blob}:{self._counter}".encode()
        ).hexdigest()[:16]
        commit = Commit(
            id=commit_id,
            dashboard=dashboard,
            parents=tuple(p for p in parents if p),
            blob=blob,
            message=message,
            author=author,
            timestamp=time.time(),
        )
        self._commits[commit_id] = commit
        return commit

    def _common_ancestor(self, a: str, b: str) -> str | None:
        ancestors_a = self._ancestors(a)
        frontier = [b]
        seen: set[str] = set()
        while frontier:
            commit_id = frontier.pop(0)
            if commit_id in ancestors_a:
                return commit_id
            if commit_id in seen:
                continue
            seen.add(commit_id)
            frontier.extend(self._commits[commit_id].parents)
        return None

    def _ancestors(self, commit_id: str) -> set[str]:
        result: set[str] = set()
        frontier = [commit_id]
        while frontier:
            current = frontier.pop(0)
            if current in result:
                continue
            result.add(current)
            frontier.extend(self._commits[current].parents)
        return result
