"""Shared data-object catalog (paper §3.4.1, §4.5.3).

A data object published with ``publish: <name>`` becomes available to
*other* dashboards by that name: "Other dashboards can use this data
object by name without having to configure it in their own dashboards.
(The platform searches for this data object - in the shared objects
list - when referenced in another dashboard)".

The catalog records which dashboard produced each object and counts
consumer resolutions — the bookkeeping behind the sharing ablation
benchmark (recomputing a cleaning pipeline per consumer vs publishing it
once).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.data import Schema, Table
from repro.errors import CatalogError


@dataclass
class PublishedObject:
    """One shared data object."""

    name: str
    table: Table
    owner: str
    #: local data-object name inside the producing dashboard
    source_object: str
    published_at: float = field(default_factory=time.time)
    resolutions: int = 0

    @property
    def schema(self) -> Schema:
        return self.table.schema


class SharedDataCatalog:
    """The platform-wide list of published data objects."""

    def __init__(self) -> None:
        self._objects: dict[str, PublishedObject] = {}

    def publish(
        self,
        name: str,
        table: Table,
        owner: str,
        source_object: str = "",
    ) -> PublishedObject:
        """Publish (or refresh) a shared object.

        Re-publishing under the same name by the same owner replaces the
        data (a flow re-ran); a different owner is a conflict.
        """
        existing = self._objects.get(name)
        if existing is not None and existing.owner != owner:
            raise CatalogError(
                f"shared object {name!r} is already published by "
                f"{existing.owner!r}"
            )
        obj = PublishedObject(
            name=name,
            table=table,
            owner=owner,
            source_object=source_object or name,
        )
        if existing is not None:
            obj.resolutions = existing.resolutions
        self._objects[name] = obj
        return obj

    def resolve(self, name: str) -> Table:
        obj = self._objects.get(name)
        if obj is None:
            raise CatalogError(
                f"no shared data object {name!r}; "
                f"published: {sorted(self._objects)}"
            )
        obj.resolutions += 1
        return obj.table

    def schema(self, name: str) -> Schema:
        obj = self._objects.get(name)
        if obj is None:
            raise CatalogError(f"no shared data object {name!r}")
        return obj.schema

    def schemas(self) -> dict[str, Schema]:
        """All published schemas (fed to the validator/compiler)."""
        return {name: obj.schema for name, obj in self._objects.items()}

    def unpublish(self, name: str, owner: str) -> None:
        obj = self._objects.get(name)
        if obj is None:
            raise CatalogError(f"no shared data object {name!r}")
        if obj.owner != owner:
            raise CatalogError(
                f"shared object {name!r} belongs to {obj.owner!r}"
            )
        del self._objects[name]

    def __contains__(self, name: object) -> bool:
        return name in self._objects

    def names(self) -> list[str]:
        return sorted(self._objects)

    def entries(self) -> list[PublishedObject]:
        return [self._objects[name] for name in self.names()]

    def flow_file_group(self) -> dict[str, list[str]]:
        """Producer dashboard → published object names (§4.5.3 groups)."""
        groups: dict[str, list[str]] = {}
        for obj in self._objects.values():
            groups.setdefault(obj.owner, []).append(obj.name)
        return {owner: sorted(names) for owner, names in groups.items()}
