"""Section-aware three-way merge of flow files.

"Since the flow file has clearly demarcated sections, the anxieties with
merging and repeated branching should be significantly lower" (paper
§4.5.1).  This merge exploits exactly that structure: instead of textual
line merging, entries are merged per section — data objects by name,
tasks by name, flows by output, widgets by name — with classic three-way
rules per entry:

* changed on one side only → take the change,
* changed identically on both → take it,
* added on one side → keep it,
* changed differently on both sides → conflict (reported with the
  section and entry name, never a raw diff hunk).

The merged file is re-serialized canonically.
"""

from __future__ import annotations

from typing import Any, Callable, TypeVar

from repro.dsl.ast_nodes import DataObject, FlowFile, FlowSpec
from repro.dsl.parser import parse_flow_file
from repro.dsl.serializer import serialize_flow_file
from repro.errors import MergeConflictError

T = TypeVar("T")


def merge_flow_files(base: str, ours: str, theirs: str) -> str:
    """Merge two descendants of ``base``; returns merged flow-file text."""
    base_ff = parse_flow_file(base) if base.strip() else FlowFile()
    ours_ff = parse_flow_file(ours)
    theirs_ff = parse_flow_file(theirs)

    conflicts: list[tuple[str, str]] = []
    merged = FlowFile(name=ours_ff.name)

    merged.data = _merge_entries(
        "D",
        {n: _data_key(o) for n, o in base_ff.data.items()},
        base_ff.data,
        ours_ff.data,
        theirs_ff.data,
        _data_key,
        conflicts,
    )
    merged.tasks = _merge_entries(
        "T",
        None,
        base_ff.tasks,
        ours_ff.tasks,
        theirs_ff.tasks,
        lambda spec: repr(sorted(_freeze(spec.config))),
        conflicts,
    )
    merged.widgets = _merge_entries(
        "W",
        None,
        base_ff.widgets,
        ours_ff.widgets,
        theirs_ff.widgets,
        lambda spec: repr(
            (
                spec.type_name,
                str(spec.source),
                spec.static_source,
                sorted(_freeze(spec.config)),
            )
        ),
        conflicts,
    )
    merged.flows = _merge_flows(base_ff, ours_ff, theirs_ff, conflicts)
    merged.layout = _merge_scalar(
        "L",
        "layout",
        _layout_key(base_ff),
        (_layout_key(ours_ff), ours_ff.layout),
        (_layout_key(theirs_ff), theirs_ff.layout),
        conflicts,
    )

    if conflicts:
        names = ", ".join(f"{s}:{k}" for s, k in conflicts)
        raise MergeConflictError(
            f"conflicting edits in {names}", conflicts=conflicts
        )
    return serialize_flow_file(merged)


def _data_key(obj: DataObject) -> str:
    schema = (
        tuple((c.name, c.source_path) for c in obj.schema)
        if obj.schema is not None
        else None
    )
    return repr(
        (schema, sorted(_freeze(obj.config)), obj.endpoint, obj.publish)
    )


def _freeze(config: dict[str, Any]) -> list[tuple[str, str]]:
    return [(k, repr(v)) for k, v in sorted(config.items())]


def _layout_key(flow_file: FlowFile) -> str | None:
    layout = flow_file.layout
    if layout is None:
        return None
    return repr(
        (
            layout.description,
            [
                [(cell.span, cell.widget) for cell in row]
                for row in layout.rows
            ],
        )
    )


def _merge_entries(
    section: str,
    _unused,
    base: dict[str, T],
    ours: dict[str, T],
    theirs: dict[str, T],
    key: Callable[[T], str],
    conflicts: list[tuple[str, str]],
) -> dict[str, T]:
    merged: dict[str, T] = {}
    names = list(
        dict.fromkeys(list(ours) + list(theirs) + list(base))
    )
    for name in names:
        in_base = name in base
        in_ours = name in ours
        in_theirs = name in theirs
        base_key = key(base[name]) if in_base else None
        ours_key = key(ours[name]) if in_ours else None
        theirs_key = key(theirs[name]) if in_theirs else None

        if in_ours and in_theirs:
            if ours_key == theirs_key:
                merged[name] = ours[name]
            elif ours_key == base_key:
                merged[name] = theirs[name]
            elif theirs_key == base_key:
                merged[name] = ours[name]
            else:
                conflicts.append((section, name))
        elif in_ours:
            # Deleted on theirs?  Only a conflict if ours also changed it.
            if in_base and ours_key != base_key:
                conflicts.append((section, name))
            elif not in_base:
                merged[name] = ours[name]  # our addition
            # else: unchanged by us, deleted by them → stays deleted
        elif in_theirs:
            if in_base and theirs_key != base_key:
                conflicts.append((section, name))
            elif not in_base:
                merged[name] = theirs[name]
    return merged


def _merge_flows(
    base_ff: FlowFile,
    ours_ff: FlowFile,
    theirs_ff: FlowFile,
    conflicts: list[tuple[str, str]],
) -> list[FlowSpec]:
    def by_output(ff: FlowFile) -> dict[str, FlowSpec]:
        return {flow.output: flow for flow in ff.flows}

    merged = _merge_entries(
        "F",
        None,
        by_output(base_ff),
        by_output(ours_ff),
        by_output(theirs_ff),
        lambda flow: str(flow.pipe),
        conflicts,
    )
    # Preserve a stable order: ours first, then theirs-only additions.
    ordered: list[FlowSpec] = []
    seen: set[str] = set()
    for source in (ours_ff.flows, theirs_ff.flows):
        for flow in source:
            if flow.output in merged and flow.output not in seen:
                ordered.append(merged[flow.output])
                seen.add(flow.output)
    return ordered


def _merge_scalar(
    section: str,
    name: str,
    base_key: str | None,
    ours: tuple[str | None, Any],
    theirs: tuple[str | None, Any],
    conflicts: list[tuple[str, str]],
) -> Any:
    ours_key, ours_value = ours
    theirs_key, theirs_value = theirs
    if ours_key == theirs_key:
        return ours_value
    if ours_key == base_key:
        return theirs_value
    if theirs_key == base_key:
        return ours_value
    conflicts.append((section, name))
    return ours_value
