"""Zero-dependency metrics: counters, gauges, fixed-bucket histograms.

A :class:`MetricsRegistry` is the single place run-time numbers land —
stage timings, shuffle volume, endpoint query counts, resilience
retries.  Instruments are get-or-create by name (re-registering with
the same name returns the same instrument; a different type raises), so
call sites can declare what they record without threading instrument
objects around.

Histograms use **fixed buckets** (Prometheus-style cumulative ``le``
bounds) and derive p50/p95/p99 summaries by linear interpolation within
the owning bucket — no reservoir, no per-observation storage, O(1)
memory per label set.

Everything is guarded by one registry lock; the WSGI server and the
engines can share a registry safely.
"""

from __future__ import annotations

import threading
from typing import Any, Mapping

from repro.errors import ShareInsightsError

#: default duration buckets (seconds) — spans micro-benchmarks to slow runs
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: Mapping[str, Any]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class _Instrument:
    """Shared name/help/label-series bookkeeping."""

    kind = "untyped"

    def __init__(self, name: str, help: str, lock: threading.RLock):
        self.name = name
        self.help = help
        self._lock = lock
        self._series: dict[LabelKey, Any] = {}

    def series(self) -> list[tuple[dict[str, str], Any]]:
        """(labels, value) pairs for every label combination seen."""
        with self._lock:
            return [
                (dict(key), value)
                for key, value in sorted(self._series.items())
            ]


class Counter(_Instrument):
    """Monotonically increasing value, one series per label set."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        with self._lock:
            return self._series.get(_label_key(labels), 0.0)

    def total(self) -> float:
        """Sum across all label sets."""
        with self._lock:
            return sum(self._series.values())


class Gauge(_Instrument):
    """A value that can go up and down (queue depth, live dashboards)."""

    kind = "gauge"

    def set(self, value: float, **labels: Any) -> None:
        with self._lock:
            self._series[_label_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: Any) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: Any) -> float:
        with self._lock:
            return self._series.get(_label_key(labels), 0.0)


class _HistogramSeries:
    """Cumulative bucket counts + count/sum for one label set."""

    __slots__ = ("counts", "count", "sum")

    def __init__(self, num_buckets: int):
        self.counts = [0] * num_buckets  # per-bucket (non-cumulative)
        self.count = 0
        self.sum = 0.0


class Histogram(_Instrument):
    """Fixed-bucket histogram with interpolated percentile summaries."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        lock: threading.RLock,
        buckets: tuple[float, ...] | None = None,
    ):
        super().__init__(name, help, lock)
        bounds = tuple(sorted(buckets or DEFAULT_BUCKETS))
        if not bounds:
            raise ValueError(f"histogram {self.name!r} needs buckets")
        self.buckets = bounds

    def observe(self, value: float, **labels: Any) -> None:
        key = _label_key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                # +1 overflow bucket (+Inf)
                series = _HistogramSeries(len(self.buckets) + 1)
                self._series[key] = series
            index = len(self.buckets)
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    index = i
                    break
            series.counts[index] += 1
            series.count += 1
            series.sum += value

    def percentile(self, q: float, **labels: Any) -> float:
        """Estimate the q-quantile (0 < q <= 1) for one label set.

        Linear interpolation inside the bucket that crosses the target
        rank; observations beyond the last finite bound clamp to it.
        Returns 0.0 with no observations.
        """
        with self._lock:
            series = self._series.get(_label_key(labels))
            if series is None or series.count == 0:
                return 0.0
            target = q * series.count
            cumulative = 0
            lower = 0.0
            for i, bound in enumerate(self.buckets):
                in_bucket = series.counts[i]
                if cumulative + in_bucket >= target and in_bucket:
                    fraction = (target - cumulative) / in_bucket
                    return lower + fraction * (bound - lower)
                cumulative += in_bucket
                lower = bound
            return self.buckets[-1]

    def summary(self, **labels: Any) -> dict[str, float]:
        """count/sum/p50/p95/p99 for one label set."""
        with self._lock:
            series = self._series.get(_label_key(labels))
            count = series.count if series else 0
            total = series.sum if series else 0.0
        return {
            "count": count,
            "sum": total,
            "p50": self.percentile(0.50, **labels),
            "p95": self.percentile(0.95, **labels),
            "p99": self.percentile(0.99, **labels),
        }


class MetricsRegistry:
    """Named instruments, JSON snapshots, Prometheus exposition."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._instruments: dict[str, _Instrument] = {}

    # -- declaration (get-or-create) --------------------------------------
    def counter(self, name: str, help: str = "") -> Counter:
        return self._declare(name, help, Counter)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._declare(name, help, Gauge)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: tuple[float, ...] | None = None,
    ) -> Histogram:
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if not isinstance(existing, Histogram):
                    raise ShareInsightsError(
                        f"metric {name!r} is already registered as a "
                        f"{existing.kind}, not a histogram"
                    )
                return existing
            histogram = Histogram(name, help, self._lock, buckets)
            self._instruments[name] = histogram
            return histogram

    def _declare(self, name: str, help: str, cls: type) -> Any:
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ShareInsightsError(
                        f"metric {name!r} is already registered as a "
                        f"{existing.kind}, not a {cls.kind}"
                    )
                return existing
            instrument = cls(name, help, self._lock)
            self._instruments[name] = instrument
            return instrument

    # -- reading -----------------------------------------------------------
    def get(self, name: str) -> _Instrument | None:
        with self._lock:
            return self._instruments.get(name)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._instruments)

    def as_dict(self) -> dict[str, Any]:
        """A JSON-able snapshot of every instrument and series."""
        snapshot: dict[str, Any] = {}
        with self._lock:
            instruments = dict(self._instruments)
        for name in sorted(instruments):
            instrument = instruments[name]
            entry: dict[str, Any] = {
                "type": instrument.kind,
                "help": instrument.help,
            }
            if isinstance(instrument, Histogram):
                entry["buckets"] = list(instrument.buckets)
                entry["series"] = [
                    {
                        "labels": labels,
                        **instrument.summary(**labels),
                    }
                    for labels, _ in instrument.series()
                ]
            else:
                entry["series"] = [
                    {"labels": labels, "value": value}
                    for labels, value in instrument.series()
                ]
            snapshot[name] = entry
        return snapshot

    def to_prometheus(self) -> str:
        """The text exposition format (version 0.0.4)."""
        lines: list[str] = []
        with self._lock:
            instruments = dict(self._instruments)
        for name in sorted(instruments):
            instrument = instruments[name]
            if instrument.help:
                lines.append(f"# HELP {name} {instrument.help}")
            lines.append(f"# TYPE {name} {instrument.kind}")
            if isinstance(instrument, Histogram):
                for labels, series in instrument.series():
                    cumulative = 0
                    for i, bound in enumerate(instrument.buckets):
                        cumulative += series.counts[i]
                        lines.append(
                            f"{name}_bucket"
                            f"{_fmt_labels(labels, le=_fmt_float(bound))}"
                            f" {cumulative}"
                        )
                    lines.append(
                        f"{name}_bucket{_fmt_labels(labels, le='+Inf')}"
                        f" {series.count}"
                    )
                    lines.append(
                        f"{name}_sum{_fmt_labels(labels)}"
                        f" {_fmt_float(series.sum)}"
                    )
                    lines.append(
                        f"{name}_count{_fmt_labels(labels)} {series.count}"
                    )
            else:
                for labels, value in instrument.series():
                    lines.append(
                        f"{name}{_fmt_labels(labels)} {_fmt_float(value)}"
                    )
        return "\n".join(lines) + "\n"


def _fmt_float(value: float) -> str:
    """Render counts as integers and everything else compactly."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")
    )


def _fmt_labels(labels: Mapping[str, str], **extra: str) -> str:
    merged = {**labels, **extra}
    if not merged:
        return ""
    inner = ",".join(
        f'{key}="{_escape_label(str(value))}"'
        for key, value in merged.items()
    )
    return "{" + inner + "}"
