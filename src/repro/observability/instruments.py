"""The platform's metric vocabulary and recording helpers.

Every metric the platform emits is declared here — one module to read
for the full list (documented for operators in
``docs/observability.md``), and one call site per event shape so
engines, connectors, the dashboard runtime and the REST server all
record consistently-labelled series into a shared
:class:`~repro.observability.metrics.MetricsRegistry`.
"""

from __future__ import annotations

from repro.observability.metrics import MetricsRegistry
from repro.observability.tracing import Span, span_children

# -- metric names (`repro_` namespace) ----------------------------------
STAGE_DURATION = "repro_stage_duration_seconds"
STAGE_ROWS = "repro_stage_rows_total"
SHUFFLE_RECORDS = "repro_shuffle_records_total"
SHUFFLE_BYTES = "repro_shuffle_bytes_total"
PARTITION_ATTEMPTS = "repro_partition_attempts_total"
PARTITION_RETRIES = "repro_partition_retries_total"
SPECULATIVE_WINS = "repro_speculative_wins_total"
RECOVERED_PARTITIONS = "repro_recovered_partitions_total"
RUNS = "repro_runs_total"
RUN_DURATION = "repro_run_duration_seconds"
COMPILES = "repro_compiles_total"
COMPILE_DURATION = "repro_compile_duration_seconds"
CONNECTOR_FETCHES = "repro_connector_fetches_total"
CONNECTOR_FETCH_DURATION = "repro_connector_fetch_seconds"
CONNECTOR_BYTES = "repro_connector_bytes_total"
INGEST_ROWS = "repro_ingest_rows_total"
INGEST_DECODE_DURATION = "repro_ingest_decode_seconds"
INGEST_PARALLEL_FALLBACK = "repro_ingest_parallel_fallback_total"
HTTP_REQUESTS = "repro_http_requests_total"
HTTP_REQUEST_DURATION = "repro_http_request_duration_seconds"
ENDPOINT_QUERIES = "repro_endpoint_queries_total"
DEGRADED_SERVES = "repro_degraded_serves_total"
CUBE_QUERIES = "repro_cube_queries_total"
PLATFORM_EVENTS = "repro_platform_events_total"
QUERY_CACHE_HITS = "repro_query_cache_hits_total"
QUERY_CACHE_MISSES = "repro_query_cache_misses_total"
QUERY_CACHE_EVICTIONS = "repro_query_cache_evictions_total"
QUERY_CACHE_INVALIDATIONS = "repro_query_cache_invalidations_total"
SERVING_QUEUE_DEPTH = "repro_serving_queue_depth"
SERVING_INFLIGHT = "repro_serving_inflight"
SERVING_SHED_STATE = "repro_serving_shed_state"
SERVING_ADMITTED = "repro_serving_admitted_total"
SERVING_REJECTED = "repro_serving_rejected_total"
SERVING_DEADLINE_EXPIRED = "repro_serving_deadline_expired_total"
SERVING_SHED_SERVES = "repro_serving_shed_serves_total"
POOL_FORKS = "repro_pool_forks_total"
POOL_RECYCLED = "repro_pool_recycled_total"
POOL_RESPAWNS = "repro_pool_respawns_total"
POOL_WARM_HITS = "repro_pool_warm_hits_total"
POOL_DISPATCH_FALLBACKS = "repro_pool_dispatch_fallbacks_total"
POOL_ARENA_BYTES = "repro_pool_arena_bytes"
REFRESH_CYCLES = "repro_refresh_cycles_total"
REFRESH_RUNS = "repro_refresh_runs_total"
REFRESH_DURATION = "repro_refresh_duration_seconds"
REFRESH_DELTA_ROWS = "repro_refresh_delta_rows_total"
REFRESH_FALLBACKS = "repro_refresh_fallbacks_total"
REFRESH_ERRORS = "repro_refresh_errors_total"
TABLE_ENCODE_FALLBACKS = "repro_table_encode_fallbacks_total"
PAGE_CODEC_BYTES = "repro_page_codec_bytes_total"

_CACHE_EVENT_METRICS = {
    "hits": (QUERY_CACHE_HITS, "Interactive query-cache hits"),
    "misses": (QUERY_CACHE_MISSES, "Interactive query-cache misses"),
    "evictions": (
        QUERY_CACHE_EVICTIONS,
        "Interactive query-cache LRU evictions",
    ),
    "invalidations": (
        QUERY_CACHE_INVALIDATIONS,
        "Interactive query-cache entries dropped by invalidation",
    ),
}


def record_cache_event(
    metrics: MetricsRegistry, cache: str, event: str, amount: int = 1
) -> None:
    """One query-cache event (hit/miss/eviction/invalidation)."""
    name, help_text = _CACHE_EVENT_METRICS[event]
    metrics.counter(name, help_text).inc(amount, cache=cache)


def record_stage(
    metrics: MetricsRegistry,
    engine: str,
    kind: str,
    seconds: float,
    rows_in: int,
    rows_out: int,
    shuffled_records: int = 0,
    shuffled_bytes: int = 0,
    attempts: int = 0,
    retried_partitions: int = 0,
    speculative_wins: int = 0,
    recovered_partitions: int = 0,
) -> None:
    """One executed plan stage (either engine)."""
    metrics.histogram(
        STAGE_DURATION, "Wall time of one executed plan stage"
    ).observe(seconds, engine=engine, kind=kind)
    rows = metrics.counter(STAGE_ROWS, "Rows entering/leaving stages")
    rows.inc(rows_in, engine=engine, direction="in")
    rows.inc(rows_out, engine=engine, direction="out")
    if shuffled_records:
        metrics.counter(
            SHUFFLE_RECORDS, "Records moved through shuffles"
        ).inc(shuffled_records, engine=engine)
    if shuffled_bytes:
        metrics.counter(
            SHUFFLE_BYTES, "Estimated bytes moved through shuffles"
        ).inc(shuffled_bytes, engine=engine)
    if attempts:
        metrics.counter(
            PARTITION_ATTEMPTS,
            "Partition attempts, retries and speculative duplicates "
            "included",
        ).inc(attempts, engine=engine)
    if retried_partitions:
        metrics.counter(
            PARTITION_RETRIES,
            "Partitions that needed more than one attempt",
        ).inc(retried_partitions, engine=engine)
    if speculative_wins:
        metrics.counter(
            SPECULATIVE_WINS,
            "Stragglers beaten by their speculative duplicate",
        ).inc(speculative_wins, engine=engine)
    if recovered_partitions:
        metrics.counter(
            RECOVERED_PARTITIONS,
            "Partitions recomputed from lineage after worker loss",
        ).inc(recovered_partitions, engine=engine)


def record_ingest(
    metrics: MetricsRegistry,
    format_name: str,
    rows: int,
    seconds: float,
) -> None:
    """One data-object decode (rows produced and wall time, by format)."""
    metrics.counter(
        INGEST_ROWS, "Rows decoded from data-object payloads"
    ).inc(rows, format=format_name)
    metrics.histogram(
        INGEST_DECODE_DURATION, "Payload decode wall time"
    ).observe(seconds, format=format_name)


def record_run(
    metrics: MetricsRegistry, engine: str, seconds: float
) -> None:
    """One complete engine run."""
    metrics.counter(RUNS, "Completed engine runs").inc(engine=engine)
    metrics.histogram(
        RUN_DURATION, "Wall time of one complete engine run"
    ).observe(seconds, engine=engine)


def record_refresh(
    metrics: MetricsRegistry,
    dashboard: str,
    mode: str,
    seconds: float,
    delta_rows: int,
    fallbacks: int,
) -> None:
    """One dashboard refresh (incremental or full recompute)."""
    metrics.counter(
        REFRESH_RUNS, "Dashboard refreshes by mode"
    ).inc(dashboard=dashboard, mode=mode)
    metrics.histogram(
        REFRESH_DURATION, "Wall time of one dashboard refresh"
    ).observe(seconds, dashboard=dashboard, mode=mode)
    if delta_rows:
        metrics.counter(
            REFRESH_DELTA_ROWS, "Source rows ingested by delta refreshes"
        ).inc(delta_rows, dashboard=dashboard)
    if fallbacks:
        metrics.counter(
            REFRESH_FALLBACKS,
            "Flows that fell back to full recompute during a refresh",
        ).inc(fallbacks, dashboard=dashboard)


_POOL_EVENT_METRICS = {
    "forks": (POOL_FORKS, "Warm-pool workers forked"),
    "recycled": (
        POOL_RECYCLED,
        "Warm-pool workers retired by the max-tasks/max-rss recycle "
        "policy",
    ),
    "respawns": (
        POOL_RESPAWNS,
        "Warm-pool workers respawned after a worker loss",
    ),
    "warm_hits": (
        POOL_WARM_HITS,
        "Stage batches dispatched to already-forked warm workers",
    ),
    "dispatch_fallbacks": (
        POOL_DISPATCH_FALLBACKS,
        "Batches that fell back to cold fork because their dispatch "
        "frame refused to pickle",
    ),
}


def record_pool_event(
    metrics: MetricsRegistry, event: str, amount: int = 1
) -> None:
    """One warm-pool lifecycle event (fork/recycle/respawn/...)."""
    name, help_text = _POOL_EVENT_METRICS[event]
    metrics.counter(name, help_text).inc(amount)


def record_pool_arena(metrics: MetricsRegistry, size: int) -> None:
    """High-water total bytes of shared-memory arena pages per batch."""
    metrics.gauge(
        POOL_ARENA_BYTES,
        "High-water bytes written to shared-memory arena files by one "
        "batch",
    ).set(size)


def record_encode_fallbacks(
    metrics: MetricsRegistry, format_name: str, amount: int
) -> None:
    """Columns that stayed plain Python lists during ingest encoding.

    Counted per decoded table: a fallback means the column held mixed,
    nested, boolean or out-of-range values, so the typed/dictionary
    encodings declined it and kernels take the boxed slow path.
    """
    if amount:
        metrics.counter(
            TABLE_ENCODE_FALLBACKS,
            "Ingested columns left unencoded (mixed/nested/bool cells)",
        ).inc(amount, format=format_name)


def record_page_codec(
    metrics: MetricsRegistry, codec: str, size: int
) -> None:
    """One table page serialised by the binary page codec.

    ``codec`` labels the wire form actually used — ``typed``,
    ``typed-zlib`` or ``pickle`` — so dashboards can watch how much
    spill/transport traffic rides the compact path.
    """
    metrics.counter(
        PAGE_CODEC_BYTES,
        "Bytes written by the binary page codec (spill + transport)",
    ).inc(size, codec=codec)


def record_admission(
    metrics: MetricsRegistry, route: str, queue_depth: int, inflight: int
) -> None:
    """One request admitted into the serving tier's worker queue."""
    metrics.counter(
        SERVING_ADMITTED, "Requests admitted by the serving tier"
    ).inc(route=route)
    metrics.gauge(
        SERVING_QUEUE_DEPTH, "Requests waiting in the admission queue"
    ).set(queue_depth)
    metrics.gauge(
        SERVING_INFLIGHT, "Requests currently executing on workers"
    ).set(inflight)


def record_rejection(
    metrics: MetricsRegistry, route: str, reason: str
) -> None:
    """One request rejected before execution.

    ``reason`` is one of ``queue_full``, ``rate_limited``, ``shed``,
    ``draining`` — the intentional-shed vocabulary the load harness
    distinguishes from real 5xx failures.
    """
    metrics.counter(
        SERVING_REJECTED,
        "Requests rejected by admission control, rate limiting, "
        "overload shedding or drain",
    ).inc(route=route, reason=reason)


def record_request(
    metrics: MetricsRegistry,
    route: str,
    method: str,
    status: str,
    seconds: float,
) -> None:
    """One REST request (route is the coarse action, not the raw path)."""
    metrics.counter(HTTP_REQUESTS, "REST requests served").inc(
        route=route, method=method, status=status.split(" ", 1)[0]
    )
    metrics.histogram(
        HTTP_REQUEST_DURATION, "REST request wall time"
    ).observe(seconds, route=route)


# -- hot-spot table (CLI `run --profile`) --------------------------------

_HOTSPOT_COLUMNS = (
    "stage", "kind", "ms", "%", "rows in", "rows out", "bytes shuffled",
    "attempts",
)


def hotspot_rows(spans: list[Span]) -> list[dict[str, object]]:
    """Per-stage rows for one trace, heaviest first."""
    stages = [s for s in spans if s.name == "stage"]
    total = sum(s.duration for s in stages) or 1e-12
    rows = []
    for span in sorted(stages, key=lambda s: -s.duration):
        rows.append(
            {
                "stage": span.attrs.get("task", "?"),
                "kind": span.attrs.get("kind", "?"),
                "ms": span.duration * 1000,
                "%": 100.0 * span.duration / total,
                "rows in": span.attrs.get("rows_in", 0),
                "rows out": span.attrs.get("rows_out", 0),
                "bytes shuffled": span.attrs.get("shuffled_bytes", 0),
                "attempts": span.attrs.get("attempts", 0),
            }
        )
    return rows


def render_hotspot_table(spans: list[Span]) -> str:
    """The `run --profile` per-stage table plus a coverage footer.

    The footer compares the stage total against the engine's root span
    (``engine.run``): with per-node spans wrapping everything a stage
    does, coverage stays within a few percent of 100.
    """
    rows = hotspot_rows(spans)
    if not rows:
        return "no stages recorded (did the run execute any flows?)"
    rendered: list[list[str]] = [list(_HOTSPOT_COLUMNS)]
    for row in rows:
        rendered.append(
            [
                str(row["stage"]),
                str(row["kind"]),
                f"{row['ms']:.2f}",
                f"{row['%']:.1f}",
                str(row["rows in"]),
                str(row["rows out"]),
                str(row["bytes shuffled"]),
                str(row["attempts"]),
            ]
        )
    widths = [
        max(len(line[i]) for line in rendered)
        for i in range(len(_HOTSPOT_COLUMNS))
    ]
    lines = []
    for index, line in enumerate(rendered):
        cells = [
            cell.ljust(widths[i]) if i == 0 else cell.rjust(widths[i])
            for i, cell in enumerate(line)
        ]
        lines.append("  ".join(cells).rstrip())
        if index == 0:
            lines.append("  ".join("-" * w for w in widths))
    stage_ms = sum(row["ms"] for row in rows)  # type: ignore[misc]
    roots = [s for s in spans if s.name == "engine.run"]
    if roots:
        root_ms = roots[0].duration * 1000
        coverage = 100.0 * stage_ms / root_ms if root_ms else 100.0
        lines.append(
            f"stages total {stage_ms:.2f} ms of {root_ms:.2f} ms "
            f"engine.run ({coverage:.1f}% coverage)"
        )
    return "\n".join(lines)


def check_span_integrity(spans: list[Span]) -> list[str]:
    """Structural problems in one trace; empty list means healthy.

    Checks: exactly one root, every parent id resolves, children nest
    inside their parent's interval, every span finished.
    """
    problems: list[str] = []
    if not spans:
        return ["trace has no spans"]
    by_id = {span.span_id: span for span in spans}
    children = span_children(spans)
    roots = children.get(None, [])
    if len(roots) != 1:
        problems.append(f"expected exactly one root span, got {len(roots)}")
    for span in spans:
        if not span.finished:
            problems.append(f"span {span.span_id} ({span.name}) never ended")
        if span.parent_id is None:
            continue
        parent = by_id.get(span.parent_id)
        if parent is None:
            problems.append(
                f"span {span.span_id} ({span.name}) has unknown parent "
                f"{span.parent_id}"
            )
            continue
        if span.start < parent.start or (
            span.end is not None
            and parent.end is not None
            and span.end > parent.end
        ):
            problems.append(
                f"span {span.span_id} ({span.name}) escapes its parent "
                f"{parent.span_id} ({parent.name}) interval"
            )
    return problems
