"""Hierarchical tracing with deterministic span ids.

A :class:`Tracer` records *spans* — named, timed intervals with
attributes — nested by a context-manager stack, so the platform's
causality is captured end to end:

- batch path: ``compile`` → ``parse``/``plan`` → ``engine.run`` →
  ``stage`` → ``attempt`` (one per partition attempt, retries and
  speculative duplicates included);
- interactive path: ``http.request`` → ``query.eval`` (ad-hoc query
  language) and ``cube.query`` (datacube slices behind widget views).

Span ids are **deterministic**: each trace is numbered in creation
order (``t0001``, ``t0002``...) and spans within it sequentially
(``t0001.1`` is always the root).  The same program against the same
tracer always yields the same ids, so traces can be asserted exactly in
tests and diffed across runs.  Time comes from a pluggable
:class:`~repro.resilience.clock.Clock` — the same protocol the
resilience layer uses — so traces are instant and exact under a
:class:`~repro.resilience.clock.SimulatedClock`.
"""

from __future__ import annotations

from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.resilience.clock import Clock, WallClock


@dataclass
class Span:
    """One named, timed interval in a trace."""

    name: str
    trace_id: str
    span_id: str
    parent_id: str | None
    start: float
    end: float | None = None
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Seconds from start to end (0.0 while still open)."""
        return 0.0 if self.end is None else self.end - self.start

    @property
    def finished(self) -> bool:
        return self.end is not None

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes; returns self for chaining."""
        self.attrs.update(attrs)
        return self

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "attrs": dict(self.attrs),
        }


class Tracer:
    """Produces hierarchical spans with deterministic ids.

    Spans nest through an explicit stack: :meth:`span` parents the new
    span under the innermost open one, starting a fresh trace when none
    is open.  Finished traces are kept (most-recent-last) up to
    ``max_traces``; older ones are evicted.
    """

    def __init__(self, clock: Clock | None = None, max_traces: int = 64):
        self._clock = clock or WallClock()
        self._max_traces = max(1, max_traces)
        self._trace_seq = 0
        self._span_seq = 0
        self._stack: list[Span] = []
        self._traces: OrderedDict[str, list[Span]] = OrderedDict()

    # -- recording ---------------------------------------------------------
    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        """Open a span; exceptions mark it with an ``error`` attribute."""
        span = self.start_span(name, **attrs)
        try:
            yield span
        except BaseException as exc:
            span.attrs.setdefault("error", type(exc).__name__)
            raise
        finally:
            self.end_span(span)

    def start_span(self, name: str, **attrs: Any) -> Span:
        """Open a span imperatively (prefer the :meth:`span` manager)."""
        if self._stack:
            parent = self._stack[-1]
            trace_id = parent.trace_id
            parent_id = parent.span_id
            self._span_seq += 1
        else:
            self._trace_seq += 1
            trace_id = f"t{self._trace_seq:04d}"
            parent_id = None
            self._span_seq = 1
            self._traces[trace_id] = []
            while len(self._traces) > self._max_traces:
                self._traces.popitem(last=False)
        span = Span(
            name=name,
            trace_id=trace_id,
            span_id=f"{trace_id}.{self._span_seq}",
            parent_id=parent_id,
            start=self._clock.now(),
            attrs=dict(attrs),
        )
        # The trace may have been evicted if more than max_traces opened
        # while this one was still running; re-register quietly.
        self._traces.setdefault(trace_id, []).append(span)
        self._stack.append(span)
        return span

    def end_span(self, span: Span) -> None:
        """Close ``span`` (and anything left open underneath it)."""
        while self._stack:
            top = self._stack.pop()
            if top.end is None:
                top.end = self._clock.now()
            if top is span:
                break

    @property
    def current(self) -> Span | None:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    # -- reading -----------------------------------------------------------
    def trace_ids(self) -> list[str]:
        """Retained trace ids, oldest first."""
        return list(self._traces)

    @property
    def last_trace_id(self) -> str | None:
        return next(reversed(self._traces), None)

    def trace(self, trace_id: str) -> list[Span]:
        """Spans of one trace in creation order; [] if unknown/evicted."""
        return list(self._traces.get(trace_id, []))


def span_children(spans: list[Span]) -> dict[str | None, list[Span]]:
    """Index a trace's spans by parent id (``None`` ⇒ roots)."""
    children: dict[str | None, list[Span]] = {}
    for span in spans:
        children.setdefault(span.parent_id, []).append(span)
    return children


def render_span_tree(spans: list[Span]) -> str:
    """An indented text rendering of one trace's span hierarchy."""
    if not spans:
        return "(empty trace)"
    children = span_children(spans)
    lines: list[str] = []

    def walk(span: Span, depth: int) -> None:
        attrs = " ".join(
            f"{key}={value}" for key, value in sorted(span.attrs.items())
        )
        lines.append(
            f"{'  ' * depth}{span.name} [{span.span_id}] "
            f"{span.duration * 1000:.2f} ms"
            + (f"  {attrs}" if attrs else "")
        )
        for child in children.get(span.span_id, []):
            walk(child, depth + 1)

    for root in children.get(None, []):
        walk(root, 0)
    return "\n".join(lines)
