"""Observability: tracing, metrics, and stage profiling.

The paper's §5.2.1 monitoring dashboards assume the platform can see
itself — job progress, endpoint latency, widget query load.  This
package is that measurement foundation:

- :class:`Tracer` — hierarchical spans with **deterministic** ids over
  the batch path (compile → plan → stage → partition attempt) and the
  interactive path (REST request → query eval → datacube slice), on a
  pluggable :class:`~repro.resilience.clock.Clock`;
- :class:`MetricsRegistry` — counters, gauges and fixed-bucket
  histograms (p50/p95/p99 summaries) with JSON and Prometheus text
  exposition, zero dependencies;
- :class:`Observability` — the hub one :class:`~repro.platform.Platform`
  owns, wiring the same tracer + registry through engines, connectors,
  the dashboard runtime, the REST server and the CLI.

Surfaces: ``GET /metrics`` (JSON + Prometheus), ``GET /trace/<run_id>``,
and ``python -m repro run --trace/--profile``.  Taxonomy and metric
names are documented in ``docs/observability.md``.
"""

from __future__ import annotations

from repro.observability.instruments import (
    check_span_integrity,
    hotspot_rows,
    record_request,
    record_run,
    record_stage,
    render_hotspot_table,
)
from repro.observability.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.observability.tracing import (
    Span,
    Tracer,
    render_span_tree,
    span_children,
)
from repro.resilience.clock import Clock, SimulatedClock, WallClock


class Observability:
    """One tracer + one metrics registry sharing one clock."""

    def __init__(self, clock: Clock | None = None, max_traces: int = 64):
        self.clock = clock or WallClock()
        self.tracer = Tracer(clock=self.clock, max_traces=max_traces)
        self.metrics = MetricsRegistry()


__all__ = [
    "Observability",
    "Tracer",
    "Span",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_BUCKETS",
    "SimulatedClock",
    "WallClock",
    "span_children",
    "render_span_tree",
    "render_hotspot_table",
    "hotspot_rows",
    "check_span_integrity",
    "record_stage",
    "record_run",
    "record_request",
]
