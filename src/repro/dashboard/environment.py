"""Operating-environment adaptation (paper §4.1).

"The generated output needs to be cognizant of the operating environment
settings (constraints) such as screen resolution and client computing
resources... These constraints influence what analysis can be displayed
meaningfully and the platform needs to choose the appropriate
representation and execution engine."

:class:`EnvironmentProfile` captures those constraints and makes the
three decisions the paper names: how much data ships to the client, how
the grid is laid out, and which representation (interactive cube vs
static pre-rendered) and engine a dashboard run uses.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class EnvironmentProfile:
    """One client/session environment."""

    #: CSS pixels of the viewport
    screen_width: int = 1280
    #: whether the client executes the interactive cube at all
    js_enabled: bool = True
    #: relative client compute capacity
    client_power: str = "high"  # "high" | "medium" | "low"

    # -- named profiles ------------------------------------------------------
    @classmethod
    def desktop(cls) -> "EnvironmentProfile":
        return cls(screen_width=1920, js_enabled=True, client_power="high")

    @classmethod
    def laptop(cls) -> "EnvironmentProfile":
        return cls(screen_width=1280, js_enabled=True, client_power="medium")

    @classmethod
    def mobile(cls) -> "EnvironmentProfile":
        return cls(screen_width=400, js_enabled=True, client_power="low")

    @classmethod
    def no_js(cls) -> "EnvironmentProfile":
        return cls(screen_width=1280, js_enabled=False, client_power="low")

    # -- decisions -----------------------------------------------------------
    @property
    def interactive(self) -> bool:
        """Ship the data cube, or pre-render everything server-side?"""
        return self.js_enabled

    @property
    def max_payload_rows(self) -> int:
        """Cap on endpoint rows shipped to the client cube."""
        return {"high": 100_000, "medium": 20_000, "low": 2_000}[
            self.client_power
        ]

    @property
    def grid_columns(self) -> int:
        """Effective grid width: narrow screens stack cells."""
        if self.screen_width < 600:
            return 1
        if self.screen_width < 1000:
            return 6
        return 12

    def effective_span(self, span: int) -> int:
        """Widen cells when the grid narrows (a span4 cell on mobile
        becomes full-width)."""
        columns = self.grid_columns
        if columns >= 12:
            return span
        return min(12, max(span, 12 // max(columns // max(span, 1), 1)))

    def choose_engine(self, estimated_rows: int) -> str:
        """Pick the batch engine for a flow run by input size.

        Small inputs run locally for fast feedback (§4.5.3 item 4);
        large ones go to the simulated cluster, mirroring the paper's
        Pig/Spark offload.
        """
        return "distributed" if estimated_rows > 50_000 else "local"
