"""The dashboard runtime.

Lifecycle (mirroring the generated single-page app of paper §4.4):

1. ``run_flows()`` executes the batch half of the compiled flow file on
   an engine, materializing every flow output; endpoint objects become
   REST-visible payloads and ``publish:`` objects go to the shared
   catalog.
2. Widgets are instantiated from the registry; each non-static widget
   gets a :class:`~repro.engine.datacube.DataCube` holding its *server-
   side* pipeline output (the §6 transfer-minimized payload).
3. ``select()`` updates a widget's selection; dependent widgets re-render
   by re-running their client-side pipelines in their cubes — the §3.5.1
   interaction model, with no event handlers anywhere.
4. ``render()`` lays the widget views out on the 12-column grid.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from repro.collab.catalog import SharedDataCatalog
from repro.compiler.compiler import CompiledFlowFile, WidgetPlan
from repro.connectors.loader import DataObjectLoader
from repro.dashboard.environment import EnvironmentProfile
from repro.data import Schema, Table
from repro.engine.datacube import DataCube
from repro.engine.distributed import DistributedExecutor
from repro.engine.local import LocalExecutor
from repro.errors import ExecutionError, WidgetError
from repro.observability import Observability
from repro.observability.instruments import CUBE_QUERIES
from repro.tasks.base import TaskContext, WidgetSelection
from repro.widgets.base import Widget, WidgetView
from repro.widgets.charts import Slider
from repro.widgets.layout import GridRenderer, LayoutWidget, TabLayout
from repro.widgets.registry import WidgetRegistry, default_widget_registry


@dataclass
class DashboardView:
    """A fully rendered dashboard."""

    name: str
    html: str
    text: str
    widget_views: dict[str, WidgetView] = field(default_factory=dict)


@dataclass
class RunReport:
    """Telemetry from one ``run_flows`` call."""

    engine: str
    seconds: float
    rows_loaded: int = 0
    rows_produced: int = 0
    shuffled_records: int = 0
    published: list[str] = field(default_factory=list)
    endpoints: list[str] = field(default_factory=list)
    #: flow outputs reused from a previous run (incremental mode)
    flows_skipped: list[str] = field(default_factory=list)
    #: resilience telemetry (distributed engine only)
    attempts: int = 0
    retried_partitions: int = 0
    speculative_wins: int = 0
    recovered_stages: list[str] = field(default_factory=list)
    #: tracing id of this run; resolvable via ``GET /trace/<run_id>``
    trace_id: str | None = None


@dataclass
class RefreshReport:
    """Telemetry from one ``refresh_flows`` call."""

    mode: str  # "incremental" or "full"
    seconds: float = 0.0
    #: new source rows ingested via delta cursors this cycle
    delta_rows: int = 0
    #: flows advanced through incremental view maintenance
    flows_incremental: list[str] = field(default_factory=list)
    #: flows recomputed from scratch (unsupported operators, multi-input)
    flows_full: list[str] = field(default_factory=list)
    #: flows whose inputs were unchanged (no work at all)
    flows_skipped: list[str] = field(default_factory=list)
    #: endpoints whose tables changed (version bumped)
    endpoints_changed: list[str] = field(default_factory=list)
    #: current endpoint versions after this refresh
    versions: dict[str, int] = field(default_factory=dict)
    trace_id: str | None = None


class Dashboard:
    """A live dashboard built from a compiled flow file."""

    def __init__(
        self,
        compiled: CompiledFlowFile,
        loader: DataObjectLoader | None = None,
        catalog: SharedDataCatalog | None = None,
        widget_registry: WidgetRegistry | None = None,
        environment: EnvironmentProfile | None = None,
        data_dir: str | Path | None = None,
        dictionaries: Mapping[str, Mapping[str, str]] | None = None,
        inline_tables: Mapping[str, Table] | None = None,
        observability: Observability | None = None,
    ):
        self.observability = observability or Observability()
        self.compiled = compiled
        self.flow_file = compiled.flow_file
        self.name = compiled.flow_file.name
        self.loader = loader or DataObjectLoader()
        self.catalog = catalog
        self.environment = environment or EnvironmentProfile.laptop()
        self._widget_registry = widget_registry or default_widget_registry()
        self._data_dir = Path(data_dir) if data_dir else None
        self._dictionaries = dict(dictionaries or {})
        #: programmatically supplied tables, taking priority over loads
        self._inline_tables = dict(inline_tables or {})
        self._materialized: dict[str, Table] = {}
        #: per-run snapshot of concurrently prefetched source tables
        self._prefetched: dict[str, Table] = {}
        self._widgets: dict[str, Widget] = {}
        self._cubes: dict[str, DataCube] = {}
        self.last_run: RunReport | None = None
        self._last_node_stats: list = []
        self._last_stages: list = []
        #: CSS uploaded through the extension services (§4.2 "Styling")
        self.stylesheet: str = ""
        #: outputs adopted from a previous version (incremental runs)
        self._fresh_outputs: set[str] = set()
        # -- refresh state (see refresh_flows) --------------------------
        #: per-source delta-loader state (cursors + captured preambles)
        self._delta_states: dict[str, dict | None] = {}
        #: maintained full source tables, fed by delta ingestion
        self._source_tables: dict[str, Table] = {}
        #: (object identity, row count) watermarks for inline/catalog
        #: tables, to detect in-place growth vs replacement
        self._source_watermarks: dict[str, tuple[int, int]] = {}
        #: per-flow incremental maintenance state
        self._flow_states: dict[str, Any] = {}
        #: monotonic version per endpoint table; bumped when it changes
        self._endpoint_versions: dict[str, int] = {}
        self.last_refresh: RefreshReport | None = None
        self._build_widgets()

    # ------------------------------------------------------------------
    # flow execution
    # ------------------------------------------------------------------
    def run_flows(
        self,
        engine: str | None = None,
        incremental: bool = False,
        fault_profile: str | None = None,
        parallelism: int = 1,
        executor: str = "threads",
        pool: Any = None,
        small_job_bytes: int | None = None,
    ) -> RunReport:
        """Execute the batch half; returns the run report.

        ``engine`` is ``"local"``, ``"distributed"``, or ``None`` to let
        the environment profile decide from the input size (§4.1).

        ``incremental=True`` skips flows whose results were adopted from
        a previous dashboard version (see :meth:`adopt_materialized`) —
        only the stale part of the DAG re-runs.

        ``fault_profile`` names a seeded fault-injection profile (see
        :meth:`repro.resilience.FaultInjector.from_profile`) and forces
        the distributed engine, which absorbs the injected faults and
        reports the recovery cost in the run report.

        ``parallelism`` sizes the distributed engine's worker pool and
        the source-prefetch pool (independent data objects load
        concurrently before the engine starts); ``executor`` picks the
        pool backend — ``"threads"`` (default) or ``"processes"`` for
        CPU-bound work (see ``docs/parallelism.md``).  Results,
        telemetry and traces are identical at every setting of both;
        only wall time changes.

        ``pool`` lends a warm
        :class:`~repro.engine.scheduler.ProcessPool` to both the
        source prefetch and the distributed engine (``processes``
        executor only; ignored otherwise) — outputs stay identical,
        stages just skip the per-stage fork cost.  ``small_job_bytes``
        overrides the prefetch small-job threshold for this run
        (``None`` = the loader's configured default).
        """
        context = self._task_context()
        plan = self.compiled.plan
        skipped: list[str] = []
        if incremental and self._fresh_outputs:
            plan, skipped = self._incremental_plan()
        if fault_profile and engine is None:
            engine = "distributed"
        if fault_profile and engine == "local":
            raise ExecutionError(
                "fault profiles exercise the distributed engine; "
                "run with engine='distributed' (or let it default)"
            )
        if engine is None:
            estimated = sum(
                t.num_rows for t in self._inline_tables.values()
            )
            engine = self.environment.choose_engine(estimated)
        obs = self.observability
        with obs.tracer.span(
            "dashboard.run", dashboard=self.name, engine=engine
        ) as root:
            try:
                self._prefetch_sources(
                    plan,
                    parallelism,
                    executor,
                    pool=pool,
                    small_job_bytes=small_job_bytes,
                )
                if engine == "local":
                    result = LocalExecutor(
                        self._resolve_source,
                        tracer=obs.tracer,
                        metrics=obs.metrics,
                    ).run(plan, context)
                    report = RunReport(
                        engine=engine,
                        seconds=result.stats.seconds,
                        rows_loaded=result.stats.rows_loaded,
                        rows_produced=result.stats.rows_produced,
                    )
                    self._materialized.update(result.tables)
                    self._last_node_stats = list(result.stats.node_stats)
                    self._last_stages = []
                elif engine == "distributed":
                    from repro.resilience import FaultInjector

                    injector = FaultInjector.from_profile(fault_profile)
                    result = DistributedExecutor(
                        self._resolve_source,
                        fault_injector=injector,
                        tracer=obs.tracer,
                        metrics=obs.metrics,
                        parallelism=parallelism,
                        executor=executor,
                        pool=pool,
                    ).run(plan, context)
                    report = RunReport(
                        engine=engine,
                        seconds=result.seconds,
                        rows_produced=result.rows_produced,
                        shuffled_records=result.total_shuffled_records,
                        attempts=result.attempts,
                        retried_partitions=result.retried_partitions,
                        speculative_wins=result.speculative_wins,
                        recovered_stages=list(result.recovered_stages),
                    )
                    self._materialized.update(result.tables)
                    self._last_node_stats = []
                    self._last_stages = list(result.stages)
                else:
                    raise ExecutionError(f"unknown engine {engine!r}")
                report.flows_skipped = skipped
                # A full run refreshes everything: nothing stays "fresh".
                self._fresh_outputs = set(skipped)
                # Refresh state is anchored to the data a run loaded;
                # a full run re-reads sources from scratch, so cursors
                # and per-flow states reset (the next refresh cycle
                # re-bootstraps them) and every endpoint version bumps.
                self._reset_refresh_state()
                for endpoint in self.compiled.endpoint_names:
                    self._bump_version(endpoint)
                report.endpoints = self.compiled.endpoint_names
                with obs.tracer.span("publish"):
                    report.published = self._publish()
                with obs.tracer.span("cubes.rebuild"):
                    self._rebuild_cubes()
                report.trace_id = root.trace_id
            finally:
                # The snapshot only serves this run; later lazy resolves
                # (e.g. widget rebuilds) go back through the loader.
                self._prefetched = {}
        self.last_run = report
        return report

    # ------------------------------------------------------------------
    # delta refresh (incremental view maintenance)
    # ------------------------------------------------------------------
    def endpoint_version(self, name: str) -> int:
        """Monotonic version of an endpoint's table (0 before any run).

        Bumped whenever the table's content may have changed — on every
        full run, and on refresh cycles whose deltas reached it.  The
        server surfaces this as a response header and uses the bump as
        the query-cache invalidation boundary.
        """
        return self._endpoint_versions.get(name, 0)

    def endpoint_versions(self) -> dict[str, int]:
        return dict(self._endpoint_versions)

    def _bump_version(self, name: str) -> None:
        self._endpoint_versions[name] = (
            self._endpoint_versions.get(name, 0) + 1
        )

    def _reset_refresh_state(self) -> None:
        self._delta_states.clear()
        self._source_tables.clear()
        self._source_watermarks.clear()
        self._flow_states.clear()

    def refresh_flows(self, incremental: bool = True) -> RefreshReport:
        """Re-run the flows at O(changed rows) cost.

        The delta pipeline, per cycle:

        1. every external source reports how it changed — file-backed
           sources via :meth:`DataObjectLoader.load_delta` cursors,
           inline/catalog tables via identity + row-count watermarks;
        2. flows walk in DAG order: a flow whose inputs are unchanged is
           skipped outright; a single-input flow whose whole task chain
           is incrementally maintainable (see
           :mod:`repro.engine.incremental`) advances its
           :class:`~repro.engine.incremental.FlowDeltaState`; anything
           else — multi-input, joins, UDFs, widget-sourced filters —
           falls back to a full recompute through the real engine
           (pruned to just those flows, so the fallback never spreads
           wider than it must);
        3. endpoints whose tables changed get a version bump, changed
           outputs republish, and widget cubes rebuild.

        The first refresh after a full run is a **bootstrap**: delta
        cursors don't exist yet, so sources reload fully and per-flow
        states prime from complete inputs.  Outputs are byte-identical
        to a full recompute in every mode — incremental maintenance is
        a fast path, never a semantics change.

        ``incremental=False`` recomputes everything (equivalent to
        :meth:`run_flows`) but still reports through the refresh
        surface, bumping versions only where tables were recomputed.
        """
        from time import perf_counter

        obs = self.observability
        start = perf_counter()
        report = RefreshReport(
            mode="incremental" if incremental else "full"
        )
        with obs.tracer.span(
            "dashboard.refresh", dashboard=self.name, mode=report.mode
        ) as root:
            if not incremental:
                # A full refresh must re-read every source: drop the
                # materialized source copies so the loader hits the
                # connectors again instead of serving the last run's
                # tables.
                for source in self.compiled.dag.sources:
                    self._materialized.pop(source, None)
                self._prefetched = {}
                run = self.run_flows()
                report.flows_full = [
                    flow.output for flow in self.compiled.dag.ordered_flows()
                ]
                report.endpoints_changed = list(run.endpoints)
            else:
                self._refresh_incremental(report)
            report.versions = self.endpoint_versions()
            report.trace_id = root.trace_id
        report.seconds = perf_counter() - start
        self.last_refresh = report
        return report

    def _refresh_incremental(self, report: RefreshReport) -> None:
        from repro.engine.incremental import (
            Delta,
            FlowDeltaState,
            flow_supports_delta,
        )

        context = self._task_context()
        context.widget_selections = {}  # batch half is selection-free
        deltas: dict[str, "Delta"] = {}
        with self.observability.tracer.span("refresh.sources"):
            for name in sorted(self.compiled.dag.sources):
                deltas[name] = self._source_delta(name)
                if deltas[name].kind == "append":
                    report.delta_rows += deltas[name].rows.num_rows
        #: outputs needing the engine (incremental not possible)
        recompute: set[str] = set()
        for flow in self.compiled.dag.ordered_flows():
            output = flow.output
            input_deltas = [deltas.get(i) for i in flow.inputs]
            if any(i in recompute for i in flow.inputs):
                # An upstream recompute means this flow's input delta is
                # unknown until the engine runs; recompute it too.
                recompute.add(output)
                continue
            if (
                all(d is not None and d.kind == "none" for d in input_deltas)
                and output in self._materialized
            ):
                deltas[output] = Delta("none")
                report.flows_skipped.append(output)
                continue
            tasks = [self.compiled.tasks[t] for t in flow.tasks]
            if len(flow.inputs) == 1 and flow_supports_delta(tasks):
                state = self._flow_states.get(output)
                if state is None:
                    state = FlowDeltaState(tasks)
                    self._flow_states[output] = state
                    delta_in = Delta(
                        "full", self._refresh_input(flow.inputs[0])
                    )
                else:
                    delta_in = input_deltas[0]
                    if delta_in is None:
                        delta_in = Delta(
                            "full", self._refresh_input(flow.inputs[0])
                        )
                table, delta_out = state.advance(delta_in, context)
                self._materialized[output] = table
                deltas[output] = delta_out
                report.flows_incremental.append(output)
            else:
                recompute.add(output)
        if recompute:
            self._refresh_recompute(sorted(recompute), context)
            report.flows_full = sorted(recompute)
        changed = {
            name
            for name, delta in deltas.items()
            if delta.kind != "none"
        } | recompute
        for endpoint in self.compiled.endpoint_names:
            if endpoint in changed:
                self._bump_version(endpoint)
                report.endpoints_changed.append(endpoint)
        if changed:
            with self.observability.tracer.span("publish"):
                self._publish()
            with self.observability.tracer.span("cubes.rebuild"):
                self._rebuild_cubes()

    def _source_delta(self, name: str):
        """How one external source changed since the last cycle."""
        from repro.engine.incremental import Delta

        if name in self._inline_tables:
            return self._watermark_delta(name, self._inline_tables[name])
        obj = self.flow_file.data.get(name)
        if obj is not None and obj.is_source:
            config = dict(obj.config)
            if self._data_dir and "base_dir" not in config:
                config["base_dir"] = str(self._data_dir)
            schema = obj.schema or Schema.of()
            load = self.loader.load_delta(
                schema, config, self._delta_states.get(name)
            )
            self._delta_states[name] = load.state
            if load.mode == "none":
                return Delta("none")
            if load.mode == "append":
                prior = self._source_tables.get(name)
                self._source_tables[name] = (
                    load.table
                    if prior is None
                    else Table.concat_all([prior, load.table])
                )
                if prior is None:
                    # No base to append to (state handed in from a
                    # previous process?): treat as a first full load.
                    return Delta("full", self._source_tables[name])
                return Delta("append", load.table)
            self._source_tables[name] = load.table
            return Delta("full", load.table)
        if self.catalog is not None and name in self.catalog:
            return self._watermark_delta(name, self.catalog.resolve(name))
        # Unresolvable here; flows using it recompute via the engine.
        return Delta("full", self._resolve_source(name))

    def _watermark_delta(self, name: str, table: Table):
        """Delta for an in-memory table, by identity + row count.

        The same table object having grown is an append (callers extend
        inline tables in place); a different object or a shrink is a
        replacement.
        """
        from repro.engine.incremental import Delta

        mark = self._source_watermarks.get(name)
        self._source_watermarks[name] = (id(table), table.num_rows)
        if mark is None:
            return Delta("full", table)
        prev_id, prev_rows = mark
        if prev_id == id(table) and table.num_rows == prev_rows:
            return Delta("none")
        if prev_id == id(table) and table.num_rows > prev_rows:
            return Delta(
                "append",
                table.take(list(range(prev_rows, table.num_rows))),
            )
        return Delta("full", table)

    def _refresh_input(self, name: str) -> Table:
        """A full current input table (for state bootstraps).

        Delta-tracked source tables win over ``_materialized`` — the
        materialized copy is from the last full run, while
        ``_source_tables`` was just advanced by ``_source_delta``.
        """
        if name in self._source_tables:
            return self._source_tables[name]
        if name in self._materialized:
            return self._materialized[name]
        return self._resolve_source(name)

    def _refresh_recompute(
        self, outputs: list[str], context: TaskContext
    ) -> None:
        """Recompute ``outputs`` through the real engine.

        Builds a plan pruned to just those flows — everything else
        (incrementally maintained outputs, unchanged flows, sources)
        acts as an external input — and runs it on the local engine.
        Reusing the engine keeps multi-input lowering (joins, unions)
        exactly as a full run would execute it, which is what makes the
        fallback byte-identical by construction.
        """
        from repro.compiler.dag import build_dag
        from repro.dsl.ast_nodes import FlowFile
        from repro.engine.local import LocalExecutor
        from repro.engine.plan import build_logical_plan

        wanted = set(outputs)
        stale = [
            flow
            for flow in self.flow_file.flows
            if flow.output in wanted
        ]
        pruned = FlowFile(
            name=self.flow_file.name,
            data=self.flow_file.data,
            tasks=self.flow_file.tasks,
            flows=stale,
            widgets={},
            layout=None,
        )
        external = (
            {
                flow.output
                for flow in self.flow_file.flows
                if flow.output not in wanted
            }
            | set(self.compiled.dag.sources)
        )
        dag = build_dag(pruned, external=external)
        plan = build_logical_plan(dag, self.compiled.tasks)
        # Serve delta-maintained source tables to the engine without a
        # re-fetch.  The stale materialized copies from the last full
        # run must not shadow them (_resolve_source prefers
        # _materialized), so they are dropped first; the engine's
        # result tables repopulate them.
        self._prefetched = dict(self._source_tables)
        for source in self._source_tables:
            self._materialized.pop(source, None)
        try:
            obs = self.observability
            result = LocalExecutor(
                self._resolve_source,
                tracer=obs.tracer,
                metrics=obs.metrics,
            ).run(plan, context)
            self._materialized.update(result.tables)
        finally:
            self._prefetched = {}

    # ------------------------------------------------------------------
    # incremental recomputation (§4.5.3 fast feedback, §6 optimization)
    # ------------------------------------------------------------------
    def adopt_materialized(self, previous: "Dashboard") -> list[str]:
        """Carry over results of flows unchanged since ``previous``.

        Compares per-output content fingerprints (pipe expression, all
        upstream task configurations, upstream source configurations);
        matching outputs are copied and marked fresh, so a subsequent
        ``run_flows(incremental=True)`` only re-runs the stale part of
        the DAG.  Returns the adopted output names.
        """
        from repro.compiler.compiler import flow_fingerprints

        mine = flow_fingerprints(self.compiled)
        theirs = flow_fingerprints(previous.compiled)
        adopted: list[str] = []
        for output, fingerprint in mine.items():
            if (
                theirs.get(output) == fingerprint
                and output in previous._materialized
            ):
                self._materialized[output] = previous._materialized[
                    output
                ]
                adopted.append(output)
        self._fresh_outputs = set(adopted)
        return adopted

    def _incremental_plan(self):
        """A plan covering only stale flows; fresh outputs act as
        sources (their tables are served from ``_materialized``)."""
        from repro.compiler.dag import build_dag
        from repro.engine.plan import build_logical_plan
        from repro.dsl.ast_nodes import FlowFile

        fresh = set(self._fresh_outputs)
        stale_flows = [
            flow
            for flow in self.flow_file.flows
            if flow.output not in fresh
        ]
        skipped = sorted(
            flow.output
            for flow in self.flow_file.flows
            if flow.output in fresh
        )
        if not stale_flows:
            from repro.engine.plan import LogicalPlan

            return LogicalPlan(), skipped
        pruned = FlowFile(
            name=self.flow_file.name,
            data=self.flow_file.data,
            tasks=self.flow_file.tasks,
            flows=stale_flows,
            widgets={},
            layout=None,
        )
        catalog_names = set(
            self.catalog.names()
        ) if self.catalog is not None else set()
        dag = build_dag(pruned, external=fresh | catalog_names)
        return build_logical_plan(dag, self.compiled.tasks), skipped

    def _task_context(self) -> TaskContext:
        return TaskContext(
            data_dir=self._data_dir,
            dictionaries=self._dictionaries,
            widget_selections=self._selections(),
        )

    def _prefetch_sources(
        self,
        plan,
        parallelism: int,
        executor: str = "threads",
        pool: Any = None,
        small_job_bytes: int | None = None,
    ) -> None:
        """Load the plan's loader-backed sources up front, concurrently.

        Collects the plan's load nodes in canonical (topological) order,
        keeps the ones :meth:`_resolve_source` would send through the
        loader, and loads them in one :meth:`DataObjectLoader.load_many`
        call under a ``sources.load`` span.  The engines then hit the
        prefetched snapshot instead of fetching mid-run.  Spec order is
        canonical and ``load_many`` replays telemetry canonically, so
        the trace and metrics are identical at every ``parallelism``.
        """
        names: list[str] = []
        seen: set[str] = set()
        for node in plan.topological_order():
            if node.kind != "load" or node.load_name is None:
                continue
            name = node.load_name
            if name in seen:
                continue
            seen.add(name)
            if name in self._inline_tables or name in self._materialized:
                continue
            obj = self.flow_file.data.get(name)
            if obj is None or not obj.is_source:
                continue  # catalog-resolved or unresolvable: stay lazy
            names.append(name)
        if not names:
            return
        specs = []
        for name in names:
            obj = self.flow_file.data[name]
            config = dict(obj.config)
            if self._data_dir and "base_dir" not in config:
                config["base_dir"] = str(self._data_dir)
            specs.append((obj.schema or Schema.of(), config))
        with self.observability.tracer.span(
            "sources.load", sources=len(names)
        ):
            tables = self.loader.load_many(
                specs,
                parallelism,
                executor,
                pool=pool,
                small_job_bytes=small_job_bytes,
            )
        self._prefetched = dict(zip(names, tables))

    def _resolve_source(self, name: str) -> Table:
        if name in self._inline_tables:
            return self._inline_tables[name]
        if name in self._materialized:
            return self._materialized[name]
        if name in self._prefetched:
            return self._prefetched[name]
        obj = self.flow_file.data.get(name)
        if obj is not None and obj.is_source:
            config = dict(obj.config)
            if self._data_dir and "base_dir" not in config:
                config["base_dir"] = str(self._data_dir)
            schema = obj.schema or Schema.of()
            return self.loader.load(schema, config)
        if self.catalog is not None and name in self.catalog:
            return self.catalog.resolve(name)
        raise ExecutionError(
            f"dashboard {self.name!r}: cannot resolve data object "
            f"{name!r} (no source config, no inline table, not published)"
        )

    def _publish(self) -> list[str]:
        published = []
        if self.catalog is None:
            return published
        for obj in self.flow_file.published():
            table = self._materialized.get(obj.name)
            if table is None and obj.is_source:
                # A raw source (dimension table) can be published too.
                table = self._resolve_source(obj.name)
            if table is None:
                continue
            assert obj.publish is not None
            self.catalog.publish(
                obj.publish, table, owner=self.name, source_object=obj.name
            )
            published.append(obj.publish)
        return published

    def bottleneck_report(self, top: int = 5) -> str:
        """Where the last run spent its time (§6: "tools to identify
        performance bottlenecks need to be provided").

        For local runs: the slowest plan nodes with their row/cell
        output.  For distributed runs: the heaviest shuffle stages.
        """
        if self.last_run is None:
            return "no run recorded; run_flows() first"
        lines = [
            f"run on the {self.last_run.engine} engine: "
            f"{self.last_run.seconds * 1000:.1f} ms total"
        ]
        if self._last_node_stats:
            ranked = sorted(
                self._last_node_stats, key=lambda s: -s.seconds
            )[:top]
            total = sum(s.seconds for s in self._last_node_stats) or 1e-12
            for stat in ranked:
                lines.append(
                    f"  {stat.label}: {stat.seconds * 1000:.2f} ms "
                    f"({stat.seconds / total:.0%}), "
                    f"{stat.rows_out} rows out"
                )
        if self._last_stages:
            shuffles = sorted(
                (s for s in self._last_stages if s.shuffled_records),
                key=lambda s: -s.shuffled_records,
            )[:top]
            for stage in shuffles:
                lines.append(
                    f"  shuffle {stage.task}: "
                    f"{stage.shuffled_records} records "
                    f"({stage.shuffled_bytes} bytes), "
                    f"{stage.input_rows} -> {stage.output_rows} rows"
                )
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # endpoint data (REST surface, §4.4)
    # ------------------------------------------------------------------
    def endpoint_names(self) -> list[str]:
        return self.compiled.endpoint_names

    def endpoint(self, name: str) -> Table:
        """Endpoint payload (capped per the environment profile)."""
        if name not in set(self.compiled.endpoint_names):
            raise ExecutionError(
                f"data object {name!r} is not an endpoint of "
                f"dashboard {self.name!r}"
            )
        table = self._materialized.get(name)
        if table is None:
            table = self._resolve_source(name)
        limit = self.environment.max_payload_rows
        return table.head(limit) if table.num_rows > limit else table

    def export_endpoint(
        self, name: str, config: Mapping[str, Any]
    ) -> None:
        """Write an endpoint's data through a sink connector/format.

        ``config`` is data-object configuration (``source``/``format``/
        protocol parameters, resolved against the data directory) — the
        write-side counterpart of the data section, e.g.::

            dashboard.export_endpoint(
                "region_summary", {"source": "out.csv", "format": "csv"}
            )
        """
        table = self.endpoint(name)
        sink_config = dict(config)
        if self._data_dir and "base_dir" not in sink_config:
            sink_config["base_dir"] = str(self._data_dir)
        self.loader.save(table, sink_config)

    def materialized(self, name: str) -> Table:
        table = self._materialized.get(name)
        if table is None:
            raise ExecutionError(
                f"data object {name!r} has not been materialized; "
                f"run_flows() first"
            )
        return table

    # ------------------------------------------------------------------
    # widgets & interaction
    # ------------------------------------------------------------------
    def _build_widgets(self) -> None:
        for name, plan in self.compiled.widget_plans.items():
            widget = self._widget_registry.create(
                name, plan.widget.type_name, plan.widget.config
            )
            if isinstance(widget, Slider) and plan.is_static:
                widget.set_domain(list(plan.static_values or []))
            self._widgets[name] = widget

    def widget(self, name: str) -> Widget:
        widget = self._widgets.get(name)
        if widget is None:
            raise WidgetError(
                f"dashboard {self.name!r} has no widget {name!r}"
            )
        return widget

    def widget_names(self) -> list[str]:
        return sorted(self._widgets)

    def _selections(self) -> dict[str, WidgetSelection]:
        return {
            name: widget.selection
            for name, widget in self._widgets.items()
            if not widget.selection.is_empty()
        }

    def _rebuild_cubes(self) -> None:
        """Materialize each widget's server-side pipeline into a cube.

        Widgets whose (source, server pipeline) coincide share one cube
        — the payload is computed and shipped once, not per widget (the
        §6 transfer minimization applied across widgets).
        """
        self._cubes.clear()
        context = self._task_context()
        context.widget_selections = {}  # server side is selection-free
        shared: dict[tuple, DataCube] = {}
        for name, plan in self.compiled.widget_plans.items():
            if plan.is_static or plan.source_name is None:
                continue
            key = (
                plan.source_name,
                tuple(task.name for task in plan.server_tasks),
            )
            cube = shared.get(key)
            if cube is None:
                table = self._widget_base_table(plan)
                for task in plan.server_tasks:
                    table = task.apply([table], context)
                limit = self.environment.max_payload_rows
                if table.num_rows > limit:
                    table = table.head(limit)
                cube = DataCube(f"{key[0]}|{'|'.join(key[1])}", table)
                shared[key] = cube
            self._cubes[name] = cube

    def _widget_base_table(self, plan: WidgetPlan) -> Table:
        assert plan.source_name is not None
        if plan.source_name in self._materialized:
            return self._materialized[plan.source_name]
        return self._resolve_source(plan.source_name)

    @property
    def transferred_bytes(self) -> int:
        """Total endpoint payload shipped to the client.

        Shared cubes (widgets with identical server pipelines) count
        once — that is the point of sharing them.
        """
        distinct = {id(cube): cube for cube in self._cubes.values()}
        return sum(cube.transferred_bytes for cube in distinct.values())

    def select(
        self,
        widget_name: str,
        column: str | None = None,
        values: list[Any] | None = None,
        value_range: tuple[Any, Any] | None = None,
    ) -> None:
        """Apply a user gesture to a widget (click, drag, pick).

        ``column`` defaults to the widget's selection attribute.
        Requires an interactive client (§4.1: with JavaScript disabled
        the platform serves a static pre-rendered representation, so
        there is nothing to gesture at).
        """
        if not self.environment.interactive:
            raise WidgetError(
                f"dashboard {self.name!r} is served statically "
                f"(client has no interactivity); selections are disabled"
            )
        widget = self.widget(widget_name)
        column = column or widget.selection_attribute
        if column is None:
            raise WidgetError(
                f"widget {widget_name!r} does not support selection"
            )
        if values is not None:
            widget.select_values(column, values)
        elif value_range is not None:
            widget.select_range(column, value_range[0], value_range[1])
        else:
            widget.clear_selection()

    def widget_view(self, name: str) -> WidgetView:
        """Render one widget with the current interaction state."""
        widget = self.widget(name)
        plan = self.compiled.widget_plans[name]
        if isinstance(widget, (LayoutWidget, TabLayout)):
            return widget.render_composite(self.widget_view)
        if plan.is_static:
            return widget.render(None)
        if plan.source_name is None:
            return widget.render(None)
        cube = self._cubes.get(name)
        if cube is None:
            self._rebuild_cubes()
            cube = self._cubes.get(name)
        if cube is None:
            return widget.render(None)
        obs = self.observability
        with obs.tracer.span(
            "cube.query", dashboard=self.name, widget=name
        ) as span:
            table = cube.query(plan.client_tasks, self._selections())
            span.set(rows_out=table.num_rows)
        obs.metrics.counter(
            CUBE_QUERIES, "Datacube slices evaluated for widget views"
        ).inc(dashboard=self.name)
        return widget.render(table)

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    def render(self) -> DashboardView:
        """Render the full dashboard (grid of widget views)."""
        views: dict[str, WidgetView] = {}

        def resolve(widget_name: str) -> WidgetView:
            if widget_name not in views:
                views[widget_name] = self.widget_view(widget_name)
            return views[widget_name]

        layout = self.flow_file.layout
        if layout is None or not layout.rows:
            # No layout section (data-processing mode): summary only.
            text = (
                f"dashboard {self.name!r}: data-processing mode, "
                f"endpoints: {', '.join(self.endpoint_names()) or '-'}"
            )
            return DashboardView(name=self.name, html="", text=text)
        html, text = GridRenderer().render_rows(layout, resolve)
        title = layout.description or self.name
        style = (
            f"<style>{self.stylesheet}</style>" if self.stylesheet else ""
        )
        html = (
            f"<html><head><title>{title}</title>{style}</head>"
            f"<body><h1>{title}</h1>{html}</body></html>"
        )
        return DashboardView(
            name=self.name,
            html=html,
            text=f"== {title} ==\n{text}",
            widget_views=views,
        )
