"""Data profiling and auto-constructed meta-dashboards (paper §6).

"We want to auto-construct meta-dashboards which provide statistics and
analysis of all the data columns used in the data pipeline.  Since data
cleaning is a non-trivial activity, we believe this feature would be of
immense help for huge data sizes."

Two layers:

* :func:`profile_table` — per-column statistics (null rate, distinct
  count, numeric min/max/mean, top values) for one table;
* :func:`build_meta_dashboard` — generates a complete *flow file* whose
  widgets display the profile of every data object a dashboard
  materializes, and instantiates it on the platform.  The meta-dashboard
  is an ordinary dashboard: it renders, serves endpoint data, and can be
  forked like any other — the platform eating its own dog food.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.data import Schema, Table


@dataclass
class ColumnProfile:
    """Statistics for one column."""

    name: str
    total: int
    nulls: int
    distinct: int
    #: numeric summary, None for non-numeric columns
    minimum: float | None = None
    maximum: float | None = None
    mean: float | None = None
    #: most frequent values: (value, count), descending
    top_values: list[tuple[Any, int]] = field(default_factory=list)

    @property
    def null_rate(self) -> float:
        return self.nulls / self.total if self.total else 0.0

    def as_row(self) -> dict[str, Any]:
        return {
            "column": self.name,
            "rows": self.total,
            "nulls": self.nulls,
            "null_pct": round(100 * self.null_rate, 2),
            "distinct": self.distinct,
            "min": self.minimum,
            "max": self.maximum,
            "mean": round(self.mean, 4) if self.mean is not None else None,
            "top_value": (
                self.top_values[0][0] if self.top_values else None
            ),
            "top_count": (
                self.top_values[0][1] if self.top_values else None
            ),
        }


def profile_column(
    name: str, values: list[Any], top_k: int = 5
) -> ColumnProfile:
    """Profile one column's values."""
    total = len(values)
    nulls = sum(1 for v in values if v is None)
    counts: dict[Any, int] = {}
    numeric: list[float] = []
    for value in values:
        if value is None:
            continue
        key = str(value) if isinstance(value, (list, dict)) else value
        counts[key] = counts.get(key, 0) + 1
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)):
            numeric.append(float(value))
    top = sorted(counts.items(), key=lambda kv: (-kv[1], str(kv[0])))
    profile = ColumnProfile(
        name=name,
        total=total,
        nulls=nulls,
        distinct=len(counts),
        top_values=top[:top_k],
    )
    if numeric:
        profile.minimum = min(numeric)
        profile.maximum = max(numeric)
        profile.mean = sum(numeric) / len(numeric)
    return profile


def profile_table(table: Table, top_k: int = 5) -> list[ColumnProfile]:
    """Profile every column of ``table``."""
    return [
        profile_column(name, table.column(name), top_k=top_k)
        for name in table.schema.names
    ]


def profile_as_table(table: Table, top_k: int = 5) -> Table:
    """The profile itself as a table (one row per column)."""
    schema = Schema.of(
        "column", "rows", "nulls", "null_pct", "distinct",
        "min", "max", "mean", "top_value", "top_count",
    )
    return Table.from_rows(
        schema, [p.as_row() for p in profile_table(table, top_k)]
    )


# ---------------------------------------------------------------------------
# meta-dashboard generation
# ---------------------------------------------------------------------------

_META_SUFFIX = "_meta"


def build_meta_flow_file(object_names: list[str]) -> str:
    """Flow-file text for a meta-dashboard over ``object_names``.

    Each profiled object gets a DataGrid of its column statistics and a
    Bar chart of null percentages — the cleaning-first view §6 asks for.
    """
    lines = ["D:"]
    for name in object_names:
        lines.append(
            f"    {name}_profile: [column, rows, nulls, null_pct, "
            f"distinct, min, max, mean, top_value, top_count]"
        )
    for name in object_names:
        lines.append(f"D.{name}_profile:")
        lines.append("    endpoint: true")
    lines.append("W:")
    for name in object_names:
        lines.extend(
            [
                f"    {name}_grid:",
                "        type: DataGrid",
                f"        source: D.{name}_profile",
                "        page_size: 50",
                f"    {name}_nulls:",
                "        type: Bar",
                f"        source: D.{name}_profile",
                "        x: column",
                "        y: null_pct",
            ]
        )
    lines.append("L:")
    lines.append("    description: Data profile")
    lines.append("    rows:")
    for name in object_names:
        lines.append(f"    - [span7: W.{name}_grid, span5: W.{name}_nulls]")
    return "\n".join(lines) + "\n"


def build_meta_dashboard(platform, dashboard_name: str):
    """Auto-construct the meta-dashboard for an existing dashboard.

    Profiles every data object the dashboard has materialized (run it
    first), creates ``<name>_meta`` on the platform, and returns it.
    """
    dashboard = platform.get_dashboard(dashboard_name)
    materialized = dict(dashboard._materialized)
    if not materialized:
        raise ValueError(
            f"dashboard {dashboard_name!r} has no materialized data; "
            f"run_flows() first"
        )
    names = sorted(materialized)
    source = build_meta_flow_file(names)
    profiles = {
        f"{name}_profile": profile_as_table(materialized[name])
        for name in names
    }
    meta_name = f"{dashboard_name}{_META_SUFFIX}"
    meta = platform.create_dashboard(
        meta_name, source, inline_tables=profiles
    )
    meta.run_flows()
    return meta
