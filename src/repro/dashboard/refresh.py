"""Background refresh scheduler: keeps published endpoints warm.

A :class:`RefreshScheduler` wraps a
:class:`~repro.platform.Platform` and calls
:meth:`~repro.platform.Platform.refresh_dashboard` for each managed
dashboard on a fixed interval, from a daemon thread.  Each cycle runs
under a ``refresh.cycle`` span; a dashboard whose refresh raises is
logged and counted (``repro_refresh_errors_total``) without stopping
the cycle or the scheduler.

Use :meth:`run_cycle` directly for synchronous, deterministic refreshes
(tests, the CLI's ``refresh --cycles`` loop); :meth:`start` /
:meth:`stop` manage the background thread, and the scheduler doubles as
a context manager::

    with RefreshScheduler(platform, interval=30.0) as scheduler:
        ...  # endpoints stay warm while serving

Consistency: version bumps and query-cache invalidation happen inside
``refresh_dashboard`` (the platform notifies its refresh listeners), so
a scheduler cycle is exactly as safe as a manual refresh.
"""

from __future__ import annotations

import logging
import threading
from typing import Sequence

from repro.observability.instruments import (
    REFRESH_CYCLES,
    REFRESH_ERRORS,
)

_LOG = logging.getLogger("repro.refresh")


class RefreshScheduler:
    """Periodic dashboard refreshes on a daemon thread."""

    def __init__(
        self,
        platform,
        interval: float = 30.0,
        dashboards: Sequence[str] | None = None,
        incremental: bool = True,
    ):
        if interval <= 0:
            raise ValueError(
                f"refresh interval must be positive, got {interval!r}"
            )
        self.platform = platform
        self.interval = float(interval)
        #: None means "every dashboard the platform knows at cycle time"
        self._dashboards = (
            list(dashboards) if dashboards is not None else None
        )
        self.incremental = incremental
        self.cycles = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # -- synchronous core ----------------------------------------------

    def run_cycle(self) -> dict[str, object]:
        """Refresh every managed dashboard once; returns name → report.

        A failing dashboard maps to the exception instead of a report.
        """
        platform = self.platform
        names = (
            self._dashboards
            if self._dashboards is not None
            else platform.dashboard_names()
        )
        results: dict[str, object] = {}
        obs = platform.observability
        with obs.tracer.span(
            "refresh.cycle", dashboards=len(names), cycle=self.cycles
        ):
            for name in names:
                try:
                    results[name] = platform.refresh_dashboard(
                        name, incremental=self.incremental
                    )
                except Exception as exc:
                    _LOG.warning(
                        "background refresh of %r failed: %s", name, exc
                    )
                    obs.metrics.counter(
                        REFRESH_ERRORS,
                        "Dashboard refreshes that raised",
                    ).inc(dashboard=name)
                    results[name] = exc
        obs.metrics.counter(
            REFRESH_CYCLES, "Background refresh cycles completed"
        ).inc()
        self.cycles += 1
        return results

    # -- background thread ---------------------------------------------

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> None:
        if self.running:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="repro-refresh", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: float = 5.0) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=timeout)
        self._thread = None

    def _loop(self) -> None:
        # Wait first: callers start the scheduler right after the
        # priming full run, when every endpoint is already fresh.
        while not self._stop.wait(self.interval):
            try:
                self.run_cycle()
            except Exception:  # pragma: no cover - run_cycle guards
                _LOG.exception("refresh cycle failed")

    def __enter__(self) -> "RefreshScheduler":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
