"""Dashboard runtime.

Ties the compiled flow file to live data: runs the flows on an engine,
publishes/exposes endpoint data, binds widgets through data cubes, and
propagates widget-to-widget interaction (paper §3.5.1) — the generated
single-page app of §4.4, as a Python object.
"""

from repro.dashboard.environment import EnvironmentProfile
from repro.dashboard.dashboard import Dashboard, DashboardView

__all__ = ["Dashboard", "DashboardView", "EnvironmentProfile"]
