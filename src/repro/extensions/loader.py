"""Extension upload + registration (paper §4.3.2).

"The ShareInsights platform provides a secure file transfer protocol
(SFTP) interface to upload the various types of extensions - widgets,
connectors, tasks and stylesheets.  The interface is file based and each
dashboard has appropriately named folders for task, widgets etc.
Additionally, users can upload dashboard data to a 'data' folder."

:class:`ExtensionServices` reproduces that contract over the simulated
FTP server: files land under ``/<dashboard>/<kind>/<filename>`` and
Python extension files are loaded and registered on the platform's
registries.  A loaded user task/widget "looks no different from a
platform provided task" (§5.2 obs. 2) because it goes through the same
registries as the built-ins.

Python extension files register themselves by defining any of:

* ``Task`` subclasses (auto-registered by ``type_name``),
* ``Widget`` subclasses (auto-registered by ``type_name``),
* ``Connector`` / ``Format`` subclasses,
* a module-level ``register(platform)`` function for anything else
  (expression functions, map operators, aggregates).
"""

from __future__ import annotations

import inspect
from typing import Any

from repro.connectors.base import Connector
from repro.connectors.ftp import SimulatedFtpServer
from repro.errors import ExtensionError
from repro.formats.base import Format
from repro.platform import Platform
from repro.tasks.base import Task
from repro.widgets.base import Widget

_KINDS = ("tasks", "widgets", "connectors", "formats", "styles", "data")


class ExtensionServices:
    """File-based extension upload bound to one platform."""

    def __init__(
        self, platform: Platform, server: SimulatedFtpServer | None = None
    ):
        self.platform = platform
        self.server = server or SimulatedFtpServer()
        #: dashboard -> concatenated stylesheet text
        self.stylesheets: dict[str, str] = {}

    # ------------------------------------------------------------------
    def upload(
        self, dashboard: str, kind: str, filename: str, payload: bytes
    ) -> list[str]:
        """Upload one extension file; returns names registered.

        ``kind`` is one of ``tasks``, ``widgets``, ``connectors``,
        ``formats``, ``styles``, ``data``.
        """
        if kind not in _KINDS:
            raise ExtensionError(
                f"unknown extension folder {kind!r}; known: {_KINDS}"
            )
        path = f"/{dashboard}/{kind}/{filename}"
        self.server.put(path, payload)
        if kind == "styles":
            css = payload.decode("utf-8")
            existing = self.stylesheets.get(dashboard, "")
            combined = f"{existing}\n{css}".strip()
            self.stylesheets[dashboard] = combined
            # Live dashboards pick the stylesheet up immediately.
            if dashboard in self.platform.dashboards:
                self.platform.dashboards[dashboard].stylesheet = combined
            return [filename]
        if kind == "data":
            return [filename]  # data files are fetched by connectors
        return self._load_python(dashboard, kind, filename, payload)

    def data_files(self, dashboard: str) -> list[str]:
        return self.server.listdir(f"/{dashboard}/data")

    def read_data(self, dashboard: str, filename: str) -> bytes:
        return self.server.retr(
            f"/{dashboard}/data/{filename}", "anonymous", ""
        )

    def stylesheet(self, dashboard: str) -> str:
        return self.stylesheets.get(dashboard, "")

    # ------------------------------------------------------------------
    def _load_python(
        self, dashboard: str, kind: str, filename: str, payload: bytes
    ) -> list[str]:
        namespace: dict[str, Any] = {}
        try:
            code = compile(
                payload.decode("utf-8"), f"{dashboard}/{kind}/{filename}",
                "exec",
            )
            exec(code, namespace)  # user extension code, by design
        except Exception as exc:
            raise ExtensionError(
                f"extension {filename!r} failed to load: {exc}"
            ) from exc
        registered: list[str] = []
        for value in list(namespace.values()):
            if not inspect.isclass(value):
                continue
            if issubclass(value, Task) and value is not Task:
                if value.type_name:
                    self.platform.tasks.register_type(value, replace=True)
                    registered.append(value.type_name)
            elif issubclass(value, Widget) and value is not Widget:
                if value.type_name:
                    self.platform.widgets.register(value, replace=True)
                    registered.append(value.type_name)
            elif issubclass(value, Connector) and value is not Connector:
                if value.name:
                    self.platform.connectors.register(value(), replace=True)
                    registered.append(value.name)
            elif issubclass(value, Format) and value is not Format:
                if value.name:
                    self.platform.formats.register(value(), replace=True)
                    registered.append(value.name)
        register_fn = namespace.get("register")
        if callable(register_fn):
            register_fn(self.platform)
            registered.append("register()")
        if not registered:
            raise ExtensionError(
                f"extension {filename!r} defined nothing to register"
            )
        return registered
