"""Extension services (paper §4.2–4.3.2).

User extensions — tasks, widgets, connectors, formats, stylesheets, data
files — are uploaded through a file-based interface (the paper uses SFTP
with "appropriately named folders for task, widgets etc.") and registered
on the platform, after which they are indistinguishable from built-ins.
"""

from repro.extensions.loader import ExtensionServices

__all__ = ["ExtensionServices"]
