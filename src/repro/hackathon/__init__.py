"""Race2Insights hackathon simulation (paper §5).

The paper's evaluation is a 52-team internal hackathon whose findings
(Figs. 31, 32, 35) are *derived from platform telemetry* — application
logs, flow-file growth, execution logs.  We reproduce the evaluation by
simulating the teams against the **real platform**: simulated
participants fork sample dashboards, edit flow files, trigger runs (and
errors), and the analysis module regenerates the paper's figures from
the resulting telemetry.  See DESIGN.md's substitution table.
"""

from repro.hackathon.datasets import HACKATHON_DATASETS, HackathonDataset
from repro.hackathon.simulator import (
    HackathonResult,
    Team,
    run_hackathon,
)
from repro.hackathon import analysis, effort

__all__ = [
    "HACKATHON_DATASETS",
    "HackathonDataset",
    "HackathonResult",
    "Team",
    "run_hackathon",
    "analysis",
    "effort",
]
