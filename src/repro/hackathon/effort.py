"""Build-effort model for the paper's headline claim.

"Rich data pipelines which traditionally took weeks to build were
constructed and deployed in hours" (§1) / "Prior to building this
platform, equivalent dashboards took four to six weeks to develop"
(§5.2 obs. 1).

The claim cannot be re-run with human subjects, so we model it the way
engineering-economics studies do: count the *authored artifact size* of
a dashboard in each stack and convert through a productivity constant.
For the multi-technology baseline we tally, per pipeline construct, the
imperative code a Big-Data-stack implementation needs (MapReduce/Pig
driver code, serialization glue, REST endpoints, JavaScript widget +
event-handler code — the §2.2 challenges).  For ShareInsights we count
the actual flow-file lines.  The productivity constant (10 delivered
LoC/hour, industry-standard for multi-stack integration work) turns both
into hours.  The *ratio* is the reproducible quantity; the bench reports
it next to the paper's weeks→hours claim.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dsl.ast_nodes import FlowFile
from repro.dsl.parser import parse_flow_file

#: estimated imperative LoC per pipeline construct on the 2015 Big Data
#: stack (MR/Pig job + glue + serialization), per §2.2's challenge list
_TASK_LOC = {
    "map": 60,         # UDF + job wiring
    "filter_by": 35,
    "groupby": 80,     # MR job with combiner
    "join": 120,       # two-input MR join
    "topn": 70,
    "parallel": 40,
    "project": 20,
    "rename": 15,
    "sort": 40,
    "limit": 10,
    "union": 25,
    "distinct": 30,
    "add_column": 35,
    "python": 50,
    "native_mr": 90,
}
_DEFAULT_TASK_LOC = 50

#: per data object: ingestion + schema + serialization glue
_DATA_OBJECT_LOC = 45
#: per endpoint: REST handler + serialization
_ENDPOINT_LOC = 60
#: per widget: JS widget setup + data binding
_WIDGET_LOC = 90
#: per interaction edge (widget-sourced filter): event handlers + wiring
_INTERACTION_LOC = 70
#: layout scaffolding (HTML/CSS)
_LAYOUT_LOC = 80

#: delivered, debugged LoC per engineer-hour for multi-stack glue work
LOC_PER_HOUR = 10.0
#: flow-file lines per hour observed in configuration-driven authoring
#: (a config line needs no compile/deploy cycle across stacks)
FLOW_LINES_PER_HOUR = 40.0


@dataclass
class EffortEstimate:
    """Effort comparison for one dashboard."""

    dashboard: str
    flow_file_lines: int
    flow_file_hours: float
    baseline_loc: int
    baseline_hours: float

    @property
    def speedup(self) -> float:
        return (
            self.baseline_hours / self.flow_file_hours
            if self.flow_file_hours
            else float("inf")
        )

    @property
    def baseline_weeks(self) -> float:
        return self.baseline_hours / 40.0


def estimate_effort(source: str, name: str = "dashboard") -> EffortEstimate:
    """Estimate build effort for a flow file vs the multi-stack baseline."""
    flow_file = parse_flow_file(source, name=name)
    lines = len(
        [ln for ln in source.splitlines() if ln.strip()
         and not ln.strip().startswith("#")]
    )
    baseline = baseline_loc(flow_file)
    return EffortEstimate(
        dashboard=name,
        flow_file_lines=lines,
        flow_file_hours=round(lines / FLOW_LINES_PER_HOUR, 2),
        baseline_loc=baseline,
        baseline_hours=round(baseline / LOC_PER_HOUR, 2),
    )


def baseline_loc(flow_file: FlowFile) -> int:
    """Imperative-stack LoC a flow file replaces."""
    total = 0
    total += _DATA_OBJECT_LOC * sum(
        1 for obj in flow_file.data.values() if obj.is_source
    )
    total += _ENDPOINT_LOC * len(flow_file.endpoints())
    for spec in flow_file.tasks.values():
        type_name = (spec.type_name or "").lower()
        total += _TASK_LOC.get(type_name, _DEFAULT_TASK_LOC)
    total += _WIDGET_LOC * len(flow_file.widgets)
    interactions = sum(
        1
        for spec in flow_file.tasks.values()
        if "filter_source" in spec.config
    )
    total += _INTERACTION_LOC * interactions
    if flow_file.layout is not None:
        total += _LAYOUT_LOC
    return total
