"""Programmatic dashboard synthesis for simulated teams.

Teams do not type flow files — they *grow* them: fork a sample, add a
task, add a widget, run, repeat (paper §5.2 obs. 3 and 7: fork to start,
then "go to a stable version and incrementally add").  This builder
produces the flow file a team has at complexity level *k* by assembling
the object model and serializing it, so every generated file goes
through the real parser/compiler when saved on the platform.

Complexity steps (cumulative):

0. fact source → group-by on the first dimension → endpoint + Bar chart
1. an expression filter before the aggregation
2. a derived column (map/add_column)
3. a second aggregation on another dimension + Pie chart
4. a join with the reference table (when the data set has one)
5. a top-n flow + WordCloud
6. slider + widget-to-widget filter interaction
7+. a DataGrid and extra layout polish
"""

from __future__ import annotations

import random

from repro.dsl.ast_nodes import (
    DataObject,
    FlowFile,
    FlowSpec,
    LayoutCell,
    LayoutSpec,
    TaskSpec,
    WidgetSpec,
)
from repro.dsl.pipes import PipeExpr
from repro.dsl.serializer import serialize_flow_file
from repro.hackathon.datasets import HackathonDataset

MAX_COMPLEXITY = 8


def build_flow_file(
    dataset: HackathonDataset,
    complexity: int,
    rng: random.Random,
    use_custom_task: bool = False,
) -> str:
    """Flow-file text for ``dataset`` at ``complexity`` (0..8)."""
    complexity = max(0, min(MAX_COMPLEXITY, complexity))
    ff = FlowFile(name=f"{dataset.name}_dashboard")
    fact = dataset.fact_table
    dims = list(dataset.dimensions)
    measures = list(dataset.measures)
    dim0 = dims[0]
    dim1 = dims[1 % len(dims)]
    measure = measures[0]

    ff.data[fact] = DataObject(name=fact, schema=dataset.fact_schema())

    # -- level 0: base aggregation + bar chart -----------------------------
    summary = f"{dim0}_summary"
    ff.data[summary] = DataObject(name=summary, endpoint=True)
    ff.tasks[f"agg_{dim0}"] = TaskSpec(
        name=f"agg_{dim0}",
        config={
            "type": "groupby",
            "groupby": [dim0],
            "aggregates": [
                {
                    "operator": "sum",
                    "apply_on": measure,
                    "out_field": f"total_{measure}",
                }
            ],
        },
    )
    base_tasks = [f"agg_{dim0}"]

    # -- level 1: expression filter ----------------------------------------
    if complexity >= 1:
        ff.tasks["quality_filter"] = TaskSpec(
            name="quality_filter",
            config={
                "type": "filter_by",
                "filter_expression": f"not isnull({measure})",
            },
        )
        base_tasks.insert(0, "quality_filter")

    # -- level 2: derived column ---------------------------------------------
    if complexity >= 2:
        ff.tasks["derive_score"] = TaskSpec(
            name="derive_score",
            config={
                "type": "add_column",
                "expression": f"{measure} * {rng.randint(2, 9)}",
                "output": "score",
            },
        )
        base_tasks.insert(
            1 if complexity >= 1 else 0, "derive_score"
        )

    ff.flows.append(
        FlowSpec(
            output=summary,
            pipe=PipeExpr(inputs=(fact,), tasks=tuple(base_tasks)),
        )
    )

    widgets: list[tuple[str, WidgetSpec, int]] = []
    widgets.append(
        (
            "main_bar",
            WidgetSpec(
                name="main_bar",
                type_name="Bar",
                source=PipeExpr(inputs=(summary,)),
                config={"x": dim0, "y": f"total_{measure}"},
            ),
            6,
        )
    )

    # -- level 3: second aggregation + pie -----------------------------------
    if complexity >= 3:
        second = f"{dim1}_summary"
        ff.data[second] = DataObject(name=second, endpoint=True)
        ff.tasks[f"agg_{dim1}"] = TaskSpec(
            name=f"agg_{dim1}",
            config={
                "type": "groupby",
                "groupby": [dim1],
                "aggregates": [
                    {
                        "operator": "count",
                        "out_field": "records",
                    }
                ],
            },
        )
        ff.flows.append(
            FlowSpec(
                output=second,
                pipe=PipeExpr(inputs=(fact,), tasks=(f"agg_{dim1}",)),
            )
        )
        widgets.append(
            (
                "share_pie",
                WidgetSpec(
                    name="share_pie",
                    type_name="Pie",
                    source=PipeExpr(inputs=(second,)),
                    config={"label": dim1, "value": "records"},
                ),
                6,
            )
        )

    # -- level 4: reference join ----------------------------------------------
    reference = next(
        (name for name in dataset.generators if name != fact), None
    )
    if complexity >= 4 and reference is not None:
        ref_table = dataset.generators[reference](0)
        join_key = next(
            (c for c in ref_table.schema.names if c in dims), None
        )
        if join_key is not None:
            ff.data[reference] = DataObject(
                name=reference, schema=ref_table.schema
            )
            enriched = "enriched"
            ff.data[enriched] = DataObject(name=enriched, endpoint=True)
            ff.tasks["join_reference"] = TaskSpec(
                name="join_reference",
                config={
                    "type": "join",
                    "left": f"{fact} by {join_key}",
                    "right": f"{reference} by {join_key}",
                    "join_condition": "left outer",
                },
            )
            ff.flows.append(
                FlowSpec(
                    output=enriched,
                    pipe=PipeExpr(
                        inputs=(fact, reference),
                        tasks=("join_reference",),
                    ),
                )
            )

    # -- level 5: top-n + word cloud -------------------------------------------
    if complexity >= 5:
        top = "top_items"
        ff.data[top] = DataObject(name=top, endpoint=True)
        ff.tasks["top_items_task"] = TaskSpec(
            name="top_items_task",
            config={
                "type": "topn",
                "orderby_column": [f"total_{measure} DESC"],
                "limit": 10,
            },
        )
        ff.flows.append(
            FlowSpec(
                output=top,
                pipe=PipeExpr(
                    inputs=(summary,), tasks=("top_items_task",)
                ),
            )
        )
        widgets.append(
            (
                "top_cloud",
                WidgetSpec(
                    name="top_cloud",
                    type_name="WordCloud",
                    source=PipeExpr(inputs=(top,)),
                    config={"text": dim0, "size": f"total_{measure}"},
                ),
                6,
            )
        )

    # -- level 6: interaction (slider filters the bar chart) --------------------
    if complexity >= 6:
        ff.tasks["filter_by_key"] = TaskSpec(
            name="filter_by_key",
            config={
                "type": "filter_by",
                "filter_by": [dim0],
                "filter_source": "W.key_picker",
                "filter_val": ["text"],
            },
        )
        widgets.append(
            (
                "key_picker",
                WidgetSpec(
                    name="key_picker",
                    type_name="List",
                    source=PipeExpr(inputs=(summary,)),
                    config={"text": dim0},
                ),
                3,
            )
        )
        widgets.append(
            (
                "filtered_bar",
                WidgetSpec(
                    name="filtered_bar",
                    type_name="Bar",
                    source=PipeExpr(
                        inputs=(summary,), tasks=("filter_by_key",)
                    ),
                    config={"x": dim0, "y": f"total_{measure}"},
                ),
                9,
            )
        )

    # -- level 7: custom task (§5.2 obs. 2) --------------------------------------
    if complexity >= 7 and use_custom_task:
        predicted = "predicted"
        ff.data[predicted] = DataObject(name=predicted, endpoint=True)
        ff.tasks["predict"] = TaskSpec(
            name="predict",
            config={
                "type": "predict_resolution",
                "measure": f"total_{measure}",
            },
        )
        ff.flows.append(
            FlowSpec(
                output=predicted,
                pipe=PipeExpr(inputs=(summary,), tasks=("predict",)),
            )
        )

    # -- level 8: grid + polish ---------------------------------------------------
    if complexity >= 8:
        widgets.append(
            (
                "detail_grid",
                WidgetSpec(
                    name="detail_grid",
                    type_name="DataGrid",
                    source=PipeExpr(inputs=(summary,)),
                    config={"page_size": 20},
                ),
                12,
            )
        )

    for name, spec, _span in widgets:
        ff.widgets[name] = spec

    rows: list[list[LayoutCell]] = []
    row: list[LayoutCell] = []
    used = 0
    for name, _spec, span in widgets:
        if used + span > 12:
            rows.append(row)
            row, used = [], 0
        row.append(LayoutCell(span=span, widget=name))
        used += span
    if row:
        rows.append(row)
    ff.layout = LayoutSpec(
        description=f"{dataset.name} insights", rows=rows
    )
    return serialize_flow_file(ff)


def build_sample_flow_file(dataset: HackathonDataset) -> str:
    """The help/sample dashboard teams fork from (complexity 1)."""
    return build_flow_file(dataset, 1, random.Random(0))


def broken_flow_file(dataset: HackathonDataset, rng: random.Random) -> str:
    """A realistically broken edit (for error-telemetry simulation).

    Mistakes drawn from §5.2 obs. 7's debugging stories: a typo'd column
    in a task, an undefined task in a flow, or a widget bound to a
    missing column.
    """
    text = build_flow_file(dataset, 2, rng)
    mistake = rng.choice(["bad_column", "bad_task", "bad_widget"])
    if mistake == "bad_column":
        return text.replace(dataset.measures[0], "no_such_column", 1)
    if mistake == "bad_task":
        return text.replace("T.agg_", "T.missing_", 1)
    return text.replace(
        f"x: {dataset.dimensions[0]}", "x: no_such_column", 1
    )
