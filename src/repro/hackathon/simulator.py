"""Race2Insights simulation (paper §5.1–5.2).

Simulates the competition against a real :class:`~repro.platform.Platform`:

* seven data sets are loaded and a sample dashboard is created per set;
* 52 five-member teams with a spread of skill (§5.1: "zero to little
  programming background ... to significant skills") practice for five
  days — forking samples, editing, running, and hitting real errors;
* on competition day each team is assigned a data set by lottery, forks
  a starting dashboard ("fork to go", Fig. 35) and iterates for six
  simulated hours;
* two judging rounds score the final dashboards; the top seven are
  finalists, the top three winners (§5.1 "Judging").

Everything a team does goes through platform APIs, so the telemetry the
paper's figures are derived from (Figs. 31, 32, 35) accumulates in
``platform.events`` exactly as it did in production.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import ShareInsightsError
from repro.extensions.loader import ExtensionServices
from repro.hackathon.builder import (
    MAX_COMPLEXITY,
    broken_flow_file,
    build_flow_file,
    build_sample_flow_file,
)
from repro.hackathon.datasets import HACKATHON_DATASETS, HackathonDataset
from repro.platform import Platform

#: Python source of the custom task strong teams upload (§5.2 obs. 2:
#: "one team wrote a task to predict resolution dates of service
#: tickets"); it goes through the real extension-upload path.
_CUSTOM_TASK_SOURCE = '''
from typing import Sequence

from repro.data import Schema, Table
from repro.tasks.base import Task, TaskContext


class PredictResolutionTask(Task):
    """Predict a resolution metric from the aggregated measure."""

    type_name = "predict_resolution"

    def output_schema(self, input_schemas: Sequence[Schema]) -> Schema:
        measure = str(self.config.get("measure"))
        input_schemas[0].require([measure], context=self.name)
        return input_schemas[0].with_column("predicted")

    def apply(self, inputs: Sequence[Table], context: TaskContext) -> Table:
        table = inputs[0]
        measure = str(self.config.get("measure"))
        values = [
            None if v is None else round(v * 1.1 + 4, 2)
            for v in table.column(measure)
        ]
        return table.with_column("predicted", values)
'''


@dataclass
class Team:
    """One competing team."""

    team_id: int
    #: latent ability, 0..1 (§5.1: "varying skill level")
    skill: float
    #: propensity to practice, 0..1
    diligence: float
    dataset: HackathonDataset | None = None
    practice_runs: int = 0
    competition_runs: int = 0
    errors: int = 0
    fork_size_bytes: int = 0
    final_complexity: int = 0
    used_custom_task: bool = False
    score: float = 0.0
    is_finalist: bool = False
    is_winner: bool = False

    @property
    def name(self) -> str:
        return f"team{self.team_id}"

    @property
    def dashboard(self) -> str:
        return f"{self.name}_dashboard"


@dataclass
class HackathonResult:
    """The simulated competition's outcome + telemetry."""

    platform: Platform
    teams: list[Team]
    seed: int

    @property
    def finalists(self) -> list[Team]:
        return [t for t in self.teams if t.is_finalist]

    @property
    def winners(self) -> list[Team]:
        return [t for t in self.teams if t.is_winner]


def run_hackathon(
    num_teams: int = 52,
    seed: int = 2015,
    practice_days: int = 5,
    competition_hours: int = 6,
) -> HackathonResult:
    """Run the full simulation; deterministic for a given seed."""
    rng = random.Random(seed)
    platform = Platform()
    extensions = ExtensionServices(platform)

    # -- platform setup: sample dashboard per data set ---------------------
    for dataset in HACKATHON_DATASETS:
        platform.create_dashboard(
            f"sample_{dataset.name}",
            build_sample_flow_file(dataset),
            inline_tables=dataset.tables(seed),
            user="platform",
        )

    teams = _make_teams(num_teams, rng)

    # -- training/practice phase (§5.1 "Training") --------------------------
    for team in teams:
        practice_dataset = rng.choice(HACKATHON_DATASETS)
        _practice(
            platform, team, practice_dataset, practice_days, rng
        )

    # -- competition day -------------------------------------------------------
    for team in teams:
        team.dataset = HACKATHON_DATASETS[
            team.team_id % len(HACKATHON_DATASETS)
        ]  # the lottery
        _compete(platform, extensions, team, competition_hours, rng)

    _judge(teams, rng)
    return HackathonResult(platform=platform, teams=teams, seed=seed)


# ---------------------------------------------------------------------------
# phases
# ---------------------------------------------------------------------------


def _make_teams(num_teams: int, rng: random.Random) -> list[Team]:
    teams = []
    for team_id in range(1, num_teams + 1):
        # Bimodal-ish skill: a handful of strong data teams, a long tail
        # of novices (§5.1's skill spread).
        if rng.random() < 0.25:
            skill = rng.uniform(0.6, 0.95)
        else:
            skill = rng.uniform(0.1, 0.6)
        teams.append(
            Team(
                team_id=team_id,
                skill=round(skill, 3),
                diligence=round(
                    min(1.0, max(0.05, rng.gauss(skill, 0.25))), 3
                ),
            )
        )
    return teams


def _practice(
    platform: Platform,
    team: Team,
    dataset: HackathonDataset,
    practice_days: int,
    rng: random.Random,
) -> None:
    """Five days of training runs on a fork of a sample dashboard."""
    sessions = max(0, int(rng.gauss(team.diligence * 6 * practice_days,
                                    practice_days)))
    if sessions == 0:
        return
    practice_name = f"{team.name}_practice"
    platform.fork_dashboard(
        f"sample_{dataset.name}", practice_name, user=team.name
    )
    complexity = 1
    for _session in range(sessions):
        if rng.random() < _error_rate(team):
            # A broken edit: the save fails validation, an error event
            # lands in the log, and the team backs up to a stable
            # version (§5.2 obs. 7).
            try:
                platform.save_dashboard(
                    practice_name,
                    broken_flow_file(dataset, rng),
                    user=team.name,
                )
            except ShareInsightsError:
                team.errors += 1
            continue
        complexity = min(MAX_COMPLEXITY, complexity + (rng.random() < 0.5))
        platform.save_dashboard(
            practice_name,
            build_flow_file(dataset, complexity, rng),
            user=team.name,
        )
        platform.run_dashboard(practice_name, user=team.name)
        team.practice_runs += 1


def _compete(
    platform: Platform,
    extensions: ExtensionServices,
    team: Team,
    competition_hours: int,
    rng: random.Random,
) -> None:
    """Six hours of competition iterations."""
    dataset = team.dataset
    assert dataset is not None
    # Fork to go (Fig. 35): the starting file is the sample (or the
    # team's practice work when it used the same data set).
    platform.fork_dashboard(
        f"sample_{dataset.name}", team.dashboard, user=team.name
    )
    source = platform.repository.read(team.dashboard)
    team.fork_size_bytes = len(source)
    # Competition data differs from practice data (§5.2 obs. 4).
    dashboard = platform.get_dashboard(team.dashboard)
    dashboard._inline_tables.update(
        dataset.tables(team.team_id * 1000 + 17)
    )

    # Practice pays off: familiar teams iterate faster and break less.
    effectiveness = min(
        1.0, team.skill + 0.04 * (team.practice_runs ** 0.5)
    )
    minutes_per_iteration = 25 - 15 * effectiveness
    iterations = int(competition_hours * 60 / minutes_per_iteration)
    team.used_custom_task = team.skill > 0.7 and rng.random() < 0.8
    if team.used_custom_task:
        extensions.upload(
            team.dashboard,
            "tasks",
            "predict_resolution.py",
            _CUSTOM_TASK_SOURCE.encode("utf-8"),
        )
    complexity = 1
    for _iteration in range(iterations):
        if rng.random() < _error_rate(team) * 0.8:
            try:
                platform.save_dashboard(
                    team.dashboard,
                    broken_flow_file(dataset, rng),
                    user=team.name,
                )
            except ShareInsightsError:
                team.errors += 1
            continue
        complexity = min(
            MAX_COMPLEXITY, complexity + (rng.random() < 0.6)
        )
        platform.save_dashboard(
            team.dashboard,
            build_flow_file(
                dataset,
                complexity,
                rng,
                use_custom_task=team.used_custom_task,
            ),
            user=team.name,
        )
        platform.run_dashboard(team.dashboard, user=team.name)
        team.competition_runs += 1
    team.final_complexity = complexity


def _judge(teams: list[Team], rng: random.Random) -> None:
    """Two panel rounds → finalists (7) and winners (3)."""
    for team in teams:
        business_value = team.final_complexity / MAX_COMPLEXITY
        craft = 0.5 * team.skill + 0.2 * (team.used_custom_task)
        team.score = round(
            0.6 * business_value + craft + rng.gauss(0, 0.08), 4
        )
    ranked = sorted(teams, key=lambda t: -t.score)
    for team in ranked[:7]:
        team.is_finalist = True
    for team in ranked[:3]:
        team.is_winner = True


def _error_rate(team: Team) -> float:
    """Chance an edit breaks; practice and skill both reduce it."""
    return max(0.05, 0.4 - 0.35 * team.skill - 0.01 * team.practice_runs)
