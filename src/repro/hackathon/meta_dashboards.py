"""Competition-data dashboards, built on the platform itself (§5.2.1).

"The data generated during the competition as well as the practice
sessions ... were used to build dashboards (**using the platform**) to
illustrate usage of the platform during the competition hours."

This module closes that loop: hackathon telemetry becomes ordinary data
objects, and the Fig. 31/32/35 views are expressed as a flow file and
served by a real dashboard — the platform eating its own dog food.  The
numbers it displays are asserted (in tests) to equal the ones
:mod:`repro.hackathon.analysis` computes directly.
"""

from __future__ import annotations

from repro.data import Schema, Table
from repro.hackathon.simulator import HackathonResult

USAGE_FLOW = """
# Platform-usage dashboard over competition telemetry (paper Fig. 31)
D:
    run_operators: [dashboard, team, operator, uses]
    run_widgets: [dashboard, team, widget, uses]
    team_stats: [team, practice_runs, competition_runs, score,
        finalist, winner, fork_bytes]
    operator_usage: [operator, total_uses]
    widget_usage: [widget, total_uses]

F:
    D.operator_usage: D.run_operators | T.sum_operators
    D.operator_usage:
        endpoint: true
    D.widget_usage: D.run_widgets | T.sum_widgets
    D.widget_usage:
        endpoint: true
    D.team_practice: D.team_stats | T.project_practice
    D.team_practice:
        endpoint: true

T:
    sum_operators:
        type: groupby
        groupby: [operator]
        aggregates:
            - operator: sum
              apply_on: uses
              out_field: total_uses
        orderby_aggregates: true
    sum_widgets:
        type: groupby
        groupby: [widget]
        aggregates:
            - operator: sum
              apply_on: uses
              out_field: total_uses
        orderby_aggregates: true
    project_practice:
        type: project
        columns: [team, practice_runs, competition_runs, finalist]

W:
    operators_bar:
        type: Bar
        source: D.operator_usage
        x: operator
        y: total_uses
    widgets_bar:
        type: Bar
        source: D.widget_usage
        x: widget
        y: total_uses
    practice_grid:
        type: DataGrid
        source: D.team_practice
        page_size: 60
    fork_cloud:
        type: WordCloud
        source: D.team_stats
        text: team
        size: fork_bytes

L:
    description: Race2Insights platform usage
    rows:
    - [span6: W.operators_bar, span6: W.widgets_bar]
    - [span7: W.practice_grid, span5: W.fork_cloud]
"""


def telemetry_tables(result: HackathonResult) -> dict[str, Table]:
    """Flatten the simulation's telemetry into data objects."""
    operator_rows = []
    widget_rows = []
    for event in result.platform.events:
        if event.kind != "run":
            continue
        for operator, count in event.detail.get("operators", {}).items():
            operator_rows.append(
                {
                    "dashboard": event.dashboard,
                    "team": event.user,
                    "operator": operator,
                    "uses": count,
                }
            )
        for widget, count in event.detail.get("widgets", {}).items():
            widget_rows.append(
                {
                    "dashboard": event.dashboard,
                    "team": event.user,
                    "widget": widget,
                    "uses": count,
                }
            )
    team_rows = [
        {
            "team": team.name,
            "practice_runs": team.practice_runs,
            "competition_runs": team.competition_runs,
            "score": team.score,
            "finalist": team.is_finalist,
            "winner": team.is_winner,
            "fork_bytes": team.fork_size_bytes,
        }
        for team in result.teams
    ]
    return {
        "run_operators": Table.from_rows(
            Schema.of("dashboard", "team", "operator", "uses"),
            operator_rows,
        ),
        "run_widgets": Table.from_rows(
            Schema.of("dashboard", "team", "widget", "uses"), widget_rows
        ),
        "team_stats": Table.from_rows(
            Schema.of(
                "team", "practice_runs", "competition_runs", "score",
                "finalist", "winner", "fork_bytes",
            ),
            team_rows,
        ),
    }


def build_usage_dashboard(result: HackathonResult, name: str = "usage"):
    """Create and run the Fig. 31 dashboard on the result's platform."""
    platform = result.platform
    dashboard = platform.create_dashboard(
        name, USAGE_FLOW, inline_tables=telemetry_tables(result),
        user="platform",
    )
    dashboard.run_flows()
    return dashboard
