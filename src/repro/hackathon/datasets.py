"""The seven hackathon data sets (paper §5.1).

"We identified seven interesting data-sets that contained both public and
enterprise data.  Each data-set had multiple files that contained both
transaction as well as reference data about business entities."

Each :class:`HackathonDataset` carries named tables (a transaction/fact
table plus reference dimensions), the columns teams group and measure by,
and a generator seeded per team so every team sees its own data.  Two of
the seven reuse the paper's own domains (Apache projects, IPL tweets);
the others match §5.2's screenshots (service-desk tickets, brand
sentiment) and typical enterprise picks.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable

from repro.data import Schema, Table


@dataclass
class HackathonDataset:
    """One competition data set."""

    name: str
    description: str
    #: table name -> generator(seed) producing the table
    generators: dict[str, Callable[[int], Table]] = field(
        default_factory=dict
    )
    #: fact table name (what flows start from)
    fact_table: str = ""
    #: columns of the fact table suitable as group-by keys
    dimensions: list[str] = field(default_factory=list)
    #: numeric columns suitable for aggregation
    measures: list[str] = field(default_factory=list)

    def tables(self, seed: int) -> dict[str, Table]:
        return {
            name: generator(seed)
            for name, generator in self.generators.items()
        }

    def fact_schema(self, seed: int = 0) -> Schema:
        return self.generators[self.fact_table](seed).schema


def _rows(
    seed: int,
    count: int,
    columns: dict[str, Callable[[random.Random], object]],
) -> Table:
    rng = random.Random(seed)
    schema = Schema.of(*columns)
    records = [
        {name: make(rng) for name, make in columns.items()}
        for _ in range(count)
    ]
    return Table.from_rows(schema, records)


_PRIORITIES = ["low", "medium", "high", "critical"]
_QUEUES = ["network", "database", "desktop", "email", "erp", "security"]
_REGIONS = ["north", "south", "east", "west"]
_PRODUCTS = ["alpha", "beta", "gamma", "delta", "epsilon", "zeta"]
_CHANNELS = ["twitter", "facebook", "forums", "reviews", "news"]
_SENTIMENTS = ["positive", "neutral", "negative"]
_DEPARTMENTS = ["engineering", "sales", "support", "hr", "finance"]
_BROWSERS = ["chrome", "firefox", "safari", "edge"]
_PAGES = ["/home", "/pricing", "/docs", "/download", "/blog", "/contact"]


def _date(rng: random.Random) -> str:
    return f"2014-{rng.randint(1, 12):02d}-{rng.randint(1, 28):02d}"


def _service_tickets(seed: int) -> Table:
    return _rows(
        seed,
        600,
        {
            "ticket_id": lambda r: r.randint(10_000, 99_999),
            "opened": _date,
            "queue": lambda r: r.choice(_QUEUES),
            "priority": lambda r: r.choice(_PRIORITIES),
            "region": lambda r: r.choice(_REGIONS),
            "resolution_hours": lambda r: round(r.expovariate(1 / 18), 1),
            "reopened": lambda r: int(r.random() < 0.12),
        },
    )


def _ticket_sla(seed: int) -> Table:
    return Table.from_rows(
        Schema.of("priority", "sla_hours"),
        [
            {"priority": "low", "sla_hours": 72},
            {"priority": "medium", "sla_hours": 48},
            {"priority": "high", "sla_hours": 24},
            {"priority": "critical", "sla_hours": 4},
        ],
    )


def _brand_mentions(seed: int) -> Table:
    return _rows(
        seed,
        700,
        {
            "mention_id": lambda r: r.randint(1, 10**6),
            "date": _date,
            "product": lambda r: r.choice(_PRODUCTS),
            "channel": lambda r: r.choice(_CHANNELS),
            "sentiment": lambda r: r.choices(
                _SENTIMENTS, weights=[4, 3, 2]
            )[0],
            "reach": lambda r: r.randint(10, 50_000),
        },
    )


def _product_dim(seed: int) -> Table:
    return Table.from_rows(
        Schema.of("product", "category", "launch_year"),
        [
            {"product": p, "category": c, "launch_year": y}
            for p, c, y in [
                ("alpha", "mobile", 2011),
                ("beta", "mobile", 2012),
                ("gamma", "cloud", 2012),
                ("delta", "cloud", 2013),
                ("epsilon", "desktop", 2010),
                ("zeta", "desktop", 2014),
            ]
        ],
    )


def _retail_sales(seed: int) -> Table:
    return _rows(
        seed,
        800,
        {
            "order_id": lambda r: r.randint(1, 10**6),
            "date": _date,
            "store": lambda r: f"store_{r.randint(1, 20):02d}",
            "region": lambda r: r.choice(_REGIONS),
            "product": lambda r: r.choice(_PRODUCTS),
            "units": lambda r: r.randint(1, 12),
            "revenue": lambda r: round(r.uniform(5, 900), 2),
        },
    )


def _web_logs(seed: int) -> Table:
    return _rows(
        seed,
        900,
        {
            "date": _date,
            "page": lambda r: r.choice(_PAGES),
            "browser": lambda r: r.choice(_BROWSERS),
            "region": lambda r: r.choice(_REGIONS),
            "latency_ms": lambda r: int(r.expovariate(1 / 180)),
            "status": lambda r: r.choices(
                [200, 404, 500], weights=[92, 6, 2]
            )[0],
        },
    )


def _hr_attrition(seed: int) -> Table:
    return _rows(
        seed,
        500,
        {
            "employee_id": lambda r: r.randint(1, 10**5),
            "department": lambda r: r.choice(_DEPARTMENTS),
            "region": lambda r: r.choice(_REGIONS),
            "tenure_years": lambda r: round(r.uniform(0.2, 15), 1),
            "salary_band": lambda r: r.randint(1, 9),
            "attrited": lambda r: int(r.random() < 0.16),
        },
    )


def _apache_activity(seed: int) -> Table:
    from repro.workloads import apache

    return apache.svn_jira_summary_table(seed)


def _apache_categories(seed: int) -> Table:
    from repro.workloads import apache

    return apache.project_categories_table()


def _ipl_player_tweets(seed: int) -> Table:
    """Pre-processed player tweet counts (the shared objects of §3.7)."""
    from repro.workloads import ipl as ipl_workload

    rng = random.Random(seed)
    rows = []
    for player, team, _surfaces in ipl_workload.PLAYERS:
        for day in range(2, 28, 3):
            rows.append(
                {
                    "date": f"2013-05-{day:02d}",
                    "player": player,
                    "team": team,
                    "noOfTweets": rng.randint(5, 400),
                }
            )
    return Table.from_rows(
        Schema.of("date", "player", "team", "noOfTweets"), rows
    )


def _ipl_team_dim(seed: int) -> Table:
    from repro.workloads import ipl as ipl_workload

    return ipl_workload.dim_teams_table()


HACKATHON_DATASETS: list[HackathonDataset] = [
    HackathonDataset(
        name="service_desk",
        description="IT service-desk tickets with SLA reference data",
        generators={"tickets": _service_tickets, "sla": _ticket_sla},
        fact_table="tickets",
        dimensions=["queue", "priority", "region", "opened"],
        measures=["resolution_hours", "reopened"],
    ),
    HackathonDataset(
        name="branderstanding",
        description="Brand mentions across social channels",
        generators={"mentions": _brand_mentions, "products": _product_dim},
        fact_table="mentions",
        dimensions=["product", "channel", "sentiment", "date"],
        measures=["reach"],
    ),
    HackathonDataset(
        name="retail_sales",
        description="Point-of-sale transactions with a product dimension",
        generators={"sales": _retail_sales, "products": _product_dim},
        fact_table="sales",
        dimensions=["store", "region", "product", "date"],
        measures=["units", "revenue"],
    ),
    HackathonDataset(
        name="web_analytics",
        description="Web access logs",
        generators={"hits": _web_logs},
        fact_table="hits",
        dimensions=["page", "browser", "region", "date", "status"],
        measures=["latency_ms"],
    ),
    HackathonDataset(
        name="hr_attrition",
        description="Employee attrition records",
        generators={"employees": _hr_attrition},
        fact_table="employees",
        dimensions=["department", "region", "salary_band"],
        measures=["tenure_years", "attrited"],
    ),
    HackathonDataset(
        name="apache_activity",
        description="Apache project activity feeds",
        generators={
            "activity": _apache_activity,
            "categories": _apache_categories,
        },
        fact_table="activity",
        dimensions=["project", "year"],
        measures=["noOfBugs", "noOfCheckins", "noOfEmailsTotal"],
    ),
    HackathonDataset(
        name="ipl_tweets",
        description="IPL player tweet volumes with a team dimension",
        generators={
            "player_tweets": _ipl_player_tweets,
            "dim_teams": _ipl_team_dim,
        },
        fact_table="player_tweets",
        dimensions=["date", "player", "team"],
        measures=["noOfTweets"],
    ),
]


def dataset_by_name(name: str) -> HackathonDataset:
    for dataset in HACKATHON_DATASETS:
        if dataset.name == name:
            return dataset
    raise KeyError(
        f"no hackathon dataset {name!r}; "
        f"have {[d.name for d in HACKATHON_DATASETS]}"
    )
