"""Figure regeneration from hackathon telemetry (paper §5.2.1).

"The data generated during the competition as well as the practice
sessions - application logs, flow file growth, error messages, execution
logs - were used to build dashboards to illustrate usage of the platform."

Each function returns the series behind one paper figure, computed from
``platform.events`` and team records, plus an ASCII rendering helper so
benchmarks print the same picture the paper plots.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hackathon.simulator import HackathonResult


# ---------------------------------------------------------------------------
# Fig. 31 — platform usage: popular operators and widgets
# ---------------------------------------------------------------------------


def fig31_operator_usage(result: HackathonResult) -> dict[str, int]:
    """Task-type usage across all dashboard runs, descending."""
    usage: dict[str, int] = {}
    for event in result.platform.events:
        if event.kind != "run":
            continue
        for operator, count in event.detail.get("operators", {}).items():
            usage[operator] = usage.get(operator, 0) + count
    return dict(sorted(usage.items(), key=lambda kv: -kv[1]))


def fig31_widget_usage(result: HackathonResult) -> dict[str, int]:
    """Widget-type usage across all dashboard runs, descending."""
    usage: dict[str, int] = {}
    for event in result.platform.events:
        if event.kind != "run":
            continue
        for widget, count in event.detail.get("widgets", {}).items():
            usage[widget] = usage.get(widget, 0) + count
    return dict(sorted(usage.items(), key=lambda kv: -kv[1]))


# ---------------------------------------------------------------------------
# Fig. 32 — does practice matter?
# ---------------------------------------------------------------------------


@dataclass
class PracticePoint:
    team: str
    practice_runs: int
    competition_runs: int
    score: float
    is_finalist: bool
    is_winner: bool


def fig32_practice_series(result: HackathonResult) -> list[PracticePoint]:
    """Per-team practice vs competition runs with finalist/winner flags."""
    return [
        PracticePoint(
            team=team.name,
            practice_runs=team.practice_runs,
            competition_runs=team.competition_runs,
            score=team.score,
            is_finalist=team.is_finalist,
            is_winner=team.is_winner,
        )
        for team in result.teams
    ]


def fig32_correlation(result: HackathonResult) -> dict[str, float]:
    """Correlation between practice and outcomes (the figure's point).

    Returns Pearson r for practice→competition-runs and practice→score,
    plus the practice-run advantage of finalists over the field.
    """
    from scipy import stats

    practice = [t.practice_runs for t in result.teams]
    runs = [t.competition_runs for t in result.teams]
    scores = [t.score for t in result.teams]
    r_runs = stats.pearsonr(practice, runs).statistic
    r_score = stats.pearsonr(practice, scores).statistic
    finalists = [t.practice_runs for t in result.teams if t.is_finalist]
    field = [t.practice_runs for t in result.teams if not t.is_finalist]
    advantage = (
        (sum(finalists) / len(finalists)) / max(sum(field) / len(field), 1e-9)
        if finalists and field
        else float("nan")
    )
    return {
        "pearson_practice_vs_competition_runs": round(float(r_runs), 4),
        "pearson_practice_vs_score": round(float(r_score), 4),
        "finalist_practice_advantage": round(float(advantage), 4),
    }


# ---------------------------------------------------------------------------
# Fig. 35 — fork to go (flow-file size at competition start)
# ---------------------------------------------------------------------------


def fig35_fork_sizes(result: HackathonResult) -> dict[str, int]:
    """Flow-file size in bytes per team at competition start."""
    return {team.name: team.fork_size_bytes for team in result.teams}


def fig35_from_telemetry(result: HackathonResult) -> dict[str, int]:
    """The same series recovered purely from fork events in the log."""
    sizes: dict[str, int] = {}
    for event in result.platform.events:
        if event.kind == "fork" and event.dashboard.endswith("_dashboard"):
            sizes[event.user] = int(event.detail.get("bytes", 0))
    return sizes


# ---------------------------------------------------------------------------
# flow-file growth (§5.2.1 lists it among the collected data)
# ---------------------------------------------------------------------------


def flow_file_growth(result: HackathonResult) -> dict[str, list[int]]:
    """Per-team flow-file sizes over successive saves.

    The incremental-building workflow (§5.2 obs. 7: back up to stable,
    add, save) shows up as a mostly-monotonic size trajectory per team.
    """
    growth: dict[str, list[int]] = {}
    for event in result.platform.events:
        if event.kind in ("fork", "save") and event.user.startswith(
            "team"
        ):
            growth.setdefault(event.user, []).append(
                int(event.detail.get("bytes", 0))
            )
    return growth


# ---------------------------------------------------------------------------
# error telemetry (§5.2 obs. 7 context)
# ---------------------------------------------------------------------------


def error_counts(result: HackathonResult) -> dict[str, int]:
    """Error events per team (debugging-by-backtracking traffic)."""
    errors: dict[str, int] = {}
    for event in result.platform.events:
        if event.kind == "error" and event.user:
            errors[event.user] = errors.get(event.user, 0) + 1
    return errors


# ---------------------------------------------------------------------------
# rendering
# ---------------------------------------------------------------------------


def ascii_bar_chart(
    series: dict[str, int | float],
    title: str,
    width: int = 40,
    limit: int = 15,
) -> str:
    """Render a horizontal ASCII bar chart of ``series``."""
    lines = [title, "-" * len(title)]
    items = list(series.items())[:limit]
    if not items:
        return "\n".join(lines + ["(empty)"])
    peak = max(value for _k, value in items) or 1
    label_width = max(len(str(k)) for k, _v in items)
    for key, value in items:
        bar = "#" * max(1, int(width * value / peak))
        lines.append(f"{str(key):<{label_width}} | {bar} {value}")
    return "\n".join(lines)


def ascii_scatter(
    points: list[PracticePoint], width: int = 60, height: int = 18
) -> str:
    """Fig. 32 as an ASCII scatter: practice (x) vs competition (y).

    ``*`` = winner, ``o`` = finalist, ``.`` = other team.
    """
    if not points:
        return "(no teams)"
    max_x = max(p.practice_runs for p in points) or 1
    max_y = max(p.competition_runs for p in points) or 1
    grid = [[" "] * (width + 1) for _ in range(height + 1)]
    for point in points:
        x = int(point.practice_runs / max_x * width)
        y = height - int(point.competition_runs / max_y * height)
        mark = "*" if point.is_winner else "o" if point.is_finalist else "."
        if grid[y][x] in (" ", "."):
            grid[y][x] = mark
    lines = ["competition runs ^  (* winner, o finalist, . team)"]
    lines.extend("".join(row) for row in grid)
    lines.append("-" * (width + 1) + "> practice runs")
    return "\n".join(lines)
