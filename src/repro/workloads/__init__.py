"""Synthetic workload generators.

The paper's dashboards run on data we cannot ship (Gnip's IPL tweet
archive, Apache project telemetry).  These generators produce
deterministic synthetic equivalents with the same schemas and payload
shapes, so the exact flow files from the paper's figures and appendices
run unchanged (see DESIGN.md's substitution table).
"""

from repro.workloads import apache, ipl
from repro.workloads.flowfiles import (
    APACHE_FLOW,
    IPL_CONSUMPTION_FLOW,
    IPL_PROCESSING_FLOW,
)

__all__ = [
    "apache",
    "ipl",
    "APACHE_FLOW",
    "IPL_PROCESSING_FLOW",
    "IPL_CONSUMPTION_FLOW",
]
