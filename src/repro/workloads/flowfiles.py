'''Canonical flow files for the paper's two dashboards.

``APACHE_FLOW`` is the Apache open-source project analysis dashboard of
§3 (Figs. 3–16); ``IPL_PROCESSING_FLOW`` and ``IPL_CONSUMPTION_FLOW`` are
the tweet-analysis flow-file group of §3.7 and Appendix A, reproduced
nearly verbatim (one fix: the appendix projects a ``state`` column out of
``players_tweets``, which that object never has — we drop that line).

Examples, tests and benchmarks all run these texts through the real
parser, so they double as end-to-end fixtures for the DSL.
'''

APACHE_FLOW = """
# Apache Open Source Project Analysis (paper figs. 3-16)
D:
    svn_jira_summary: [project, year, noOfBugs, noOfCheckins, noOfEmailsTotal]
    releases: [project, year, version, release_date]
    contributors: [project, year, noOfContributors]
    project_categories: [project, technology]
    checkin_jira_emails: [project, year, total_checkins, total_jira, total_emails]
    release_counts: [project, year, total_releases]
    project_activity: [project, year, total_checkins, total_jira,
        total_emails, total_releases, noOfContributors, technology, total_wt]

F:
    D.checkin_jira_emails: D.svn_jira_summary | T.get_svn_jira_count
    D.release_counts: D.releases | T.count_releases
    D.activity_joined: (D.checkin_jira_emails, D.release_counts)
        | T.join_releases
    D.activity_contrib: (D.activity_joined, D.contributors)
        | T.join_contributors
    D.project_activity: (D.activity_contrib, D.project_categories)
        | T.join_category | T.compute_activity
    D.project_activity:
        endpoint: true
        publish: project_chatter

T:
    get_svn_jira_count:
        type: groupby
        groupby: [project, year]
        aggregates:
            - operator: sum
              apply_on: noOfCheckins
              out_field: total_checkins
            - operator: sum
              apply_on: noOfBugs
              out_field: total_jira
            - operator: sum
              apply_on: noOfEmailsTotal
              out_field: total_emails
    count_releases:
        type: groupby
        groupby: [project, year]
        aggregates:
            - operator: count
              out_field: total_releases
    join_releases:
        type: join
        left: checkin_jira_emails by project, year
        right: release_counts by project, year
        join_condition: left outer
    join_contributors:
        type: join
        left: activity_joined by project, year
        right: contributors by project, year
        join_condition: left outer
    join_category:
        type: join
        left: activity_contrib by project
        right: project_categories by project
        join_condition: left outer
    compute_activity:
        type: add_column
        expression: 0.35 * total_checkins + 0.25 * total_jira + 0.2 * coalesce(total_releases, 0) * 50 + 0.2 * coalesce(noOfContributors, 0) * 10
        output: total_wt
    filter_by_year:
        type: filter_by
        filter_by: [year]
        filter_source: W.year_slider
    filter_projects:
        type: filter_by
        filter_by: [project]
        filter_source: W.project_category_bubble
        filter_val: [text]
    aggregate_project_bubbles:
        type: groupby
        groupby: [project, technology]
        aggregates:
            - operator: sum
              apply_on: total_wt
              out_field: total_wt
    aggregate_details:
        type: groupby
        groupby: [project]
        aggregates:
            - operator: sum
              apply_on: total_checkins
              out_field: total_checkins
            - operator: sum
              apply_on: total_jira
              out_field: total_jira
            - operator: sum
              apply_on: total_emails
              out_field: total_emails
            - operator: sum
              apply_on: total_releases
              out_field: total_releases

W:
    year_slider:
        type: Slider
        source: [2010, 2014]
        static: true
        range: true
        slider_type: year
    project_category_bubble:
        type: BubbleChart
        source: D.project_activity | T.filter_by_year
            | T.aggregate_project_bubbles
        text: project
        size: total_wt
        legend_text: technology
        default_selection: true
        default_selection_key: text
        default_selection_value: 'pig'
        legend:
            show_legends: true
    project_details:
        type: HTML
        tag: section
        source: D.project_activity | T.filter_by_year
            | T.filter_projects | T.aggregate_details
    project_grid:
        type: DataGrid
        source: D.project_activity | T.filter_by_year
        page_size: 25

L:
    description: Apache Project Analysis
    rows:
    - [span12: W.year_slider]
    - [span5: W.project_category_bubble, span7: W.project_details]
    - [span12: W.project_grid]
"""


IPL_PROCESSING_FLOW = """
# IPL tweet analysis - data processing dashboard (paper Appendix A.1)
D:
    ipltweets: [
        postedTime => created_at,
        body => text,
        displayName => user.location
    ]
    players_tweets: [date, player, count]
    teams_tweets: [date, team, count]
    dim_teams: [
        team_number, team, team_fullName,
        sort_order, color, noOfTweets
    ]
    team_players: [player, team_fullName, team, player_id, noOfTweets]
    lat_long: [state, point_one, point_two, point_three]
    player_tweets: [player, team, date, player_id, team_fullName, noOfTweets]
    team_tweets: [sort_order, date, color, team, team_fullName, noOfTweets]
    tm_rgn_raw_cnt: [date, team, state, count]
    tm_rgn_tm_dtls: [sort_order, noOfTweets, color, state, team, date, team_fullName]
    team_region_tweets: [
        point_one, point_two, point_three, state,
        team_fullName, team, color, sort_order, date, noOfTweets
    ]
    tagcloud_tweets_raw: [date, word, count]
    tagcloud_tweets: [date, word, count]

D.ipltweets:
    source: ipl_tweets.json
    format: json

F:
    D.players_tweets: D.ipltweets |
        T.players_pipeline |
        T.players_count
    D.player_tweets: (
        D.players_tweets,
        D.team_players
    ) | T.join_player_team
    D.teams_tweets: D.ipltweets |
        T.teams_pipeline |
        T.teams_count
    D.team_tweets: (
        D.teams_tweets,
        D.dim_teams
    ) | T.join_dim_teams
    D.tm_rgn_raw_cnt: D.ipltweets |
        T.teams_pipeline_region |
        T.teams_regions_count
    D.tm_rgn_tm_dtls: (
        D.tm_rgn_raw_cnt,
        D.dim_teams
    ) | T.join_dim_teams_two
    D.team_region_tweets: (
        D.tm_rgn_tm_dtls,
        D.lat_long
    ) | T.join_lat_long
    D.tagcloud_tweets_raw: D.ipltweets |
        T.word_date_extraction |
        T.words_count
    D.tagcloud_tweets: D.tagcloud_tweets_raw |
        T.topwords

    D.players_tweets:
        endpoint: true
        publish: players_tweets
    D.player_tweets:
        endpoint: true
        publish: player_tweets
    D.team_tweets:
        endpoint: true
        publish: team_tweets
    D.team_region_tweets:
        endpoint: true
        publish: team_region_tweets
    D.tagcloud_tweets:
        endpoint: true
        publish: tagcloud_tweets
    D.dim_teams:
        endpoint: true
        publish: dim_teams

T:
    players_pipeline:
        parallel: [
            T.norm_ipldate,
            T.extract_players
        ]
    teams_pipeline:
        parallel: [
            T.norm_ipldate,
            T.extract_teams
        ]
    teams_pipeline_region:
        parallel: [
            T.norm_ipldate,
            T.extract_location,
            T.extract_teams
        ]
    word_date_extraction:
        parallel: [
            T.norm_ipldate,
            T.extract_words
        ]
    norm_ipldate:
        type: map
        operator: date
        transform: postedTime
        input_format: 'E MMM dd HH:mm:ss Z yyyy'
        output_format: yyyy-MM-dd
        output: date
    extract_players:
        type: map
        operator: extract
        transform: body
        dict: players.txt
        output: player
    extract_teams:
        type: map
        operator: extract
        transform: body
        dict: teams.csv
        output: team
    extract_location:
        type: map
        operator: extract_location
        transform: displayName
        match: city
        country: IND
        output: state
    extract_words:
        type: map
        operator: extract_words
        transform: body
        output: word
    join_player_team:
        type: join
        left: players_tweets by player
        right: team_players by player
        join_condition: left outer
        project:
            players_tweets_date: date
            players_tweets_player: player
            players_tweets_count: noOfTweets
            team_players_team: team
            team_players_team_fullName: team_fullName
            team_players_player_id: player_id
    join_dim_teams:
        type: join
        left: teams_tweets by team
        right: dim_teams by team_fullName
        join_condition: left outer
        project:
            teams_tweets_date: date
            teams_tweets_team: team_fullName
            teams_tweets_count: noOfTweets
            dim_teams_team: team
            dim_teams_sort_order: sort_order
            dim_teams_color: color
    join_dim_teams_two:
        type: join
        left: tm_rgn_raw_cnt by team
        right: dim_teams by team_fullName
        join_condition: left outer
        project:
            tm_rgn_raw_cnt_date: date
            tm_rgn_raw_cnt_team: team_fullName
            tm_rgn_raw_cnt_state: state
            tm_rgn_raw_cnt_count: noOfTweets
            dim_teams_team: team
            dim_teams_sort_order: sort_order
            dim_teams_color: color
    join_lat_long:
        type: join
        left: tm_rgn_tm_dtls by state
        right: lat_long by state
        join_condition: LEFT OUTER
        project:
            tm_rgn_tm_dtls_team_fullName: team_fullName
            tm_rgn_tm_dtls_state: state
            tm_rgn_tm_dtls_date: date
            tm_rgn_tm_dtls_noOfTweets: noOfTweets
            tm_rgn_tm_dtls_team: team
            tm_rgn_tm_dtls_sort_order: sort_order
            tm_rgn_tm_dtls_color: color
            lat_long_point_one: point_one
            lat_long_point_two: point_two
            lat_long_point_three: point_three
    players_count:
        type: groupby
        groupby: [date, player]
    teams_count:
        type: groupby
        groupby: [date, team]
    teams_regions_count:
        type: groupby
        groupby: [date, team, state]
    words_count:
        type: groupby
        groupby: [date, word]
    topwords:
        type: topn
        groupby: [date]
        orderby_column: [count DESC]
        limit: 20
"""


IPL_CONSUMPTION_FLOW = """
# IPL tweet analysis - consumption dashboard (paper Appendix A.2)
# All data objects used by widgets here were published (with identical
# names) and end-pointed by the processing dashboard.
L:
    description: Clash of Titans
    rows:
    - [span12: W.teams]
    - [span11: W.ipl_duration]
    - [span11: W.relativeteamtweets]
    - [span6: W.word_team_player_tweets, span5: W.regiontweets]

W:
    ipl_duration:
        type: Slider
        source: ['2013-05-02', '2013-05-27']
        static: true
        range: true
        slider_type: date
    relativeteamtweets:
        type: Streamgraph
        source: D.team_tweets |
            T.filter_by_date |
            T.filter_by_team
        x: date
        y: noOfTweets
        color: color
        serie: team
        xAxis:
            type: 'datetime'
        yAxis:
            allowDecimals: false
            min: 0
            max: 25000
    teams:
        type: List
        source: D.dim_teams
        text: team
        image_position: right
    playertweets:
        type: WordCloud
        source: D.player_tweets |
            T.drop_unknown_players |
            T.filter_by_date |
            T.filter_by_team |
            T.aggregate_by_player
        text: player
        size: noOfTweets
        show_tooltip: true
        tooltip_text: [player, noOfTweets]
    teamtweets:
        type: WordCloud
        source: D.team_tweets |
            T.filter_by_date |
            T.aggregate_by_team
        text: team
        size: noOfTweets
        show_tooltip: true
        tooltip_text: [team, noOfTweets]
    wordtweets:
        type: WordCloud
        source: D.tagcloud_tweets |
            T.filter_by_date |
            T.aggregate_by_word
        text: word
        size: count
        show_tooltip: true
        tooltip_text: [word, count]
    regiontweets:
        type: MapMarker
        source: D.team_region_tweets |
            T.filter_by_date |
            T.filter_by_team |
            T.aggregate_by_team_region
        country: IND
        markers:
        - marker1:
            type: circle_marker
            latlong_value: point_one
            markersize: noOfTweets
            fill_color: color
            tooltip_text: [state, team, noOfTweets]
    teamtweetstab:
        type: Layout
        rows:
        - [span11: W.teamtweets]
    playertweetstab:
        type: Layout
        rows:
        - [span11: W.playertweets]
    wordtweetstab:
        type: Layout
        rows:
        - [span11: W.wordtweets]
    word_team_player_tweets:
        type: TabLayout
        tabs:
        - name: 'Player'
          body: W.playertweetstab
        - name: 'Word'
          body: W.wordtweetstab
        - name: 'Team'
          body: W.teamtweetstab

T:
    drop_unknown_players:
        type: filter_by
        filter_expression: not isnull(player)
    aggregate_by_player:
        type: groupby
        groupby: [player]
        aggregates:
            - operator: sum
              apply_on: noOfTweets
              out_field: noOfTweets
    aggregate_by_team:
        type: groupby
        groupby: [team]
        aggregates:
            - operator: sum
              apply_on: noOfTweets
              out_field: noOfTweets
    aggregate_by_word:
        type: groupby
        groupby: [word]
        aggregates:
            - operator: sum
              apply_on: count
              out_field: count
        orderby_aggregates: true
    filter_by_date:
        type: filter_by
        filter_by: [date]
        filter_source: W.ipl_duration
    filter_by_team:
        type: filter_by
        filter_by: [team]
        filter_source: W.teams
        filter_val: [text]
    aggregate_by_team_region:
        type: groupby
        groupby: [team, point_one, state, color]
        aggregates:
            - operator: sum
              apply_on: noOfTweets
              out_field: noOfTweets
"""
