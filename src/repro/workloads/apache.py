"""Synthetic Apache open-source project workload (paper §3, Figs. 3–16).

The Apache activity dashboard computes a weighted project-activity index
from check-ins, bug issues, contributors and releases, with a
StackOverflow traffic feed on the side.  These generators produce the
four raw feeds with realistic skew (big projects dominate) so the
dashboard's relative comparisons are meaningful.
"""

from __future__ import annotations

import random

from repro.data import Schema, Table

#: (project, technology category, relative activity weight)
PROJECTS: list[tuple[str, str, float]] = [
    ("hadoop", "big data", 3.0),
    ("spark", "big data", 2.8),
    ("pig", "big data", 1.4),
    ("hive", "big data", 2.0),
    ("hbase", "big data", 1.8),
    ("kafka", "streaming", 2.4),
    ("storm", "streaming", 1.2),
    ("flume", "streaming", 0.8),
    ("cassandra", "database", 2.2),
    ("couchdb", "database", 0.9),
    ("derby", "database", 0.5),
    ("lucene", "search", 1.9),
    ("solr", "search", 1.6),
    ("tomcat", "web", 2.1),
    ("httpd", "web", 1.7),
    ("struts", "web", 0.7),
    ("maven", "build", 1.5),
    ("ant", "build", 0.6),
    ("camel", "integration", 1.3),
    ("activemq", "integration", 1.0),
]

YEARS = (2010, 2011, 2012, 2013, 2014)


def svn_jira_summary_table(seed: int = 11) -> Table:
    """Per-project-per-year check-in / bug / email counts (Fig. 8)."""
    rng = random.Random(seed)
    schema = Schema.of(
        "project", "year", "noOfBugs", "noOfCheckins", "noOfEmailsTotal"
    )
    rows = []
    for project, _category, weight in PROJECTS:
        for year in YEARS:
            growth = 1.0 + 0.15 * (year - YEARS[0])
            base = weight * growth
            rows.append(
                {
                    "project": project,
                    "year": year,
                    "noOfBugs": int(base * rng.uniform(40, 90)),
                    "noOfCheckins": int(base * rng.uniform(300, 700)),
                    "noOfEmailsTotal": int(base * rng.uniform(800, 1500)),
                }
            )
    return Table.from_rows(schema, rows)


def stack_summary_table(seed: int = 12) -> Table:
    """StackOverflow traffic per project (Figs. 4, 5)."""
    rng = random.Random(seed)
    schema = Schema.of("project", "question", "answer", "tags")
    rows = []
    for project, category, weight in PROJECTS:
        questions = int(weight * rng.uniform(500, 1200))
        rows.append(
            {
                "project": project,
                "question": questions,
                "answer": int(questions * rng.uniform(0.55, 0.95)),
                "tags": f"{project},{category}",
            }
        )
    return Table.from_rows(schema, rows)


def releases_table(seed: int = 13) -> Table:
    """Release history per project."""
    rng = random.Random(seed)
    schema = Schema.of("project", "year", "version", "release_date")
    rows = []
    for project, _category, weight in PROJECTS:
        for year in YEARS:
            for minor in range(max(1, int(weight * rng.uniform(0.8, 2.2)))):
                rows.append(
                    {
                        "project": project,
                        "year": year,
                        "version": f"{year - 2009}.{minor}",
                        "release_date": (
                            f"{year}-{rng.randint(1, 12):02d}-"
                            f"{rng.randint(1, 28):02d}"
                        ),
                    }
                )
    return Table.from_rows(schema, rows)


def contributors_table(seed: int = 14) -> Table:
    """Contributor counts per project-year."""
    rng = random.Random(seed)
    schema = Schema.of("project", "year", "noOfContributors")
    rows = []
    for project, _category, weight in PROJECTS:
        for year in YEARS:
            rows.append(
                {
                    "project": project,
                    "year": year,
                    "noOfContributors": int(weight * rng.uniform(15, 60)),
                }
            )
    return Table.from_rows(schema, rows)


def project_categories_table() -> Table:
    """Project → technology category dimension (the bubble legend)."""
    schema = Schema.of("project", "technology")
    rows = [
        {"project": project, "technology": category}
        for project, category, _weight in PROJECTS
    ]
    return Table.from_rows(schema, rows)


def all_tables(seed: int = 11) -> dict[str, Table]:
    """Every raw feed keyed by its flow-file data-object name."""
    return {
        "svn_jira_summary": svn_jira_summary_table(seed),
        "stack_summary": stack_summary_table(seed + 1),
        "releases": releases_table(seed + 2),
        "contributors": contributors_table(seed + 3),
        "project_categories": project_categories_table(),
    }
