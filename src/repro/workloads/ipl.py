"""Synthetic IPL tweet workload (paper §3.7, Appendix A).

Generates Gnip-shaped tweet documents about the 2013 Indian Premier
League: ``created_at`` timestamps in the Java date format the paper's
``norm_ipldate`` task parses, tweet ``text`` mentioning players and
teams (with nicknames and abbreviations, so dictionary extraction has
real work to do), and ``user.location`` city strings for the
``extract_location`` pipeline.  All generation is seeded and
deterministic.
"""

from __future__ import annotations

import datetime as _dt
import json
import random
from typing import Any

from repro.data import Schema, Table

#: (team key, full name, color, sort order)
TEAMS: list[tuple[str, str, str, int]] = [
    ("CSK", "Chennai Super Kings", "#f9cd05", 1),
    ("MI", "Mumbai Indians", "#004ba0", 2),
    ("RCB", "Royal Challengers Bangalore", "#d1171b", 3),
    ("KKR", "Kolkata Knight Riders", "#3a225d", 4),
    ("RR", "Rajasthan Royals", "#e4427d", 5),
    ("SRH", "Sunrisers Hyderabad", "#ff822a", 6),
    ("KXIP", "Kings XI Punjab", "#aa4545", 7),
    ("DD", "Delhi Daredevils", "#17479e", 8),
    ("PWI", "Pune Warriors India", "#2f9be3", 9),
]

#: team key -> informal surface forms used in tweet text
TEAM_NICKNAMES: dict[str, list[str]] = {
    "CSK": ["csk", "super kings", "chennai"],
    "MI": ["mumbai indians", "mumbai"],
    "RCB": ["rcb", "bangalore"],
    "KKR": ["kkr", "knight riders", "kolkata"],
    "RR": ["royals", "rajasthan"],
    "SRH": ["sunrisers", "hyderabad"],
    "KXIP": ["kings xi", "punjab"],
    "DD": ["daredevils", "delhi"],
    "PWI": ["pune warriors", "pune"],
}

#: (canonical player, team key, surface forms)
PLAYERS: list[tuple[str, str, list[str]]] = [
    ("MS Dhoni", "CSK", ["dhoni", "msd", "mahi"]),
    ("Suresh Raina", "CSK", ["raina"]),
    ("Ravindra Jadeja", "CSK", ["jadeja", "sir jadeja"]),
    ("Rohit Sharma", "MI", ["rohit", "hitman"]),
    ("Sachin Tendulkar", "MI", ["sachin", "tendulkar", "master blaster"]),
    ("Kieron Pollard", "MI", ["pollard"]),
    ("Lasith Malinga", "MI", ["malinga"]),
    ("Virat Kohli", "RCB", ["kohli", "virat"]),
    ("Chris Gayle", "RCB", ["gayle", "universe boss"]),
    ("AB de Villiers", "RCB", ["abd", "de villiers"]),
    ("Gautam Gambhir", "KKR", ["gambhir", "gauti"]),
    ("Sunil Narine", "KKR", ["narine"]),
    ("Shane Watson", "RR", ["watson", "watto"]),
    ("Rahul Dravid", "RR", ["dravid", "the wall"]),
    ("Shikhar Dhawan", "SRH", ["dhawan", "gabbar"]),
    ("Dale Steyn", "SRH", ["steyn"]),
    ("David Miller", "KXIP", ["miller", "killer miller"]),
    ("Adam Gilchrist", "KXIP", ["gilchrist", "gilly"]),
    ("Virender Sehwag", "DD", ["sehwag", "viru"]),
    ("David Warner", "DD", ["warner"]),
    ("Ross Taylor", "PWI", ["taylor"]),
    ("Yuvraj Singh", "PWI", ["yuvraj", "yuvi"]),
]

#: city -> (state, "lat,long") for user locations
CITIES: dict[str, tuple[str, str]] = {
    "Mumbai": ("Maharashtra", "19.07,72.87"),
    "Pune": ("Maharashtra", "18.52,73.85"),
    "Delhi": ("Delhi", "28.61,77.20"),
    "Kolkata": ("West Bengal", "22.57,88.36"),
    "Chennai": ("Tamil Nadu", "13.08,80.27"),
    "Bangalore": ("Karnataka", "12.97,77.59"),
    "Hyderabad": ("Telangana", "17.38,78.48"),
    "Jaipur": ("Rajasthan", "26.91,75.78"),
    "Mohali": ("Punjab", "30.70,76.72"),
    "Ahmedabad": ("Gujarat", "23.02,72.57"),
    "Lucknow": ("Uttar Pradesh", "26.84,80.94"),
    "Indore": ("Madhya Pradesh", "22.71,75.85"),
}

_TEMPLATES = [
    "What a knock by {player}! {team} on fire tonight #ipl",
    "{player} is in unreal form, {team} will take this",
    "Can {team} chase this down? All eyes on {player} #ipl2013",
    "{player} departs. Huge wicket for the bowlers! {team} wobbling",
    "Six! {player} sends it into the stands, {team} cruising",
    "Brilliant over. {team} pulling it back against all odds",
    "{player} and that cover drive. Poetry. #ipl {team}",
    "Rain delay in the {team} game, hope we get a full match",
]

SEASON_START = _dt.date(2013, 5, 2)
SEASON_END = _dt.date(2013, 5, 27)


def generate_tweets(
    count: int = 2000, seed: int = 7
) -> list[dict[str, Any]]:
    """Generate ``count`` Gnip-shaped tweet documents."""
    rng = random.Random(seed)
    days = (SEASON_END - SEASON_START).days
    city_names = list(CITIES)
    # Skewed team popularity: earlier teams tweet more (gives the
    # streamgraph its shape and the map its distinct winners).
    team_weights = [len(TEAMS) - i for i in range(len(TEAMS))]
    documents = []
    for _ in range(count):
        team_key, team_full, _color, _order = rng.choices(
            TEAMS, weights=team_weights
        )[0]
        team_players = [p for p in PLAYERS if p[1] == team_key]
        player, _team, surfaces = rng.choice(team_players or PLAYERS)
        player_surface = rng.choice(surfaces + [player])
        team_surface = rng.choice(
            TEAM_NICKNAMES[team_key] + [team_full]
        )
        text = rng.choice(_TEMPLATES).format(
            player=player_surface, team=team_surface
        )
        day = SEASON_START + _dt.timedelta(days=rng.randint(0, days))
        moment = _dt.datetime(
            day.year, day.month, day.day,
            rng.randint(14, 23), rng.randint(0, 59), rng.randint(0, 59),
            tzinfo=_dt.timezone.utc,
        )
        created_at = moment.strftime("%a %b %d %H:%M:%S %z %Y")
        city = rng.choice(city_names)
        # ~12% of locations are junk, exercising cleansing (§5.2 obs. 4).
        location = (
            rng.choice(["somewhere", "", "the moon", "cricket land"])
            if rng.random() < 0.12
            else f"{city}, India"
        )
        documents.append(
            {
                "created_at": created_at,
                "text": text,
                "user": {"location": location},
            }
        )
    return documents


def tweets_json(count: int = 2000, seed: int = 7) -> bytes:
    """The tweet corpus as a JSON array payload."""
    return json.dumps(generate_tweets(count, seed)).encode("utf-8")


# ---------------------------------------------------------------------------
# dictionaries (players.txt, teams.csv in the paper's listings)
# ---------------------------------------------------------------------------


def players_dictionary() -> dict[str, str]:
    """Surface form → canonical player name."""
    mapping: dict[str, str] = {}
    for player, _team, surfaces in PLAYERS:
        mapping[player.lower()] = player
        for surface in surfaces:
            mapping[surface.lower()] = player
    return mapping


def teams_dictionary() -> dict[str, str]:
    """Surface form → full team name."""
    mapping: dict[str, str] = {}
    for key, full, _color, _order in TEAMS:
        mapping[full.lower()] = full
        mapping[key.lower()] = full
        for nickname in TEAM_NICKNAMES[key]:
            mapping[nickname.lower()] = full
    return mapping


def players_txt() -> bytes:
    lines = [
        f"{surface},{canonical}"
        for surface, canonical in sorted(players_dictionary().items())
    ]
    return "\n".join(lines).encode("utf-8")


def teams_csv() -> bytes:
    lines = [
        f"{surface},{canonical}"
        for surface, canonical in sorted(teams_dictionary().items())
    ]
    return "\n".join(lines).encode("utf-8")


# ---------------------------------------------------------------------------
# dimension tables (Appendix A.1's dim_teams, team_players, lat_long)
# ---------------------------------------------------------------------------


def dim_teams_table() -> Table:
    schema = Schema.of(
        "team_number", "team", "team_fullName", "sort_order", "color",
        "noOfTweets",
    )
    rows = [
        {
            "team_number": order,
            "team": key,
            "team_fullName": full,
            "sort_order": order,
            "color": color,
            "noOfTweets": 0,
        }
        for key, full, color, order in TEAMS
    ]
    return Table.from_rows(schema, rows)


def team_players_table() -> Table:
    schema = Schema.of(
        "player", "team_fullName", "team", "player_id", "noOfTweets"
    )
    full_by_key = {key: full for key, full, _c, _o in TEAMS}
    rows = [
        {
            "player": player,
            "team_fullName": full_by_key[team_key],
            "team": team_key,
            "player_id": i + 1,
            "noOfTweets": 0,
        }
        for i, (player, team_key, _surfaces) in enumerate(PLAYERS)
    ]
    return Table.from_rows(schema, rows)


def lat_long_table() -> Table:
    schema = Schema.of("state", "point_one", "point_two", "point_three")
    by_state: dict[str, list[str]] = {}
    for _city, (state, point) in CITIES.items():
        by_state.setdefault(state, []).append(point)
    rows = []
    for state, points in sorted(by_state.items()):
        padded = (points + [points[0]] * 3)[:3]
        rows.append(
            {
                "state": state,
                "point_one": padded[0],
                "point_two": padded[1],
                "point_three": padded[2],
            }
        )
    return Table.from_rows(schema, rows)


def dictionaries() -> dict[str, dict[str, str]]:
    """Both dictionaries keyed by the filenames the flow files use."""
    return {
        "players.txt": players_dictionary(),
        "teams.csv": teams_dictionary(),
    }
