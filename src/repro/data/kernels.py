"""Vectorized columnar kernels for the interactive query path.

The cube and ``/ds/`` verbs (filter, group-by, sort, project, limit) are
the platform's hot path: every widget gesture and every ad-hoc REST query
runs them against an endpoint payload.  The generic implementations walk
row dicts (``Table.rows`` materializes one ``dict`` per row and calls a
Python lambda on each); the kernels here operate **directly on column
lists** — one tight loop per column, no per-row dict, no per-row lambda
frame — which is what "vectorized" means in a pure-stdlib engine.

Every kernel is semantics-preserving: for any input, the fast path
returns row-for-row exactly what the row-at-a-time path returns
(``tests/property/test_prop_kernels.py`` generates mixed-type, ``None``-
laden and empty tables to prove it).  Odd comparisons (``None``, mixed
``int``/``str`` cells) defer to the same helpers the slow paths use.

Contents:

* :class:`ColumnarPredicate` and friends — predicates that evaluate
  column-at-a-time via :meth:`ColumnarPredicate.indices` but remain
  row-callables, so ``Table.filter_rows`` can transparently take the
  fast path when handed one;
* :func:`compile_expression_predicate` — compiles the simple expression
  shapes (``col <op> literal``, ``col in [..]``, conjunctions) that
  dominate flow files into columnar predicates;
* :func:`argsort` — the stable multi-key argsort behind
  ``Table.sorted_by`` (with the snapshot-per-pass fix for the
  mixed-type fallback);
* :func:`top_n_indices` — heap-based fused ``orderby``+``limit``;
* :func:`group_indices` — single-pass hash group-by partitioning;
* :func:`distinct_indices` — first row per distinct key (backs
  ``Table.distinct``).

Kernels additionally dispatch on the typed encodings of
:mod:`repro.data.encodings` when a key column (or the predicate's
table) carries one: sorts rank the dictionary once and compare int
codes thereafter, group-by buckets by code through a dense list,
predicates evaluate once per *unique* value and map the verdict over
the code array.  Every encoded path is row-for-row identical to its
boxed twin (``tests/property/test_prop_encodings.py``).
"""

from __future__ import annotations

import heapq
import operator
from typing import Any, Callable, Mapping, Sequence

from repro.data.encodings import DictColumn, FloatColumn, IntColumn
from repro.data.expressions import (
    Binary,
    ColumnRef,
    Expression,
    ListLiteral,
    Literal,
    Unary,
    _compare,
)

_ORDERING_OPS: dict[str, Callable[[Any, Any], bool]] = {
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


# ---------------------------------------------------------------------------
# columnar predicates
# ---------------------------------------------------------------------------


def _dict_column(table: Any, name: str) -> DictColumn | None:
    """``name``'s dictionary encoding on ``table``, if it has one.

    Predicates accept any object with a ``column`` method, so the
    encoding lookup is equally duck-typed.
    """
    get = getattr(table, "encoded_column", None)
    if get is None:
        return None
    column = get(name)
    return column if type(column) is DictColumn else None


def _map_codes(column: DictColumn, hits: list[bool]) -> list[int]:
    """Row indices whose code's per-unique verdict is true.

    ``hits`` has one entry per unique value plus the verdict for
    ``None`` appended last — which is exactly what code ``-1`` indexes.
    """
    return [i for i, c in enumerate(column.codes) if hits[c]]


class ColumnarPredicate:
    """A row predicate that can also evaluate column-at-a-time.

    Instances are callables over row dicts (so any consumer of
    ``Table.filter_rows`` keeps working), but ``Table.filter_rows``
    recognizes the type and calls :meth:`indices` instead, skipping row
    materialization entirely.
    """

    def indices(self, table: Any) -> list[int]:
        """Indices of rows the predicate keeps, in row order."""
        raise NotImplementedError

    def __call__(self, row: Mapping[str, Any]) -> bool:
        raise NotImplementedError


class ComparePredicate(ColumnarPredicate):
    """``column <op> operand`` with the expression language's comparison
    semantics (``None`` orders false, mixed types retry numerically)."""

    def __init__(self, column: str, op: str, operand: Any):
        self.column = column
        self.op = op
        self.operand = operand

    def indices(self, table: Any) -> list[int]:
        encoded = _dict_column(table, self.column)
        if encoded is not None:
            return self._dict_indices(encoded)
        values = table.column(self.column)
        operand = self.operand
        if self.op == "==":
            return [i for i, v in enumerate(values) if v == operand]
        if self.op == "!=":
            return [i for i, v in enumerate(values) if v != operand]
        cmp = _ORDERING_OPS[self.op]
        if operand is None:
            return []
        out: list[int] = []
        append = out.append
        try:
            # Homogeneous fast loop; falls back the moment a cell
            # refuses to compare (mixed-type payloads are the exception,
            # not the rule).
            for i, v in enumerate(values):
                if v is not None and cmp(v, operand):
                    append(i)
            return out
        except TypeError:
            pass
        return [
            i
            for i, v in enumerate(values)
            if _compare(self.op, v, operand)
        ]

    def _dict_indices(self, column: DictColumn) -> list[int]:
        """Evaluate once per unique value, then map over the codes.

        Mirrors the boxed loops verdict-for-verdict: ``==``/``!=``
        apply Python equality (``None`` cells included), ordering ops
        skip ``None`` and retry the whole column through ``_compare``
        if any unique refuses to compare — the same all-or-nothing
        fallback the boxed path takes.
        """
        uniques = column.values
        operand = self.operand
        op = self.op
        if op == "==":
            hits = [v == operand for v in uniques]
            hits.append(None == operand)  # noqa: E711 - mirrors boxed `v == operand`
        elif op == "!=":
            hits = [v != operand for v in uniques]
            hits.append(None != operand)  # noqa: E711
        else:
            if operand is None:
                return []
            cmp = _ORDERING_OPS[op]
            try:
                hits = [cmp(v, operand) for v in uniques]
                hits.append(False)  # None never orders
            except TypeError:
                hits = [_compare(op, v, operand) for v in uniques]
                hits.append(_compare(op, None, operand))
        return _map_codes(column, hits)

    def __call__(self, row: Mapping[str, Any]) -> bool:
        return _compare(self.op, row[self.column], self.operand)


class MembershipPredicate(ColumnarPredicate):
    """``column in allowed`` (widget value selections, ``in`` filters)."""

    def __init__(self, column: str, allowed: Sequence[Any]):
        self.column = column
        self.allowed = list(allowed)
        try:
            self._lookup: Any = set(self.allowed)
        except TypeError:
            # Unhashable selection values: linear membership.
            self._lookup = self.allowed

    def indices(self, table: Any) -> list[int]:
        encoded = _dict_column(table, self.column)
        if encoded is not None:
            hits = []
            for v in encoded.values + [None]:
                try:
                    hits.append(v in self._lookup)
                except TypeError:
                    hits.append(v in self.allowed)
            return _map_codes(encoded, hits)
        lookup = self._lookup
        out: list[int] = []
        append = out.append
        for i, v in enumerate(table.column(self.column)):
            try:
                hit = v in lookup
            except TypeError:
                hit = v in self.allowed
            if hit:
                append(i)
        return out

    def __call__(self, row: Mapping[str, Any]) -> bool:
        v = row[self.column]
        try:
            return v in self._lookup
        except TypeError:
            return v in self.allowed


class RangePredicate(ColumnarPredicate):
    """``lo <= column <= hi`` with the widget slider's semantics:
    ``None`` cells never match, incomparable cells compare as strings."""

    def __init__(self, column: str, lo: Any, hi: Any):
        self.column = column
        self.lo = lo
        self.hi = hi

    def _match(self, v: Any) -> bool:
        if v is None:
            return False
        try:
            if self.lo is not None and v < self.lo:
                return False
            if self.hi is not None and v > self.hi:
                return False
        except TypeError:
            return str(self.lo) <= str(v) <= str(self.hi)
        return True

    def indices(self, table: Any) -> list[int]:
        match = self._match
        encoded = _dict_column(table, self.column)
        if encoded is not None:
            hits = [match(v) for v in encoded.values]
            hits.append(False)  # None never matches a range
            return _map_codes(encoded, hits)
        return [
            i for i, v in enumerate(table.column(self.column)) if match(v)
        ]

    def __call__(self, row: Mapping[str, Any]) -> bool:
        return self._match(row[self.column])


class ContainsPredicate(ColumnarPredicate):
    """Substring filter: keeps string cells containing ``needle``."""

    def __init__(self, column: str, needle: str):
        self.column = column
        self.needle = str(needle)

    def indices(self, table: Any) -> list[int]:
        needle = self.needle
        encoded = _dict_column(table, self.column)
        if encoded is not None:
            hits = [needle in v for v in encoded.values]
            hits.append(False)  # None is not a string
            return _map_codes(encoded, hits)
        return [
            i
            for i, v in enumerate(table.column(self.column))
            if isinstance(v, str) and needle in v
        ]

    def __call__(self, row: Mapping[str, Any]) -> bool:
        v = row[self.column]
        return isinstance(v, str) and self.needle in v


class AndPredicate(ColumnarPredicate):
    """Conjunction; later terms only run on the survivors of earlier
    ones, so selective filters short-circuit the scan."""

    def __init__(self, terms: Sequence[ColumnarPredicate]):
        self.terms = list(terms)

    def indices(self, table: Any) -> list[int]:
        if not self.terms:
            return list(range(table.num_rows))
        keep = self.terms[0].indices(table)
        for term in self.terms[1:]:
            if not keep:
                return keep
            survivors = set(term.indices(table))
            keep = [i for i in keep if i in survivors]
        return keep

    def __call__(self, row: Mapping[str, Any]) -> bool:
        return all(term(row) for term in self.terms)


def compile_expression_predicate(
    expression: Expression,
) -> ColumnarPredicate | None:
    """Compile an expression into a columnar predicate when possible.

    Handles the shapes interactive filters actually use: comparisons of
    a column against a literal (either side), ``column in [literals]``,
    and conjunctions of those.  Returns ``None`` for anything richer —
    the caller keeps the row-at-a-time path.
    """
    return _compile_node(expression.root)


_FLIPPED = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "==": "==", "!=": "!="}

_MISSING = object()


def _literal_value(node: Any) -> Any:
    """The constant a node evaluates to, or ``_MISSING``.  Folds the
    ``Unary('-', number)`` shape the parser emits for ``v > -1``."""
    if isinstance(node, Literal):
        return node.value
    if (
        isinstance(node, Unary)
        and node.op == "-"
        and isinstance(node.operand, Literal)
        and isinstance(node.operand.value, (int, float))
        and not isinstance(node.operand.value, bool)
    ):
        return -node.operand.value
    return _MISSING


def _compile_node(node: Any) -> ColumnarPredicate | None:
    if not isinstance(node, Binary):
        return None
    if node.op == "and":
        left = _compile_node(node.left)
        right = _compile_node(node.right)
        if left is None or right is None:
            return None
        return AndPredicate([left, right])
    if node.op in ("==", "!=", "<", "<=", ">", ">="):
        if isinstance(node.left, ColumnRef):
            value = _literal_value(node.right)
            if value is not _MISSING:
                return ComparePredicate(node.left.name, node.op, value)
        if isinstance(node.right, ColumnRef):
            value = _literal_value(node.left)
            if value is not _MISSING:
                return ComparePredicate(
                    node.right.name, _FLIPPED[node.op], value
                )
        return None
    if node.op == "in":
        if isinstance(node.left, ColumnRef) and isinstance(
            node.right, ListLiteral
        ):
            items = []
            for item in node.right.items:
                value = _literal_value(item)
                if value is _MISSING:
                    return None
                items.append(value)
            return MembershipPredicate(node.left.name, items)
    return None


# ---------------------------------------------------------------------------
# sorting
# ---------------------------------------------------------------------------


def _typed_key(values: Sequence[Any]) -> Callable[[int], tuple]:
    def key(i: int) -> tuple:
        v = values[i]
        if isinstance(v, bool):
            return (True, int(v))
        return (v is not None, v)

    return key


def _string_key(values: Sequence[Any]) -> Callable[[int], tuple]:
    def key(i: int) -> tuple:
        v = values[i]
        return (v is not None, str(v))

    return key


def _encoded_sort_key(column: Any) -> Callable[[int], Any] | None:
    """An int-valued sort key for an encoded column, or ``None``.

    Encoded columns are homogeneous, so the key never raises and the
    ``(v is not None, v)`` tuples of the boxed path collapse to plain
    scalars: typed arrays compare their values directly (all non-null
    when the mask is absent), dictionary columns compare dictionary
    *ranks* — the dictionary is sorted once, then every row comparison
    is an int compare.  ``None`` keeps sorting first ascending: masked
    rows key as ``(False, ...)`` tuples, null codes as rank ``-1``.
    """
    kind = type(column)
    if kind is DictColumn:
        ranks = column.sort_ranks() + [-1]  # code -1 -> rank below all
        codes = column.codes
        keyed = [ranks[c] for c in codes]
        return keyed.__getitem__
    if kind is IntColumn or kind is FloatColumn:
        arr = column.values
        nulls = column.nulls
        if nulls is None:
            return arr.__getitem__

        def key(i: int) -> tuple:
            return (not nulls[i], arr[i])

        return key
    return None


def _dict_counting_pass(
    indices: list[int], column: "DictColumn", descending: bool
) -> list[int]:
    """One stable sort pass over a dictionary column, by counting.

    Cardinality is tiny next to row count, so instead of comparing at
    all the pass scatters indices into one bucket per dictionary rank
    (nulls in bucket 0) and reads the buckets back in rank order —
    O(rows + cardinality), stable by construction.  Exactly equivalent
    to ``indices.sort(key=rank_of_row, reverse=descending)``: equal
    keys keep their incoming order either way, and ``descending``
    reverses bucket order, putting nulls last like the boxed
    ``(v is not None, v)`` key does.
    """
    ranks = column.sort_ranks()
    codes = column.codes
    cardinality = len(ranks)
    buckets: list[list[int]] = [[] for _ in range(cardinality + 1)]
    # bucket 0 holds nulls (code -1), bucket r+1 the value ranked r
    position = [r + 1 for r in ranks]
    position.append(0)
    for i in indices:
        buckets[position[codes[i]]].append(i)
    out: list[int] = []
    if descending:
        for b in range(cardinality, 0, -1):
            out.extend(buckets[b])
        out.extend(buckets[0])
        return out
    for bucket in buckets:
        out.extend(bucket)
    return out


def argsort(
    num_rows: int,
    key_columns: Sequence[Sequence[Any]],
    descending: Sequence[bool],
) -> list[int]:
    """Stable multi-key argsort over column lists or encoded columns.

    ``None`` sorts first ascending / last descending; mixed-type columns
    fall back to string comparison.  Each pass snapshots its input order
    before attempting the typed sort: ``list.sort`` may leave the list
    partially reordered when a comparison raises mid-flight, and sorting
    that wreckage would silently destroy the stability established by
    earlier (less significant) key passes.  (Encoded passes can't raise
    and skip the snapshot.)
    """
    indices = list(range(num_rows))
    for values, desc in reversed(list(zip(key_columns, descending))):
        if type(values) is DictColumn:
            indices = _dict_counting_pass(indices, values, desc)
            continue
        encoded_key = _encoded_sort_key(values)
        if encoded_key is not None:
            indices.sort(key=encoded_key, reverse=desc)
            continue
        snapshot = list(indices)
        try:
            indices.sort(key=_typed_key(values), reverse=desc)
        except TypeError:
            # Mixed types: restore the pre-pass order, then re-sort by
            # string so the fallback is still a *stable* pass.
            indices = snapshot
            indices.sort(key=_string_key(values), reverse=desc)
    return indices


def top_n_indices(
    values: Sequence[Any], descending: bool, n: int
) -> list[int]:
    """Indices of the first ``n`` rows of a stable single-key sort.

    Equivalent to ``argsort(...)[:n]`` but heap-based: O(rows · log n)
    instead of a full O(rows · log rows) sort — the fused
    ``orderby``+``limit`` kernel the ad-hoc planner emits.
    """
    count = len(values)
    if n <= 0:
        return []
    if n >= count:
        return argsort(count, [values], [descending])
    key = _encoded_sort_key(values)
    if key is not None:
        if descending:
            return heapq.nlargest(n, range(count), key=key)
        return heapq.nsmallest(n, range(count), key=key)
    key = _typed_key(values)
    try:
        # heapq.nsmallest/nlargest are documented as equivalent to
        # sorted(...)[:n] / sorted(..., reverse=True)[:n], both stable.
        if descending:
            return heapq.nlargest(n, range(count), key=key)
        return heapq.nsmallest(n, range(count), key=key)
    except TypeError:
        return argsort(count, [values], [descending])[:n]


# ---------------------------------------------------------------------------
# grouping
# ---------------------------------------------------------------------------


def _group_proxy(column: Any) -> tuple[Sequence[Any], Sequence[Any]]:
    """``(proxy, display)`` sequences for one grouping column.

    ``proxy[i]`` is the value rows are bucketed by — dictionary codes
    for a dict-encoded column (code equality *is* value equality, so
    bucket membership and first-seen order are unchanged) and the boxed
    cells otherwise.  ``display[i]`` recovers the boxed value for the
    emitted group key; for dict columns it is only touched once per
    distinct group.
    """
    kind = type(column)
    if kind is DictColumn:
        lookup = column.values + [None]
        codes = column.codes
        return codes, lambda i: lookup[codes[i]]
    if kind is IntColumn or kind is FloatColumn:
        boxed = column.boxed
        return boxed, boxed.__getitem__
    return column, column.__getitem__


def group_indices(
    key_columns: Sequence[Sequence[Any]],
) -> tuple[list[Any], list[list[int]]]:
    """Partition row indices by key, preserving first-seen group order.

    Returns ``(keys, buckets)`` where ``keys[g]`` is the g-th distinct
    key (a bare value for one key column, a tuple otherwise) and
    ``buckets[g]`` the indices of its rows.  Single-column grouping
    avoids per-row tuple construction — the dominant cost of the
    row-at-a-time loop.  A dict-encoded single column buckets by code
    through a dense list: no hashing at all on the hot loop.
    """
    keys: list[Any] = []
    buckets: list[list[int]] = []
    if len(key_columns) == 1:
        column = key_columns[0]
        if type(column) is DictColumn:
            uniques = column.values
            lookup = uniques + [None]
            by_code: list[list[int] | None] = [None] * (len(uniques) + 1)
            for i, c in enumerate(column.codes):
                bucket = by_code[c]
                if bucket is None:
                    bucket = []
                    by_code[c] = bucket
                    keys.append(lookup[c])
                    buckets.append(bucket)
                bucket.append(i)
            return keys, buckets
        if type(column) in (IntColumn, FloatColumn):
            column = column.boxed
        seen: dict[Any, list[int]] = {}
        for i, key in enumerate(column):
            bucket = seen.get(key)
            if bucket is None:
                bucket = []
                seen[key] = bucket
                keys.append(key)
                buckets.append(bucket)
            bucket.append(i)
        return keys, buckets
    proxies: list[Sequence[Any]] = []
    displays: list[Callable[[int], Any]] = []
    for column in key_columns:
        proxy, display = _group_proxy(column)
        proxies.append(proxy)
        displays.append(display)
    grouped: dict[Any, list[int]] = {}
    for i, key in enumerate(zip(*proxies)):
        bucket = grouped.get(key)
        if bucket is None:
            bucket = []
            grouped[key] = bucket
            keys.append(tuple(display(i) for display in displays))
            buckets.append(bucket)
        bucket.append(i)
    return keys, buckets


def distinct_indices(
    key_columns: Sequence[Sequence[Any]],
) -> list[int]:
    """First row index of each distinct key combination.

    The kernel behind ``Table.distinct`` — same proxy dispatch as
    :func:`group_indices` (dict columns dedupe by code) without
    building buckets.  Unhashable cells raise ``TypeError``; the
    caller falls back to its ``_hashable`` row walk.
    """
    out: list[int] = []
    seen: set = set()
    add = seen.add
    if len(key_columns) == 1:
        column = key_columns[0]
        proxy, _display = _group_proxy(column)
        for i, key in enumerate(proxy):
            if key not in seen:
                add(key)
                out.append(i)
        return out
    proxies = [_group_proxy(column)[0] for column in key_columns]
    for i, key in enumerate(zip(*proxies)):
        if key not in seen:
            add(key)
            out.append(i)
    return out
