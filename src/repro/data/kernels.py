"""Vectorized columnar kernels for the interactive query path.

The cube and ``/ds/`` verbs (filter, group-by, sort, project, limit) are
the platform's hot path: every widget gesture and every ad-hoc REST query
runs them against an endpoint payload.  The generic implementations walk
row dicts (``Table.rows`` materializes one ``dict`` per row and calls a
Python lambda on each); the kernels here operate **directly on column
lists** — one tight loop per column, no per-row dict, no per-row lambda
frame — which is what "vectorized" means in a pure-stdlib engine.

Every kernel is semantics-preserving: for any input, the fast path
returns row-for-row exactly what the row-at-a-time path returns
(``tests/property/test_prop_kernels.py`` generates mixed-type, ``None``-
laden and empty tables to prove it).  Odd comparisons (``None``, mixed
``int``/``str`` cells) defer to the same helpers the slow paths use.

Contents:

* :class:`ColumnarPredicate` and friends — predicates that evaluate
  column-at-a-time via :meth:`ColumnarPredicate.indices` but remain
  row-callables, so ``Table.filter_rows`` can transparently take the
  fast path when handed one;
* :func:`compile_expression_predicate` — compiles the simple expression
  shapes (``col <op> literal``, ``col in [..]``, conjunctions) that
  dominate flow files into columnar predicates;
* :func:`argsort` — the stable multi-key argsort behind
  ``Table.sorted_by`` (with the snapshot-per-pass fix for the
  mixed-type fallback);
* :func:`top_n_indices` — heap-based fused ``orderby``+``limit``;
* :func:`group_indices` — single-pass hash group-by partitioning.
"""

from __future__ import annotations

import heapq
import operator
from typing import Any, Callable, Mapping, Sequence

from repro.data.expressions import (
    Binary,
    ColumnRef,
    Expression,
    ListLiteral,
    Literal,
    Unary,
    _compare,
)

_ORDERING_OPS: dict[str, Callable[[Any, Any], bool]] = {
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


# ---------------------------------------------------------------------------
# columnar predicates
# ---------------------------------------------------------------------------


class ColumnarPredicate:
    """A row predicate that can also evaluate column-at-a-time.

    Instances are callables over row dicts (so any consumer of
    ``Table.filter_rows`` keeps working), but ``Table.filter_rows``
    recognizes the type and calls :meth:`indices` instead, skipping row
    materialization entirely.
    """

    def indices(self, table: Any) -> list[int]:
        """Indices of rows the predicate keeps, in row order."""
        raise NotImplementedError

    def __call__(self, row: Mapping[str, Any]) -> bool:
        raise NotImplementedError


class ComparePredicate(ColumnarPredicate):
    """``column <op> operand`` with the expression language's comparison
    semantics (``None`` orders false, mixed types retry numerically)."""

    def __init__(self, column: str, op: str, operand: Any):
        self.column = column
        self.op = op
        self.operand = operand

    def indices(self, table: Any) -> list[int]:
        values = table.column(self.column)
        operand = self.operand
        if self.op == "==":
            return [i for i, v in enumerate(values) if v == operand]
        if self.op == "!=":
            return [i for i, v in enumerate(values) if v != operand]
        cmp = _ORDERING_OPS[self.op]
        if operand is None:
            return []
        out: list[int] = []
        append = out.append
        try:
            # Homogeneous fast loop; falls back the moment a cell
            # refuses to compare (mixed-type payloads are the exception,
            # not the rule).
            for i, v in enumerate(values):
                if v is not None and cmp(v, operand):
                    append(i)
            return out
        except TypeError:
            pass
        return [
            i
            for i, v in enumerate(values)
            if _compare(self.op, v, operand)
        ]

    def __call__(self, row: Mapping[str, Any]) -> bool:
        return _compare(self.op, row[self.column], self.operand)


class MembershipPredicate(ColumnarPredicate):
    """``column in allowed`` (widget value selections, ``in`` filters)."""

    def __init__(self, column: str, allowed: Sequence[Any]):
        self.column = column
        self.allowed = list(allowed)
        try:
            self._lookup: Any = set(self.allowed)
        except TypeError:
            # Unhashable selection values: linear membership.
            self._lookup = self.allowed

    def indices(self, table: Any) -> list[int]:
        lookup = self._lookup
        out: list[int] = []
        append = out.append
        for i, v in enumerate(table.column(self.column)):
            try:
                hit = v in lookup
            except TypeError:
                hit = v in self.allowed
            if hit:
                append(i)
        return out

    def __call__(self, row: Mapping[str, Any]) -> bool:
        v = row[self.column]
        try:
            return v in self._lookup
        except TypeError:
            return v in self.allowed


class RangePredicate(ColumnarPredicate):
    """``lo <= column <= hi`` with the widget slider's semantics:
    ``None`` cells never match, incomparable cells compare as strings."""

    def __init__(self, column: str, lo: Any, hi: Any):
        self.column = column
        self.lo = lo
        self.hi = hi

    def _match(self, v: Any) -> bool:
        if v is None:
            return False
        try:
            if self.lo is not None and v < self.lo:
                return False
            if self.hi is not None and v > self.hi:
                return False
        except TypeError:
            return str(self.lo) <= str(v) <= str(self.hi)
        return True

    def indices(self, table: Any) -> list[int]:
        match = self._match
        return [
            i for i, v in enumerate(table.column(self.column)) if match(v)
        ]

    def __call__(self, row: Mapping[str, Any]) -> bool:
        return self._match(row[self.column])


class ContainsPredicate(ColumnarPredicate):
    """Substring filter: keeps string cells containing ``needle``."""

    def __init__(self, column: str, needle: str):
        self.column = column
        self.needle = str(needle)

    def indices(self, table: Any) -> list[int]:
        needle = self.needle
        return [
            i
            for i, v in enumerate(table.column(self.column))
            if isinstance(v, str) and needle in v
        ]

    def __call__(self, row: Mapping[str, Any]) -> bool:
        v = row[self.column]
        return isinstance(v, str) and self.needle in v


class AndPredicate(ColumnarPredicate):
    """Conjunction; later terms only run on the survivors of earlier
    ones, so selective filters short-circuit the scan."""

    def __init__(self, terms: Sequence[ColumnarPredicate]):
        self.terms = list(terms)

    def indices(self, table: Any) -> list[int]:
        if not self.terms:
            return list(range(table.num_rows))
        keep = self.terms[0].indices(table)
        for term in self.terms[1:]:
            if not keep:
                return keep
            survivors = set(term.indices(table))
            keep = [i for i in keep if i in survivors]
        return keep

    def __call__(self, row: Mapping[str, Any]) -> bool:
        return all(term(row) for term in self.terms)


def compile_expression_predicate(
    expression: Expression,
) -> ColumnarPredicate | None:
    """Compile an expression into a columnar predicate when possible.

    Handles the shapes interactive filters actually use: comparisons of
    a column against a literal (either side), ``column in [literals]``,
    and conjunctions of those.  Returns ``None`` for anything richer —
    the caller keeps the row-at-a-time path.
    """
    return _compile_node(expression.root)


_FLIPPED = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "==": "==", "!=": "!="}

_MISSING = object()


def _literal_value(node: Any) -> Any:
    """The constant a node evaluates to, or ``_MISSING``.  Folds the
    ``Unary('-', number)`` shape the parser emits for ``v > -1``."""
    if isinstance(node, Literal):
        return node.value
    if (
        isinstance(node, Unary)
        and node.op == "-"
        and isinstance(node.operand, Literal)
        and isinstance(node.operand.value, (int, float))
        and not isinstance(node.operand.value, bool)
    ):
        return -node.operand.value
    return _MISSING


def _compile_node(node: Any) -> ColumnarPredicate | None:
    if not isinstance(node, Binary):
        return None
    if node.op == "and":
        left = _compile_node(node.left)
        right = _compile_node(node.right)
        if left is None or right is None:
            return None
        return AndPredicate([left, right])
    if node.op in ("==", "!=", "<", "<=", ">", ">="):
        if isinstance(node.left, ColumnRef):
            value = _literal_value(node.right)
            if value is not _MISSING:
                return ComparePredicate(node.left.name, node.op, value)
        if isinstance(node.right, ColumnRef):
            value = _literal_value(node.left)
            if value is not _MISSING:
                return ComparePredicate(
                    node.right.name, _FLIPPED[node.op], value
                )
        return None
    if node.op == "in":
        if isinstance(node.left, ColumnRef) and isinstance(
            node.right, ListLiteral
        ):
            items = []
            for item in node.right.items:
                value = _literal_value(item)
                if value is _MISSING:
                    return None
                items.append(value)
            return MembershipPredicate(node.left.name, items)
    return None


# ---------------------------------------------------------------------------
# sorting
# ---------------------------------------------------------------------------


def _typed_key(values: Sequence[Any]) -> Callable[[int], tuple]:
    def key(i: int) -> tuple:
        v = values[i]
        if isinstance(v, bool):
            return (True, int(v))
        return (v is not None, v)

    return key


def _string_key(values: Sequence[Any]) -> Callable[[int], tuple]:
    def key(i: int) -> tuple:
        v = values[i]
        return (v is not None, str(v))

    return key


def argsort(
    num_rows: int,
    key_columns: Sequence[Sequence[Any]],
    descending: Sequence[bool],
) -> list[int]:
    """Stable multi-key argsort over column lists.

    ``None`` sorts first ascending / last descending; mixed-type columns
    fall back to string comparison.  Each pass snapshots its input order
    before attempting the typed sort: ``list.sort`` may leave the list
    partially reordered when a comparison raises mid-flight, and sorting
    that wreckage would silently destroy the stability established by
    earlier (less significant) key passes.
    """
    indices = list(range(num_rows))
    for values, desc in reversed(list(zip(key_columns, descending))):
        snapshot = list(indices)
        try:
            indices.sort(key=_typed_key(values), reverse=desc)
        except TypeError:
            # Mixed types: restore the pre-pass order, then re-sort by
            # string so the fallback is still a *stable* pass.
            indices = snapshot
            indices.sort(key=_string_key(values), reverse=desc)
    return indices


def top_n_indices(
    values: Sequence[Any], descending: bool, n: int
) -> list[int]:
    """Indices of the first ``n`` rows of a stable single-key sort.

    Equivalent to ``argsort(...)[:n]`` but heap-based: O(rows · log n)
    instead of a full O(rows · log rows) sort — the fused
    ``orderby``+``limit`` kernel the ad-hoc planner emits.
    """
    count = len(values)
    if n <= 0:
        return []
    if n >= count:
        return argsort(count, [values], [descending])
    key = _typed_key(values)
    try:
        # heapq.nsmallest/nlargest are documented as equivalent to
        # sorted(...)[:n] / sorted(..., reverse=True)[:n], both stable.
        if descending:
            return heapq.nlargest(n, range(count), key=key)
        return heapq.nsmallest(n, range(count), key=key)
    except TypeError:
        return argsort(count, [values], [descending])[:n]


# ---------------------------------------------------------------------------
# grouping
# ---------------------------------------------------------------------------


def group_indices(
    key_columns: Sequence[Sequence[Any]],
) -> tuple[list[Any], list[list[int]]]:
    """Partition row indices by key, preserving first-seen group order.

    Returns ``(keys, buckets)`` where ``keys[g]`` is the g-th distinct
    key (a bare value for one key column, a tuple otherwise) and
    ``buckets[g]`` the indices of its rows.  Single-column grouping
    avoids per-row tuple construction — the dominant cost of the
    row-at-a-time loop.
    """
    keys: list[Any] = []
    buckets: list[list[int]] = []
    seen: dict[Any, list[int]] = {}
    if len(key_columns) == 1:
        for i, key in enumerate(key_columns[0]):
            bucket = seen.get(key)
            if bucket is None:
                bucket = []
                seen[key] = bucket
                keys.append(key)
                buckets.append(bucket)
            bucket.append(i)
        return keys, buckets
    for i, key in enumerate(zip(*key_columns)):
        bucket = seen.get(key)
        if bucket is None:
            bucket = []
            seen[key] = bucket
            keys.append(key)
            buckets.append(bucket)
        bucket.append(i)
    return keys, buckets
