"""Expression language for task configuration.

The flow file configures tasks with small expressions over column names,
e.g. ``filter_expression: rating < 3`` (paper Fig. 7) or computed map
outputs.  This module implements that language: a tokenizer, a Pratt
parser producing a small AST, and a row-dict evaluator.

Grammar (in precedence order, loosest first)::

    expr     := or_expr
    or_expr  := and_expr ("or" and_expr)*
    and_expr := not_expr ("and" not_expr)*
    not_expr := "not" not_expr | comparison
    comparison := additive (("=="|"!="|"<"|"<="|">"|">="|"in") additive)?
    additive := multiplicative (("+"|"-") multiplicative)*
    multiplicative := unary (("*"|"/"|"%") unary)*
    unary    := "-" unary | primary
    primary  := NUMBER | STRING | "true" | "false" | "null"
              | IDENT "(" args ")" | IDENT | "(" expr ")" | "[" args "]"

Identifiers resolve to row columns at evaluation time; unknown identifiers
raise :class:`~repro.errors.ExpressionError`.  Comparisons against ``None``
are false (SQL-like three-valued logic collapsed to false), so filters never
crash on missing data — a property the dirty hackathon data sets rely on.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass
from typing import Any, Callable, Mapping

from repro.errors import ExpressionError

# ---------------------------------------------------------------------------
# Tokenizer
# ---------------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<number>\d+\.\d+|\.\d+|\d+)
  | (?P<string>'(?:[^'\\]|\\.)*'|"(?:[^"\\]|\\.)*")
  | (?P<ident>[A-Za-z_][A-Za-z0-9_.]*)
  | (?P<op><=|>=|==|!=|=|<|>|\+|-|\*|/|%|\(|\)|\[|\]|,)
    """,
    re.VERBOSE,
)

_KEYWORDS = {"and", "or", "not", "in", "true", "false", "null", "none"}


@dataclass(frozen=True)
class Token:
    kind: str  # number | string | ident | op | keyword | eof
    text: str
    position: int


def tokenize(source: str) -> list[Token]:
    """Split ``source`` into tokens, raising on unknown characters."""
    tokens: list[Token] = []
    pos = 0
    while pos < len(source):
        match = _TOKEN_RE.match(source, pos)
        if match is None:
            raise ExpressionError(
                f"unexpected character {source[pos]!r} at offset {pos} "
                f"in expression {source!r}"
            )
        kind = match.lastgroup or ""
        text = match.group()
        if kind != "ws":
            if kind == "ident" and text.lower() in _KEYWORDS:
                tokens.append(Token("keyword", text.lower(), pos))
            else:
                tokens.append(Token(kind, text, pos))
        pos = match.end()
    tokens.append(Token("eof", "", pos))
    return tokens


# ---------------------------------------------------------------------------
# AST
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Node:
    """Base expression node."""

    def references(self) -> set[str]:
        """Column names this expression reads (used by the optimizer)."""
        return set()


@dataclass(frozen=True)
class Literal(Node):
    value: Any


@dataclass(frozen=True)
class ColumnRef(Node):
    name: str

    def references(self) -> set[str]:
        return {self.name}


@dataclass(frozen=True)
class Unary(Node):
    op: str
    operand: Node

    def references(self) -> set[str]:
        return self.operand.references()


@dataclass(frozen=True)
class Binary(Node):
    op: str
    left: Node
    right: Node

    def references(self) -> set[str]:
        return self.left.references() | self.right.references()


@dataclass(frozen=True)
class Call(Node):
    name: str
    args: tuple[Node, ...]

    def references(self) -> set[str]:
        refs: set[str] = set()
        for arg in self.args:
            refs |= arg.references()
        return refs


@dataclass(frozen=True)
class ListLiteral(Node):
    items: tuple[Node, ...]

    def references(self) -> set[str]:
        refs: set[str] = set()
        for item in self.items:
            refs |= item.references()
        return refs


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------


class _Parser:
    def __init__(self, tokens: list[Token], source: str):
        self._tokens = tokens
        self._source = source
        self._pos = 0

    def _peek(self) -> Token:
        return self._tokens[self._pos]

    def _next(self) -> Token:
        token = self._tokens[self._pos]
        self._pos += 1
        return token

    def _expect(self, text: str) -> Token:
        token = self._next()
        if token.text != text:
            raise ExpressionError(
                f"expected {text!r} but found {token.text!r} "
                f"in expression {self._source!r}"
            )
        return token

    def parse(self) -> Node:
        node = self._or_expr()
        trailing = self._peek()
        if trailing.kind != "eof":
            raise ExpressionError(
                f"unexpected trailing input {trailing.text!r} "
                f"in expression {self._source!r}"
            )
        return node

    def _or_expr(self) -> Node:
        node = self._and_expr()
        while self._peek().text == "or":
            self._next()
            node = Binary("or", node, self._and_expr())
        return node

    def _and_expr(self) -> Node:
        node = self._not_expr()
        while self._peek().text == "and":
            self._next()
            node = Binary("and", node, self._not_expr())
        return node

    def _not_expr(self) -> Node:
        if self._peek().text == "not":
            self._next()
            return Unary("not", self._not_expr())
        return self._comparison()

    _COMPARATORS = {"==", "=", "!=", "<", "<=", ">", ">=", "in"}

    def _comparison(self) -> Node:
        node = self._additive()
        token = self._peek()
        if token.text in self._COMPARATORS:
            self._next()
            op = "==" if token.text == "=" else token.text
            node = Binary(op, node, self._additive())
        return node

    def _additive(self) -> Node:
        node = self._multiplicative()
        while self._peek().text in ("+", "-"):
            op = self._next().text
            node = Binary(op, node, self._multiplicative())
        return node

    def _multiplicative(self) -> Node:
        node = self._unary()
        while self._peek().text in ("*", "/", "%"):
            op = self._next().text
            node = Binary(op, node, self._unary())
        return node

    def _unary(self) -> Node:
        if self._peek().text == "-":
            self._next()
            return Unary("-", self._unary())
        return self._primary()

    def _primary(self) -> Node:
        token = self._next()
        if token.kind == "number":
            value = float(token.text) if "." in token.text else int(token.text)
            return Literal(value)
        if token.kind == "string":
            return Literal(_unquote(token.text))
        if token.kind == "keyword":
            if token.text == "true":
                return Literal(True)
            if token.text == "false":
                return Literal(False)
            if token.text in ("null", "none"):
                return Literal(None)
            raise ExpressionError(
                f"keyword {token.text!r} cannot start a value "
                f"in expression {self._source!r}"
            )
        if token.kind == "ident":
            if self._peek().text == "(":
                self._next()
                args = self._arguments(")")
                return Call(token.text.lower(), tuple(args))
            return ColumnRef(token.text)
        if token.text == "(":
            node = self._or_expr()
            self._expect(")")
            return node
        if token.text == "[":
            items = self._arguments("]")
            return ListLiteral(tuple(items))
        raise ExpressionError(
            f"unexpected token {token.text!r} in expression {self._source!r}"
        )

    def _arguments(self, closer: str) -> list[Node]:
        args: list[Node] = []
        if self._peek().text == closer:
            self._next()
            return args
        while True:
            args.append(self._or_expr())
            token = self._next()
            if token.text == closer:
                return args
            if token.text != ",":
                raise ExpressionError(
                    f"expected ',' or {closer!r} but found {token.text!r} "
                    f"in expression {self._source!r}"
                )


def _unquote(text: str) -> str:
    body = text[1:-1]
    return body.replace("\\'", "'").replace('\\"', '"').replace("\\\\", "\\")


# ---------------------------------------------------------------------------
# Evaluation
# ---------------------------------------------------------------------------


def _fn_coalesce(*args: Any) -> Any:
    for arg in args:
        if arg is not None:
            return arg
    return None


_FUNCTIONS: dict[str, Callable[..., Any]] = {
    "len": lambda v: len(v) if v is not None else 0,
    "lower": lambda v: v.lower() if isinstance(v, str) else v,
    "upper": lambda v: v.upper() if isinstance(v, str) else v,
    "strip": lambda v: v.strip() if isinstance(v, str) else v,
    "abs": lambda v: abs(v) if v is not None else None,
    "round": lambda v, n=0: round(v, int(n)) if v is not None else None,
    "floor": lambda v: math.floor(v) if v is not None else None,
    "ceil": lambda v: math.ceil(v) if v is not None else None,
    "sqrt": lambda v: math.sqrt(v) if v is not None and v >= 0 else None,
    "min": lambda *vs: min(v for v in vs if v is not None),
    "max": lambda *vs: max(v for v in vs if v is not None),
    "contains": lambda haystack, needle: (
        isinstance(haystack, str) and str(needle) in haystack
    ),
    "startswith": lambda s, prefix: (
        isinstance(s, str) and s.startswith(str(prefix))
    ),
    "endswith": lambda s, suffix: (
        isinstance(s, str) and s.endswith(str(suffix))
    ),
    "concat": lambda *vs: "".join("" if v is None else str(v) for v in vs),
    "str": lambda v: "" if v is None else str(v),
    "int": lambda v: int(float(v)) if v not in (None, "") else None,
    "float": lambda v: float(v) if v not in (None, "") else None,
    "year": lambda v: _date_part(v, 0),
    "month": lambda v: _date_part(v, 1),
    "day": lambda v: _date_part(v, 2),
    "coalesce": _fn_coalesce,
    "isnull": lambda v: v is None,
}


def _date_part(value: Any, index: int) -> int | None:
    """Extract year/month/day from an ISO ``yyyy-MM-dd...`` string or date."""
    if value is None:
        return None
    if hasattr(value, "year"):
        return (value.year, value.month, value.day)[index]
    parts = str(value).split("T")[0].split(" ")[0].split("-")
    if len(parts) <= index:
        return None
    try:
        return int(parts[index])
    except ValueError:
        return None


def _compare(op: str, left: Any, right: Any) -> bool:
    if op == "==":
        return left == right
    if op == "!=":
        return left != right
    # Ordering against None is false, not an error (three-valued logic).
    if left is None or right is None:
        return False
    try:
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
    except TypeError:
        # Mixed types (e.g. "5" < 3): compare numerically when possible.
        try:
            lnum, rnum = float(left), float(right)
        except (TypeError, ValueError):
            return False
        return _compare(op, lnum, rnum)
    raise ExpressionError(f"unknown comparator {op!r}")


def _arith(op: str, left: Any, right: Any) -> Any:
    if left is None or right is None:
        return None
    try:
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            return left / right if right != 0 else None
        if op == "%":
            return left % right if right != 0 else None
    except TypeError as exc:
        raise ExpressionError(
            f"cannot apply {op!r} to {left!r} and {right!r}"
        ) from exc
    raise ExpressionError(f"unknown operator {op!r}")


def evaluate(node: Node, row: Mapping[str, Any]) -> Any:
    """Evaluate ``node`` against one row dict."""
    if isinstance(node, Literal):
        return node.value
    if isinstance(node, ColumnRef):
        if node.name not in row:
            raise ExpressionError(
                f"unknown column {node.name!r}; row has {sorted(row)}"
            )
        return row[node.name]
    if isinstance(node, Unary):
        value = evaluate(node.operand, row)
        if node.op == "not":
            return not value
        if node.op == "-":
            return -value if value is not None else None
        raise ExpressionError(f"unknown unary operator {node.op!r}")
    if isinstance(node, Binary):
        if node.op == "and":
            return bool(evaluate(node.left, row)) and bool(
                evaluate(node.right, row)
            )
        if node.op == "or":
            return bool(evaluate(node.left, row)) or bool(
                evaluate(node.right, row)
            )
        left = evaluate(node.left, row)
        right = evaluate(node.right, row)
        if node.op == "in":
            if right is None:
                return False
            return left in right
        if node.op in ("==", "!=", "<", "<=", ">", ">="):
            return _compare(node.op, left, right)
        return _arith(node.op, left, right)
    if isinstance(node, Call):
        fn = _FUNCTIONS.get(node.name)
        if fn is None:
            raise ExpressionError(f"unknown function {node.name!r}")
        args = [evaluate(a, row) for a in node.args]
        try:
            return fn(*args)
        except (ValueError, TypeError) as exc:
            raise ExpressionError(
                f"error calling {node.name}({args!r}): {exc}"
            ) from exc
    if isinstance(node, ListLiteral):
        return [evaluate(item, row) for item in node.items]
    raise ExpressionError(f"cannot evaluate node {node!r}")


class Expression:
    """A parsed, reusable expression."""

    def __init__(self, source: str):
        self.source = source
        self.root = _Parser(tokenize(source), source).parse()

    def __call__(self, row: Mapping[str, Any]) -> Any:
        return evaluate(self.root, row)

    def references(self) -> set[str]:
        return self.root.references()

    def __repr__(self) -> str:
        return f"Expression({self.source!r})"


def compile_expression(source: str) -> Expression:
    """Parse ``source`` once; the result is a callable ``row -> value``."""
    return Expression(source)


def register_function(name: str, fn: Callable[..., Any]) -> None:
    """Extension hook: add a function usable inside expressions."""
    key = name.lower()
    if key in _FUNCTIONS:
        raise ExpressionError(f"function {name!r} already registered")
    _FUNCTIONS[key] = fn
