"""Schemas for platform data objects.

The flow file declares a schema for every data object as an ordered list of
column names (paper §3.2, Fig. 5); optionally a column can carry a payload
path mapping (``question => title``, Fig. 6) and a declared type.  Schemas
travel with tables through every task so the validator can propagate them
statically and the engine can check them dynamically.
"""

from __future__ import annotations

import datetime as _dt
import enum
from dataclasses import dataclass
from typing import Any, Iterable, Iterator

from repro.errors import SchemaError


class ColumnType(enum.Enum):
    """Logical column types recognised by the platform.

    ``ANY`` is the default for flow-file declared columns (the paper's DSL is
    untyped); concrete types are inferred on load and refined by tasks.
    """

    ANY = "any"
    STRING = "string"
    INT = "int"
    FLOAT = "float"
    BOOL = "bool"
    DATE = "date"

    @classmethod
    def infer(cls, value: Any) -> "ColumnType":
        """Infer the logical type of a single Python value."""
        if value is None:
            return cls.ANY
        if isinstance(value, bool):
            return cls.BOOL
        if isinstance(value, int):
            return cls.INT
        if isinstance(value, float):
            return cls.FLOAT
        if isinstance(value, (_dt.date, _dt.datetime)):
            return cls.DATE
        return cls.STRING

    def unify(self, other: "ColumnType") -> "ColumnType":
        """Return the narrowest type covering both ``self`` and ``other``."""
        if self is other:
            return self
        if self is ColumnType.ANY:
            return other
        if other is ColumnType.ANY:
            return self
        numeric = {ColumnType.INT, ColumnType.FLOAT}
        if self in numeric and other in numeric:
            return ColumnType.FLOAT
        return ColumnType.STRING


_COERCIONS = {
    ColumnType.STRING: str,
    ColumnType.INT: int,
    ColumnType.FLOAT: float,
    ColumnType.BOOL: bool,
}


@dataclass(frozen=True)
class Column:
    """One column of a schema.

    ``source_path`` holds the payload path from a ``=>`` mapping in the data
    section (e.g. ``user.location``); ``None`` means the column name is also
    the payload field name.
    """

    name: str
    type: ColumnType = ColumnType.ANY
    source_path: str | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("column name must be non-empty")

    def coerce(self, value: Any) -> Any:
        """Coerce ``value`` to this column's type; ``None`` passes through."""
        if value is None or self.type is ColumnType.ANY:
            return value
        caster = _COERCIONS.get(self.type)
        if caster is None:  # DATE: keep whatever representation we got
            return value
        try:
            return caster(value)
        except (TypeError, ValueError) as exc:
            raise SchemaError(
                f"cannot coerce {value!r} to {self.type.value} "
                f"for column {self.name!r}"
            ) from exc

    def renamed(self, name: str) -> "Column":
        return Column(name=name, type=self.type, source_path=self.source_path)


class Schema:
    """An ordered collection of uniquely-named :class:`Column` objects."""

    def __init__(self, columns: Iterable[Column | str]):
        cols: list[Column] = []
        for col in columns:
            if isinstance(col, str):
                col = Column(col)
            cols.append(col)
        names = [c.name for c in cols]
        duplicates = {n for n in names if names.count(n) > 1}
        if duplicates:
            raise SchemaError(f"duplicate column names: {sorted(duplicates)}")
        self._columns = tuple(cols)
        self._index = {c.name: i for i, c in enumerate(cols)}

    @classmethod
    def of(cls, *names: str) -> "Schema":
        """Convenience constructor: ``Schema.of("a", "b", "c")``."""
        return cls(names)

    @classmethod
    def from_mapping(cls, mapping: dict[str, str | None]) -> "Schema":
        """Build a schema from ``{column_name: source_path_or_None}``."""
        return cls(
            Column(name, source_path=path) for name, path in mapping.items()
        )

    @property
    def columns(self) -> tuple[Column, ...]:
        return self._columns

    @property
    def names(self) -> list[str]:
        return [c.name for c in self._columns]

    def __len__(self) -> int:
        return len(self._columns)

    def __iter__(self) -> Iterator[Column]:
        return iter(self._columns)

    def __contains__(self, name: object) -> bool:
        return name in self._index

    def __getitem__(self, name: str) -> Column:
        try:
            return self._columns[self._index[name]]
        except KeyError:
            raise SchemaError(
                f"unknown column {name!r}; schema has {self.names}"
            ) from None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._columns == other._columns

    def __hash__(self) -> int:
        return hash(self._columns)

    def __repr__(self) -> str:
        return f"Schema({self.names})"

    def index_of(self, name: str) -> int:
        """Position of ``name``, raising :class:`SchemaError` if absent."""
        if name not in self._index:
            raise SchemaError(
                f"unknown column {name!r}; schema has {self.names}"
            )
        return self._index[name]

    def require(self, names: Iterable[str], context: str = "") -> None:
        """Raise unless every name in ``names`` exists in this schema."""
        missing = [n for n in names if n not in self._index]
        if missing:
            where = f" in {context}" if context else ""
            raise SchemaError(
                f"columns {missing} not found{where}; "
                f"available: {self.names}"
            )

    def select(self, names: Iterable[str]) -> "Schema":
        """Schema restricted to ``names`` (in the given order)."""
        names = list(names)
        self.require(names)
        return Schema(self[n] for n in names)

    def drop(self, names: Iterable[str]) -> "Schema":
        """Schema with ``names`` removed."""
        dropped = set(names)
        self.require(dropped)
        return Schema(c for c in self._columns if c.name not in dropped)

    def with_column(self, column: Column | str) -> "Schema":
        """Schema extended with ``column`` (replacing a same-named one)."""
        if isinstance(column, str):
            column = Column(column)
        cols = [c for c in self._columns if c.name != column.name]
        cols.append(column)
        return Schema(cols)

    def rename(self, mapping: dict[str, str]) -> "Schema":
        """Schema with columns renamed via ``{old: new}``."""
        self.require(mapping)
        return Schema(
            c.renamed(mapping[c.name]) if c.name in mapping else c
            for c in self._columns
        )

    def merge(self, other: "Schema") -> "Schema":
        """Concatenate two schemas; duplicate names are an error."""
        return Schema(list(self._columns) + list(other.columns))
