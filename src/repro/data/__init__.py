"""Tabular data substrate.

Every data object flowing through the platform — sources, sinks,
intermediate results, endpoint data — is a :class:`~repro.data.table.Table`
described by a :class:`~repro.data.schema.Schema`.  Filter/map expressions
used by tasks live in :mod:`repro.data.expressions`.
"""

from repro.data.schema import Column, ColumnType, Schema
from repro.data.table import Table
from repro.data.expressions import Expression, compile_expression

__all__ = [
    "Column",
    "ColumnType",
    "Schema",
    "Table",
    "Expression",
    "compile_expression",
]
