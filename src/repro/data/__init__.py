"""Tabular data substrate.

Every data object flowing through the platform — sources, sinks,
intermediate results, endpoint data — is a :class:`~repro.data.table.Table`
described by a :class:`~repro.data.schema.Schema`.  Filter/map expressions
used by tasks live in :mod:`repro.data.expressions`; the typed column
encodings and the binary page codec behind spill/transport live in
:mod:`repro.data.encodings` and :mod:`repro.data.pages`.
"""

from repro.data.schema import Column, ColumnType, Schema
from repro.data.table import Table
from repro.data.expressions import Expression, compile_expression
from repro.data.encodings import (
    DictColumn,
    FloatColumn,
    IntColumn,
    encode_column,
)

__all__ = [
    "Column",
    "ColumnType",
    "DictColumn",
    "FloatColumn",
    "IntColumn",
    "Schema",
    "Table",
    "Expression",
    "compile_expression",
    "encode_column",
]
