"""Columnar in-memory table.

The engine's unit of data.  Storage is column-major (``dict`` of lists) which
makes the relational operators (project, group-by, join) natural and keeps
per-row overhead low, while :meth:`Table.rows` provides row-dict iteration
for map-style tasks and renderers.

Tables are treated as immutable by the engine: every operator returns a new
table.  The few mutating helpers (``append_row``) exist for builders such as
format decoders and are not used on tables already handed to the engine.

Alongside the boxed lists a table may carry *typed encodings*
(:mod:`repro.data.encodings`): per-column ``array``-backed or
dictionary-encoded shadows built at the ingest boundary
(:meth:`Table.from_columns`) and propagated structurally through
``take``/``concat_all``/projections.  They never replace ``_data`` —
every consumer of the boxed lists is untouched — but the kernels, the
shuffle and the binary page codec (:mod:`repro.data.pages`) dispatch on
them for compact, code-wise fast paths.  Pickling a table ships the
codec page (``__reduce__``), which is what makes spilled shuffle
buckets and process-executor result frames compact.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

import repro.data.encodings as _encodings
from repro.data.schema import Column, ColumnType, Schema
from repro.errors import SchemaError


class Table:
    """A schema-carrying columnar table."""

    def __init__(
        self,
        schema: Schema | Sequence[str],
        columns: Mapping[str, Sequence[Any]] | None = None,
    ):
        if not isinstance(schema, Schema):
            schema = Schema(schema)
        self._schema = schema
        if columns is None:
            columns = {name: [] for name in schema.names}
        data: dict[str, list[Any]] = {}
        length: int | None = None
        for name in schema.names:
            if name not in columns:
                raise SchemaError(f"missing data for column {name!r}")
            values = list(columns[name])
            if length is None:
                length = len(values)
            elif len(values) != length:
                raise SchemaError(
                    f"ragged columns: {name!r} has {len(values)} values, "
                    f"expected {length}"
                )
            data[name] = values
        extra = set(columns) - set(schema.names)
        if extra:
            raise SchemaError(f"data for undeclared columns: {sorted(extra)}")
        self._data = data
        self._length = length or 0
        #: typed encodings by column name (see repro.data.encodings);
        #: a shadow representation — never the primary storage.
        self._enc: dict[str, Any] = {}
        #: cached estimated_bytes() (engine tables are immutable)
        self._est_bytes: int | None = None
        #: columns that refused a typed encoding when one was attempted
        self.encode_fallbacks = 0

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def _wrap(
        cls, schema: Schema, data: dict[str, list[Any]], length: int
    ) -> "Table":
        """Adopt freshly-built column lists without re-copying them.

        Internal fast path for operators that have just materialized new
        lists (``take``, ``concat_all``, ``from_rows``): the public
        constructor defensively copies every column, which doubles the
        cost of exactly the hot paths this module exists to keep cheap.
        Callers must hand over exclusive ownership of ``data``'s lists.
        """
        table = cls.__new__(cls)
        table._schema = schema
        table._data = data
        table._length = length
        table._enc = {}
        table._est_bytes = None
        table.encode_fallbacks = 0
        return table

    @classmethod
    def from_rows(
        cls,
        schema: Schema | Sequence[str],
        rows: Iterable[Mapping[str, Any] | Sequence[Any]],
    ) -> "Table":
        """Build a table from row dicts or row tuples.

        Row dicts may omit columns (filled with ``None``); row sequences
        must match the schema arity.
        """
        if not isinstance(schema, Schema):
            schema = Schema(schema)
        names = schema.names
        data: dict[str, list[Any]] = {n: [] for n in names}
        count = 0
        for row in rows:
            count += 1
            if isinstance(row, Mapping):
                for name in names:
                    data[name].append(row.get(name))
            else:
                if len(row) != len(names):
                    raise SchemaError(
                        f"row arity {len(row)} != schema arity {len(names)}"
                    )
                for name, value in zip(names, row):
                    data[name].append(value)
        return cls._wrap(schema, data, count if names else 0)

    @classmethod
    def from_columns(
        cls,
        schema: Schema | Sequence[str],
        columns: Mapping[str, list],
        length: int | None = None,
    ) -> "Table":
        """Adopt freshly-built per-column lists without copying them.

        The public face of :meth:`_wrap` for builders that assemble
        column lists directly — the columnar format decoders and
        ``loader._align``.  Lengths are validated (one ``len`` per
        column) but the lists themselves are adopted, so callers hand
        over exclusive ownership; entries in ``columns`` beyond the
        schema's names are ignored.
        """
        if not isinstance(schema, Schema):
            schema = Schema(schema)
        names = schema.names
        if length is None:
            length = len(columns[names[0]]) if names else 0
        data: dict[str, list[Any]] = {}
        for name in names:
            if name not in columns:
                raise SchemaError(f"missing data for column {name!r}")
            values = columns[name]
            if type(values) is not list:
                values = list(values)
            if len(values) != length:
                raise SchemaError(
                    f"ragged columns: {name!r} has {len(values)} values, "
                    f"expected {length}"
                )
            data[name] = values
        table = cls._wrap(schema, data, length if names else 0)
        # The ingest boundary: every format decoder and loader._align
        # lands here, so encoding once covers all source tables.
        if length and _encodings.enabled():
            table._encode_columns()
        return table

    def _encode_columns(self) -> None:
        """Attempt a typed encoding for every (non-empty) plain column."""
        enc = self._enc
        fallbacks = 0
        for name, values in self._data.items():
            if name in enc or not values:
                continue
            column = _encodings.encode_column(values)
            if column is None:
                fallbacks += 1
            else:
                enc[name] = column
        self.encode_fallbacks = fallbacks

    @classmethod
    def empty(cls, schema: Schema | Sequence[str]) -> "Table":
        return cls(schema)

    # ------------------------------------------------------------------
    # basic protocol
    # ------------------------------------------------------------------
    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def num_rows(self) -> int:
        return self._length

    @property
    def num_columns(self) -> int:
        return len(self._schema)

    def __len__(self) -> int:
        return self._length

    def __bool__(self) -> bool:
        # An empty table is still a real table; avoid truthiness surprises.
        return True

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Table):
            return NotImplemented
        return (
            self._schema.names == other._schema.names
            and self._data == other._data
        )

    def __repr__(self) -> str:
        return f"Table({self._schema.names}, rows={self._length})"

    def column(self, name: str) -> list[Any]:
        """The values of one column (a copy is *not* made; do not mutate)."""
        if name not in self._data:
            raise SchemaError(
                f"unknown column {name!r}; schema has {self._schema.names}"
            )
        return self._data[name]

    def encoded_column(self, name: str) -> Any | None:
        """The typed encoding shadowing ``name``, or ``None``."""
        return self._enc.get(name)

    def _kernel_columns(self, names: Sequence[str]) -> list[Any]:
        """Per-key kernel inputs: the typed encoding when present,
        else the plain list — what argsort/group_indices dispatch on."""
        enc = self._enc
        data = self._data
        return [enc.get(name) or data[name] for name in names]

    def row(self, index: int) -> dict[str, Any]:
        """Row ``index`` as a dict."""
        if not 0 <= index < self._length:
            raise IndexError(f"row {index} out of range 0..{self._length - 1}")
        return {name: self._data[name][index] for name in self._schema.names}

    def rows(self) -> Iterator[dict[str, Any]]:
        """Iterate rows as dicts."""
        names = self._schema.names
        cols = [self._data[n] for n in names]
        for values in zip(*cols) if cols else iter(()):
            yield dict(zip(names, values))

    def row_tuples(self) -> Iterator[tuple[Any, ...]]:
        """Iterate rows as tuples in schema order."""
        cols = [self._data[n] for n in self._schema.names]
        return iter(zip(*cols)) if cols else iter(())

    # ------------------------------------------------------------------
    # relational helpers used by tasks and the engine
    # ------------------------------------------------------------------
    def _share_encodings(
        self, result: "Table", mapping: dict[str, str] | None = None
    ) -> "Table":
        """Carry encodings onto a projection/rename of this table.

        Encoding objects are immutable by the same contract as column
        lists, so sharing them across tables is safe even though the
        public constructor copied the underlying lists.
        """
        if self._enc:
            names = set(result._schema.names)
            for name, column in self._enc.items():
                out = mapping.get(name, name) if mapping else name
                if out in names:
                    result._enc[out] = column
        return result

    def select(self, names: Sequence[str]) -> "Table":
        """Projection: keep ``names`` in the given order."""
        schema = self._schema.select(names)
        return self._share_encodings(
            Table(schema, {n: self._data[n] for n in names})
        )

    def drop(self, names: Sequence[str]) -> "Table":
        schema = self._schema.drop(names)
        return self._share_encodings(
            Table(schema, {n: self._data[n] for n in schema.names})
        )

    def rename(self, mapping: dict[str, str]) -> "Table":
        schema = self._schema.rename(mapping)
        data = {
            mapping.get(name, name): values
            for name, values in self._data.items()
        }
        return self._share_encodings(Table(schema, data), mapping)

    def with_column(self, name: str, values: Sequence[Any]) -> "Table":
        """Add (or replace) a column.

        The length check also covers 0-row tables — adding a non-empty
        column to an empty table must fail here with a clear message,
        not later in the constructor as a puzzling "ragged columns"
        error.  A table with no columns yet accepts any length (the new
        column defines it).
        """
        values = list(values)
        if self._schema.names and len(values) != self._length:
            raise SchemaError(
                f"column {name!r} has {len(values)} values, "
                f"table has {self._length} rows"
            )
        schema = self._schema.with_column(Column(name))
        data = dict(self._data)
        data[name] = values
        result = Table(schema, {n: data[n] for n in schema.names})
        if self._enc:
            result._enc = {
                k: v for k, v in self._enc.items() if k != name
            }
        return result

    def filter_rows(self, predicate: Callable[[dict[str, Any]], bool]) -> "Table":
        """Rows for which ``predicate(row_dict)`` is truthy.

        A :class:`~repro.data.kernels.ColumnarPredicate` takes the
        vectorized path: the predicate evaluates column-at-a-time and no
        row dicts are materialized.  Any other callable gets the generic
        row-at-a-time evaluation.
        """
        from repro.data.kernels import ColumnarPredicate

        if isinstance(predicate, ColumnarPredicate):
            return self.take(predicate.indices(self))
        keep = [i for i, row in enumerate(self.rows()) if predicate(row)]
        return self.take(keep)

    def take(self, indices: Sequence[int]) -> "Table":
        """Rows at ``indices`` (in the given order).

        Encodings come along: gathering an ``array`` of codes/scalars
        keeps the result page-codec- and kernel-ready (dictionary
        columns share their unique-value table with the source, so a
        later ``concat_all`` of sibling takes splices raw buffers).
        """
        indices = (
            indices if isinstance(indices, (list, range)) else list(indices)
        )
        length = len(indices) if self._schema.names else 0
        enc_src = self._enc if length else None
        if not enc_src:
            data = {
                name: [values[i] for i in indices]
                for name, values in self._data.items()
            }
            return Table._wrap(self._schema, data, length)
        # Encoded columns drive their own gather (a dictionary column
        # gathers codes once and derives the strings from its tiny
        # unique table, instead of a second random-access pass).
        data = {}
        enc = {}
        for name, values in self._data.items():
            column = enc_src.get(name)
            if column is None:
                data[name] = [values[i] for i in indices]
            else:
                taken = column.gather(indices, values)
                enc[name] = taken
                data[name] = taken.boxed
        table = Table._wrap(self._schema, data, length)
        table._enc = enc
        return table

    def head(self, n: int) -> "Table":
        return self.take(range(min(n, self._length)))

    def concat(self, other: "Table") -> "Table":
        """Vertical union; schemas must have identical column names."""
        return Table.concat_all([self, other])

    @classmethod
    def concat_all(
        cls,
        tables: Sequence["Table"],
        schema: Schema | None = None,
    ) -> "Table":
        """Vertical union of many tables in one pass.

        Each output column is built with a single copy of its input
        values, so gathering ``P`` partitions costs O(rows) — the
        pairwise ``a.concat(b).concat(c)...`` fold re-copies the growing
        prefix and degenerates to O(P * rows).  ``schema`` supplies the
        result schema when ``tables`` may be empty.
        """
        tables = list(tables)
        if not tables:
            if schema is None:
                raise SchemaError("concat_all of no tables needs a schema")
            return cls.empty(schema)
        first = tables[0]
        names = first.schema.names
        for other in tables[1:]:
            if other.schema.names != names:
                raise SchemaError(
                    f"cannot concat: schemas differ "
                    f"{names} vs {other.schema.names}"
                )
        if len(tables) == 1:
            # Still copy: callers expect a table independent of inputs.
            return first.take(range(first.num_rows))
        data: dict[str, list[Any]] = {}
        for name in names:
            column: list[Any] = []
            for table in tables:
                column.extend(table._data[name])
            data[name] = column
        result = cls._wrap(
            first.schema, data, sum(t.num_rows for t in tables)
        )
        # Encodings concat buffer-wise when every input column carries
        # the same encoding class (the shuffle assembly path: pages are
        # takes of encoded sources, dictionaries shared by reference).
        for name in names:
            encoded = [t._enc.get(name) for t in tables]
            kind = type(encoded[0])
            if encoded[0] is not None and all(
                type(e) is kind for e in encoded
            ):
                result._enc[name] = kind.concat(encoded, data[name])
        return result

    def sorted_by(
        self, keys: Sequence[str], descending: Sequence[bool] | None = None
    ) -> "Table":
        """Stable multi-key sort.

        ``None`` values sort first ascending / last descending, mirroring the
        behaviour of the SQL engines the platform compiles to.
        """
        from repro.data.kernels import argsort

        self._schema.require(keys, context="sort")
        descending = list(descending or [False] * len(keys))
        if len(descending) != len(keys):
            raise SchemaError("sort keys and directions differ in length")
        indices = argsort(
            self._length, self._kernel_columns(keys), descending
        )
        return self.take(indices)

    def distinct(self, keys: Sequence[str] | None = None) -> "Table":
        """First occurrence of each distinct key combination.

        Runs on the ``distinct_indices`` kernel (dictionary columns
        dedupe by code); unhashable cells (lists/dicts) drop to the
        historical per-row ``_hashable`` tuple walk.
        """
        from repro.data.kernels import distinct_indices

        keys = list(keys) if keys else self._schema.names
        self._schema.require(keys, context="distinct")
        try:
            return self.take(
                distinct_indices(self._kernel_columns(keys))
            )
        except TypeError:
            pass
        seen: set = set()
        indices = []
        key_cols = [self._data[k] for k in keys]
        for i in range(self._length):
            key = tuple(_hashable(col[i]) for col in key_cols)
            if key not in seen:
                seen.add(key)
                indices.append(i)
        return self.take(indices)

    def append_row(self, row: Mapping[str, Any]) -> None:
        """Builder helper: append one row dict in place."""
        for name in self._schema.names:
            self._data[name].append(row.get(name))
        self._length += 1
        # Mutation invalidates the immutable-table shadows.
        if self._enc:
            self._enc = {}
        self._est_bytes = None

    def infer_types(self) -> "Table":
        """Return a table whose schema carries inferred column types."""
        columns = []
        for col in self._schema:
            inferred = ColumnType.ANY
            for value in self._data[col.name]:
                if value is None:
                    continue
                inferred = inferred.unify(ColumnType.infer(value))
            columns.append(
                Column(col.name, type=inferred, source_path=col.source_path)
            )
        return self._share_encodings(Table(Schema(columns), self._data))

    def to_records(self) -> list[dict[str, Any]]:
        """All rows as a list of dicts (used by the REST layer)."""
        return list(self.rows())

    def json_rows(
        self,
        default: Callable[[Any], Any] = str,
        indent: int | None = None,
    ) -> list[str]:
        """Each row as a JSON object string, encoded column-at-a-time.

        Byte-identical to ``json.dumps(row_dict, default=default,
        indent=indent)`` per row, without building the row dicts: every
        column is encoded in one pass (string cells memoized, so
        repeated categories/dates escape once) and rows are assembled by
        string join.  Backs :meth:`to_json_records`, the REST layer and
        the JSON format encoder.
        """
        import json

        names = self._schema.names
        if not names or self._length == 0:
            return []
        pad = " " * indent if indent else ""
        encoded_columns = [
            _encode_json_column(self._data[name], default, indent, pad)
            for name in names
        ]
        prefixes = [json.dumps(name) + ": " for name in names]
        width = len(names)
        rows: list[str] = []
        if indent is None:
            for i in range(self._length):
                parts = [
                    prefixes[j] + encoded_columns[j][i]
                    for j in range(width)
                ]
                rows.append("{" + ", ".join(parts) + "}")
            return rows
        # Pretty mode mirrors json.dumps(..., indent=N) at depth 1: keys
        # sit two levels deep, the closing brace one level deep.
        key_pad = "\n" + pad * 2
        for i in range(self._length):
            parts = [
                prefixes[j] + encoded_columns[j][i] for j in range(width)
            ]
            rows.append(
                "{" + key_pad + ("," + key_pad).join(parts)
                + "\n" + pad + "}"
            )
        return rows

    def to_json_records(
        self,
        default: Callable[[Any], Any] = str,
        indent: int | None = None,
    ) -> str:
        """JSON-encode all rows as an array of objects, column-at-a-time.

        Byte-identical to ``json.dumps(self.to_records(),
        default=default, indent=indent)`` but skips the
        :meth:`to_records` dict detour entirely — the fast endpoint
        serialization path.
        """
        rows = self.json_rows(default=default, indent=indent)
        if indent is None:
            return "[" + ", ".join(rows) + "]"
        if not rows:
            return "[]"
        pad = " " * indent
        return "[\n" + pad + (",\n" + pad).join(rows) + "\n]"

    def estimated_bytes(self) -> int:
        """Rough payload size, used by the transfer-minimizing optimizer.

        Cached (the engine never mutates a table it accounts for —
        ``append_row`` invalidates) and computed from the typed
        encodings when present.  Both shortcuts reproduce the historical
        per-cell walk exactly — strings ``len+8``, everything else 16 —
        because ``shuffled_bytes`` telemetry is fingerprinted by the
        determinism suites.
        """
        total = self._est_bytes
        if total is not None:
            return total
        total = 0
        enc = self._enc
        for name, values in self._data.items():
            column = enc.get(name)
            if column is not None:
                total += column.estimated_bytes()
                continue
            for v in values:
                if isinstance(v, str):
                    total += len(v) + 8
                else:
                    total += 16
        self._est_bytes = total
        return total

    def __reduce__(self):
        """Pickle as one binary codec page (:mod:`repro.data.pages`).

        Every pickled table — spill pages, process-executor result
        frames, checkpoints, deep copies — ships width-minimized typed
        buffers instead of per-cell opcodes.
        """
        from repro.data import pages

        return (pages.decode_table, (pages.encode_table(self),))


def _encode_json_column(
    values: list,
    default: Callable[[Any], Any],
    indent: int | None,
    pad: str,
) -> list[str]:
    """JSON fragments for one column's cells.

    Exact ``int``/``float`` cells encode through ``repr`` — what the C
    encoder itself emits for them — and string cells are memoized
    (safe: equal strings encode equally, and a string's fragment never
    spans lines).  The dispatch is on exact type, never equality, so
    ``True``/``1``/``1.0`` cannot alias; subclasses (enums, bools) and
    non-finite floats take the generic ``json.dumps`` path.  In pretty
    mode a container cell's continuation lines are re-indented to the
    depth the cell occupies inside ``[ { ... } ]`` (two levels).
    """
    import json
    from math import isfinite

    dumps = json.dumps
    memo: dict[str, str] = {}
    out: list[str] = []
    append = out.append
    for value in values:
        kind = type(value)
        if value is None:
            append("null")
        elif value is True:
            append("true")
        elif value is False:
            append("false")
        elif kind is int:
            append(repr(value))
        elif kind is float and isfinite(value):
            append(repr(value))
        elif kind is str:
            fragment = memo.get(value)
            if fragment is None:
                fragment = dumps(value)
                memo[value] = fragment
            append(fragment)
        elif isinstance(value, str):
            append(dumps(value))
        elif indent is None:
            append(dumps(value, default=default))
        else:
            append(
                dumps(value, default=default, indent=indent).replace(
                    "\n", "\n" + pad * 2
                )
            )
    return out


def _hashable(value: Any) -> Any:
    """Map unhashable cell values (lists/dicts) to a hashable stand-in."""
    if isinstance(value, list):
        return tuple(_hashable(v) for v in value)
    if isinstance(value, dict):
        return tuple(sorted((k, _hashable(v)) for k, v in value.items()))
    return value
