"""Compact typed encodings for :class:`~repro.data.table.Table` columns.

A table's primary storage stays a dict of plain Python lists — every
existing consumer (row iteration, JSON serialization, the determinism
fingerprints that read ``Table._data`` directly) keeps seeing boxed
cells.  What this module adds is a *parallel* typed representation that
rides alongside the lists:

* :class:`IntColumn` / :class:`FloatColumn` — an ``array('q')`` /
  ``array('d')`` buffer plus an optional byte-per-row null mask;
* :class:`DictColumn` — dictionary-encoded strings: a list of small
  integer codes into a unique-value table (``-1`` encodes ``None``).

Encodings are built at the ingest boundary (``Table.from_columns``,
which every format decoder and ``loader._align`` feed) by
:func:`encode_column`, and propagated structurally through the hot
operators (``take`` gathers code/typed buffers, ``concat_all`` extends
them, projections share them).  Kernels (``argsort``,
``group_indices``, the columnar predicates) and the binary page codec
(:mod:`repro.data.pages`) dispatch on these classes to work on codes
and raw buffers instead of boxed cells.

Encoding is *best effort and lossless or not at all*: a column encodes
only when every cell is exactly ``int`` (never ``bool`` — a subclass
that ``array('q')`` would silently flatten), exactly ``float`` (never
``NaN`` — a round-trip would break list equality), or exactly ``str``,
each optionally mixed with ``None``.  Anything else — mixed types,
nested lists/dicts, out-of-64-bit ints, high-cardinality strings —
falls back to the plain list (:func:`encode_column` returns ``None``),
which is what ``repro_table_encode_fallbacks_total`` counts.

The layer can be disabled wholesale (``REPRO_TABLE_ENCODE=0`` or
:func:`set_enabled`) — the ablation switch the encoding benchmark
uses.  Semantics never depend on it: every fast path is
row-for-row identical to the plain path
(``tests/property/test_prop_encodings.py``).
"""

from __future__ import annotations

import os
from array import array
from typing import Any, Sequence

__all__ = [
    "DictColumn",
    "FloatColumn",
    "IntColumn",
    "decode_column",
    "enabled",
    "encode_column",
    "set_enabled",
]

_NONE = type(None)

#: refuse dictionary encoding when the uniques stop paying for the code
#: array: past this many distinct values *and* more than one distinct
#: value per two rows, codes + uniques cost about what the plain list
#: does and the per-unique kernel tricks stop amortizing.
_DICT_MAX_CARDINALITY = 4096

_ENABLED = os.environ.get("REPRO_TABLE_ENCODE", "1") != "0"


def enabled() -> bool:
    """Whether ``Table.from_columns`` builds encodings at all."""
    return _ENABLED


def set_enabled(flag: bool) -> bool:
    """Toggle encoding globally; returns the previous setting.

    Exists for the ablation benchmark and tests — production code
    leaves encodings on.  Tables already built keep whatever
    representation they have.
    """
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(flag)
    return previous


class IntColumn:
    """64-bit integers (``array('q')``) with an optional null mask.

    ``values[i]`` is 0 where ``nulls[i]`` is set; ``nulls`` is ``None``
    for columns without a single ``None`` cell.  ``boxed`` references
    the plain list this encoding shadows — kernels that have no typed
    fast path fall back to it without re-materializing.
    """

    __slots__ = ("values", "nulls", "boxed")

    typecode = "q"

    def __init__(
        self,
        values: array,
        nulls: bytearray | None,
        boxed: list | None = None,
    ):
        self.values = values
        self.nulls = nulls
        self.boxed = boxed if boxed is not None else self.tolist()

    def __len__(self) -> int:
        return len(self.values)

    @classmethod
    def try_encode(cls, values: list) -> "IntColumn | None":
        try:
            if any(v is None for v in values):
                nulls = bytearray(len(values))
                for i, v in enumerate(values):
                    if v is None:
                        nulls[i] = 1
                arr = array(
                    cls.typecode, (0 if v is None else v for v in values)
                )
            else:
                nulls = None
                arr = array(cls.typecode, values)
        except OverflowError:
            return None  # beyond 64-bit — keep the boxed list
        return cls(arr, nulls, values)

    def gather(
        self, indices: Sequence[int], source_boxed: list
    ) -> "IntColumn":
        # Gather the boxed cells, then rebuild the buffer from them:
        # ``array(tc, list)`` converts at C speed, while gathering
        # ``self.values`` element-wise would box every scalar into a
        # fresh object first.
        boxed = [source_boxed[i] for i in indices]
        nulls = self.nulls
        if nulls is None:
            return type(self)(array(self.typecode, boxed), None, boxed)
        taken_nulls = bytearray(map(nulls.__getitem__, indices))
        arr = array(
            self.typecode, (0 if v is None else v for v in boxed)
        )
        return type(self)(arr, taken_nulls, boxed)

    def tolist(self) -> list:
        if self.nulls is None:
            return self.values.tolist()
        return [
            None if m else v for v, m in zip(self.values, self.nulls)
        ]

    def estimated_bytes(self) -> int:
        # Exactly the legacy per-cell walk: 16 per non-string cell,
        # None included.  ``shuffled_bytes`` telemetry depends on it.
        return 16 * len(self.values)

    @staticmethod
    def concat(columns: "Sequence[IntColumn]", boxed: list):
        first = columns[0]
        merged = array(first.typecode)
        for col in columns:
            merged.extend(col.values)
        if any(col.nulls is not None for col in columns):
            nulls = bytearray()
            for col in columns:
                nulls.extend(col.nulls or bytes(len(col.values)))
        else:
            nulls = None
        return type(first)(merged, nulls, boxed)


class FloatColumn(IntColumn):
    """64-bit floats (``array('d')``); otherwise exactly IntColumn."""

    __slots__ = ()

    typecode = "d"

    @classmethod
    def try_encode(cls, values: list) -> "FloatColumn | None":
        # NaN never round-trips through list equality (a decoded NaN is
        # a fresh object, and NaN != NaN defeats the identity shortcut)
        # — leave such columns boxed.
        if any(v != v for v in values if v is not None):
            return None
        try:
            return super().try_encode(values)
        except TypeError:  # pragma: no cover - guarded by callers
            return None


class DictColumn:
    """Dictionary-encoded strings: codes into a unique-value table.

    ``codes[i]`` indexes ``values`` (first-seen order); ``-1`` encodes
    ``None``.  ``index`` maps value -> code for operand lookups.
    Codes live in a plain list — for low cardinality every element is
    a pointer to a cached small int, so gathers/zips run at list speed
    with no boxing (an ``array`` would re-box per access); the page
    codec width-minimizes them only at serialization time.  ``gather``
    shares the ``values`` list by reference, so the pages of one
    shuffle partition keep a single dictionary and ``concat`` can
    splice their code lists without remapping.
    """

    __slots__ = ("codes", "values", "index", "boxed", "_ranks")

    def __init__(
        self,
        codes: list[int],
        values: list[str],
        index: dict[str, int],
        boxed: list | None = None,
    ):
        self.codes = codes
        self.values = values
        self.index = index
        self._ranks: list[int] | None = None
        self.boxed = boxed if boxed is not None else self.tolist()

    def __len__(self) -> int:
        return len(self.codes)

    @classmethod
    def try_encode(cls, values: list) -> "DictColumn | None":
        index: dict[str, int] = {}
        codes: list[int] = []
        append = codes.append
        uniques: list[str] = []
        setdefault = index.setdefault
        for v in values:
            if v is None:
                append(-1)
                continue
            code = setdefault(v, len(uniques))
            if code == len(uniques):
                uniques.append(v)
                if (
                    code >= _DICT_MAX_CARDINALITY
                    and 2 * code > len(values)
                ):
                    return None  # mostly-unique strings: not worth it
            append(code)
        return cls(codes, uniques, index, values)

    def gather(
        self, indices: Sequence[int], source_boxed: list
    ) -> "DictColumn":
        # One random-access gather (the codes), then the boxed strings
        # come from a sequential pass over the tiny dictionary — the
        # table-level string gather is skipped entirely.
        codes = self.codes
        taken = [codes[i] for i in indices]
        lookup = self.values + [None]  # -1 indexes the sentinel
        boxed = [lookup[c] for c in taken]
        # values/index shared: every gather of this column speaks the
        # same dictionary, which is what makes concat splicing safe.
        return DictColumn(taken, self.values, self.index, boxed)

    def tolist(self) -> list:
        lookup = self.values + [None]  # -1 indexes the sentinel
        return [lookup[c] for c in self.codes]

    def estimated_bytes(self) -> int:
        # len(v) + 8 per string cell, 16 per None — the legacy walk.
        lens = [len(v) + 8 for v in self.values]
        lens.append(16)
        return sum(map(lens.__getitem__, self.codes))

    def sort_ranks(self) -> list[int]:
        """``ranks[code]`` = position of that value in sorted order.

        Sorting the dictionary once turns every subsequent row
        comparison into an int compare; computed lazily and cached on
        the column (shared dictionaries still recompute per column
        object — the list is small).
        """
        ranks = self._ranks
        if ranks is None:
            values = self.values
            order = sorted(range(len(values)), key=values.__getitem__)
            ranks = [0] * len(values)
            for position, code in enumerate(order):
                ranks[code] = position
            self._ranks = ranks
        return ranks

    @staticmethod
    def concat(
        columns: "Sequence[DictColumn]", boxed: list
    ) -> "DictColumn":
        first = columns[0]
        values = first.values
        if all(col.values is values for col in columns[1:]):
            # Shared dictionary (the take() lineage): splice raw codes.
            merged: list[int] = []
            for col in columns:
                merged.extend(col.codes)
            return DictColumn(merged, values, first.index, boxed)
        # Different dictionaries: remap through a merged one.  Merged
        # order is first-seen across inputs, matching what encoding the
        # concatenated plain list from scratch would produce.
        index: dict[str, int] = {}
        uniques: list[str] = []
        merged = []
        setdefault = index.setdefault
        for col in columns:
            translate: list[int] = []
            for v in col.values:
                code = setdefault(v, len(uniques))
                if code == len(uniques):
                    uniques.append(v)
                translate.append(code)
            translate.append(-1)  # old -1 indexes this sentinel
            merged.extend(map(translate.__getitem__, col.codes))
        return DictColumn(merged, uniques, index, boxed)


def encode_column(values: list) -> IntColumn | FloatColumn | DictColumn | None:
    """The typed encoding for one plain column, or ``None``.

    Dispatch is on the *exact* set of cell types — subclasses (bools,
    enums, str subtypes) and mixed columns stay boxed so no consumer
    can observe a type change after a round-trip.
    """
    if not values:
        return None
    kinds = set(map(type, values))
    if kinds == {int}:
        return IntColumn.try_encode(values)
    if kinds == {float}:
        return FloatColumn.try_encode(values)
    if kinds == {str}:
        return DictColumn.try_encode(values)
    if _NONE in kinds and len(kinds) == 2:
        if int in kinds:
            return IntColumn.try_encode(values)
        if float in kinds:
            return FloatColumn.try_encode(values)
        if str in kinds:
            return DictColumn.try_encode(values)
    return None


def decode_column(column: Any) -> list:
    """The boxed cells of ``column`` (encoded or already a list)."""
    if isinstance(column, (IntColumn, DictColumn)):
        return column.tolist()
    return list(column)
