"""Binary page codec: compact serialized tables for spill and transport.

One page is one serialized :class:`~repro.data.table.Table`.  The
historical page format was ``pickle.dumps(table)`` — column-wise by
construction, but every cell still a pickled object (with pickle's memo
partially papering over repeated strings).  This codec writes the typed
encodings (:mod:`repro.data.encodings`) as raw buffers instead:

``magic "RTP1" | flags u8 | body``, body optionally zlib(level 1) when
that actually shrinks it (``flags & 1``), containing::

    u32 len | pickle(schema)          # full fidelity: types, paths
    u64 nrows
    per column, in schema order:
      u8 tag
      tag 0 OBJ:   u64 len | pickle(cell list)     # fallback columns
      tag 1 INT:   u8 typecode | u8 has_nulls | [null bitmap]
                   | u64 len | raw array bytes     # width-minimized
      tag 2 FLOAT: u8 'd' | u8 has_nulls | [null bitmap] | u64 | raw
      tag 3 DICT:  u8 code typecode | u64 len | pickle(uniques)
                   | u64 len | raw code bytes      # None -> n_uniques

Integer buffers are width-minimized per page (``b/h/i/q`` by min/max,
``B/H/I`` for dictionary codes by cardinality) and null masks are
bit-packed, which is where the size win over pickle comes from.  Buffers
are written in native byte order; pages only ever travel between
processes on one host (spill files, pool pipes, the mmap arena), and a
big-endian flag bit guards the exotic case.

Columns without an encoding are re-encoded on the fly (so plain tables
built mid-plan still spill compactly) and fall back to a pickled cell
list when that fails — mixed types, NaN, nested cells all round-trip
exactly.  ``decode_table`` rebuilds both the plain lists and the
encodings, so a page read back is as kernel-ready as the table that was
written.

Used by :mod:`repro.engine.spill` (shuffle overflow files), the
process executors' result transport in :mod:`repro.engine.scheduler`,
and ``Table.__reduce__`` (so *any* pickled table — checkpoints, cold
worker frames, nested payloads — ships as one compact page).
"""

from __future__ import annotations

import pickle
import struct
import sys
import zlib
from array import array
from typing import Any

from repro.data import encodings
from repro.data.encodings import DictColumn, FloatColumn, IntColumn
from repro.data.table import Table

__all__ = ["codec_name", "decode_table", "encode_table"]

MAGIC = b"RTP1"
_FLAG_ZLIB = 1
_FLAG_BIG_ENDIAN = 2

_TAG_OBJ = 0
_TAG_INT = 1
_TAG_FLOAT = 2
_TAG_DICT = 3

_U8 = struct.Struct("<B")
_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")

#: bodies smaller than this never pay the zlib attempt
_COMPRESS_FLOOR = 512

_BIG_ENDIAN = sys.byteorder == "big"


def _pack_nulls(nulls: bytearray) -> bytes:
    bits = 0
    for i, m in enumerate(nulls):
        if m:
            bits |= 1 << i
    return bits.to_bytes((len(nulls) + 7) // 8, "little")


def _unpack_nulls(packed: bytes, count: int) -> bytearray:
    bits = int.from_bytes(packed, "little")
    return bytearray((bits >> i) & 1 for i in range(count))


def _int_typecode(values: array) -> str:
    """Narrowest signed typecode holding every value of ``values``."""
    if not len(values):
        return "b"
    lo, hi = min(values), max(values)
    if -128 <= lo and hi <= 127:
        return "b"
    if -32768 <= lo and hi <= 32767:
        return "h"
    if -2147483648 <= lo and hi <= 2147483647:
        return "i"
    return "q"


def _code_typecode(cardinality: int) -> str:
    """Narrowest unsigned typecode for codes ``0..cardinality`` (the
    top value is the serialized stand-in for ``None``'s ``-1``)."""
    if cardinality < 256:
        return "B"
    if cardinality < 65536:
        return "H"
    return "I"


def _encode_buffer(out: list[bytes], raw: bytes) -> None:
    out.append(_U64.pack(len(raw)))
    out.append(raw)


def _encode_typed(
    out: list[bytes], tag: int, column: IntColumn
) -> None:
    if tag == _TAG_INT:
        typecode = _int_typecode(column.values)
        arr = (
            column.values
            if typecode == column.typecode
            else array(typecode, column.values)
        )
    else:
        typecode = "d"
        arr = column.values
    out.append(_U8.pack(tag))
    out.append(typecode.encode("ascii"))
    if column.nulls is None:
        out.append(_U8.pack(0))
    else:
        out.append(_U8.pack(1))
        out.append(_pack_nulls(column.nulls))
    _encode_buffer(out, arr.tobytes())


def _encode_dict(out: list[bytes], column: DictColumn) -> None:
    cardinality = len(column.values)
    typecode = _code_typecode(cardinality)
    # -1 (None) is serialized as the one-past-the-end code so the
    # buffer stays unsigned; decode maps it back.
    codes = array(
        typecode,
        (c if c >= 0 else cardinality for c in column.codes),
    )
    out.append(_U8.pack(_TAG_DICT))
    out.append(typecode.encode("ascii"))
    blob = pickle.dumps(column.values, pickle.HIGHEST_PROTOCOL)
    _encode_buffer(out, blob)
    _encode_buffer(out, codes.tobytes())


def encode_table(table: Table, compress: bool = True) -> bytes:
    """Serialize ``table`` as one binary page.

    Columns carry their existing encodings when present; plain columns
    are encoded on the fly (respecting the global toggle) and fall back
    to a pickled cell list.  ``compress=True`` additionally tries
    zlib level 1 on the body and keeps it only when smaller.
    """
    out: list[bytes] = []
    schema_blob = pickle.dumps(table.schema, pickle.HIGHEST_PROTOCOL)
    out.append(_U32.pack(len(schema_blob)))
    out.append(schema_blob)
    out.append(_U64.pack(table.num_rows))
    attached = getattr(table, "_enc", None) or {}
    auto = encodings.enabled()
    for name in table.schema.names:
        values = table._data[name]
        column = attached.get(name)
        if column is None and auto:
            column = encodings.encode_column(values)
        if type(column) is IntColumn:
            _encode_typed(out, _TAG_INT, column)
        elif type(column) is FloatColumn:
            _encode_typed(out, _TAG_FLOAT, column)
        elif type(column) is DictColumn:
            _encode_dict(out, column)
        else:
            out.append(_U8.pack(_TAG_OBJ))
            _encode_buffer(
                out, pickle.dumps(values, pickle.HIGHEST_PROTOCOL)
            )
    body = b"".join(out)
    flags = _FLAG_BIG_ENDIAN if _BIG_ENDIAN else 0
    if compress and len(body) >= _COMPRESS_FLOOR:
        squeezed = zlib.compress(body, 1)
        if len(squeezed) < len(body):
            return MAGIC + _U8.pack(flags | _FLAG_ZLIB) + squeezed
    return MAGIC + _U8.pack(flags) + body


def codec_name(blob: bytes) -> str:
    """The codec label for one page (``repro_page_codec_bytes_total``)."""
    if blob[:4] != MAGIC:
        return "pickle"
    flags = blob[4]
    return "typed-zlib" if flags & _FLAG_ZLIB else "typed"


def decode_table(blob: bytes) -> Table:
    """Rebuild a table — plain lists *and* encodings — from one page."""
    if blob[:4] != MAGIC:
        raise ValueError("not a table page (bad magic)")
    flags = blob[4]
    body: Any = memoryview(blob)[5:]
    if flags & _FLAG_ZLIB:
        body = memoryview(zlib.decompress(body))
    swap = bool(flags & _FLAG_BIG_ENDIAN) != _BIG_ENDIAN
    offset = 0
    (schema_len,) = _U32.unpack_from(body, offset)
    offset += _U32.size
    schema = pickle.loads(body[offset:offset + schema_len])
    offset += schema_len
    (nrows,) = _U64.unpack_from(body, offset)
    offset += _U64.size
    data: dict[str, list] = {}
    enc: dict[str, Any] = {}

    def read_buffer() -> memoryview:
        nonlocal offset
        (size,) = _U64.unpack_from(body, offset)
        offset += _U64.size
        raw = body[offset:offset + size]
        offset += size
        return raw

    def read_array(typecode: str) -> array:
        arr = array(typecode)
        arr.frombytes(read_buffer())
        if swap:
            arr.byteswap()
        return arr

    for name in schema.names:
        tag = body[offset]
        offset += 1
        if tag == _TAG_OBJ:
            data[name] = pickle.loads(read_buffer())
            continue
        if tag == _TAG_DICT:
            typecode = chr(body[offset])
            offset += 1
            values = pickle.loads(read_buffer())
            raw = read_array(typecode).tolist()
            sentinel = len(values)
            codes = [c if c != sentinel else -1 for c in raw]
            column = DictColumn(
                codes, values, {v: i for i, v in enumerate(values)}
            )
        else:
            typecode = chr(body[offset])
            offset += 1
            has_nulls = body[offset]
            offset += 1
            nulls = None
            if has_nulls:
                width = (nrows + 7) // 8
                nulls = _unpack_nulls(
                    bytes(body[offset:offset + width]), nrows
                )
                offset += width
            arr = read_array(typecode)
            if tag == _TAG_INT:
                if typecode != "q":
                    arr = array("q", arr)
                column = IntColumn(arr, nulls)
            else:
                column = FloatColumn(arr, nulls)
        data[name] = column.boxed
        enc[name] = column
    table = Table._wrap(schema, data, nrows)
    table._enc = enc
    return table
