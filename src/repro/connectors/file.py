"""Local file connector.

``source:`` is a path, resolved relative to the dashboard's data directory
(paper §4.3.2: "users can upload dashboard data to a 'data' folder. All data
files in this folder can be referred in the data object configuration using
relative paths").  The ``base_dir`` config key carries that directory.

Besides whole-payload :meth:`~FileConnector.fetch`, the connector offers
:meth:`~FileConnector.fetch_chunks` — an iterator of byte chunks the
loader hands straight to chunk-capable formats so large files decode
without being held in memory.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Iterator, Mapping

from repro.connectors.base import Connector, DeltaFetch, FetchResult
from repro.errors import ConnectorError


class FileConnector(Connector):
    name = "file"
    supports_delta = True

    def fetch(self, config: Mapping[str, Any]) -> FetchResult:
        path = self._resolve(config)
        if not path.exists():
            raise ConnectorError(f"data file not found: {path}")
        try:
            payload = path.read_bytes()
        except OSError as exc:
            raise ConnectorError(f"cannot read {path}: {exc}") from exc
        return FetchResult(
            payload=payload,
            metadata={"path": str(path), "size": len(payload)},
        )

    def fetch_chunks(
        self, config: Mapping[str, Any]
    ) -> Iterator[bytes]:
        """Stream the file as byte chunks (``chunk_bytes`` config key).

        The missing-file check runs eagerly so callers get the same
        :class:`~repro.errors.ConnectorError` as :meth:`fetch` before
        any chunk is consumed; read errors surface from the iterator.
        """
        path = self._resolve(config)
        if not path.exists():
            raise ConnectorError(f"data file not found: {path}")
        try:
            chunk_bytes = int(config.get("chunk_bytes", 1 << 16))
        except (TypeError, ValueError) as exc:
            raise ConnectorError(
                f"invalid chunk_bytes: {config.get('chunk_bytes')!r}"
            ) from exc
        if chunk_bytes <= 0:
            raise ConnectorError(
                f"invalid chunk_bytes: {chunk_bytes!r}"
            )

        def chunks() -> Iterator[bytes]:
            try:
                with path.open("rb") as handle:
                    while True:
                        chunk = handle.read(chunk_bytes)
                        if not chunk:
                            return
                        yield chunk
            except OSError as exc:
                raise ConnectorError(
                    f"cannot read {path}: {exc}"
                ) from exc

        return chunks()

    def fetch_delta(
        self, config: Mapping[str, Any], cursor: Any = None
    ) -> DeltaFetch:
        """Bytes written since ``cursor``, by offset + mtime tracking.

        The cursor is ``{"offset", "mtime_ns", "size"}`` from the last
        read.  Decision table:

        * no cursor — first read: full payload, fresh cursor;
        * size and mtime unchanged — ``"none"``, nothing to decode;
        * file grew — ``"append"`` with only the tail bytes.  The
          size-recheck after reading guards the race where a writer
          appends between stat and read;
        * file shrank, or same size with a different mtime (rewritten
          in place) — ``"full"``: append-only bookkeeping can't
          describe it, downstream state must reset.
        """
        path = self._resolve(config)
        if not path.exists():
            raise ConnectorError(f"data file not found: {path}")
        try:
            stat = path.stat()
        except OSError as exc:
            raise ConnectorError(f"cannot stat {path}: {exc}") from exc

        def _read(offset: int) -> bytes:
            try:
                with path.open("rb") as handle:
                    handle.seek(offset)
                    return handle.read()
            except OSError as exc:
                raise ConnectorError(
                    f"cannot read {path}: {exc}"
                ) from exc

        def _cursor(data_end: int, mtime_ns: int) -> dict[str, int]:
            return {
                "offset": data_end,
                "mtime_ns": mtime_ns,
                "size": data_end,
            }

        if isinstance(cursor, Mapping) and "offset" in cursor:
            offset = int(cursor["offset"])
            mtime_ns = int(cursor.get("mtime_ns", -1))
            if (
                stat.st_size == offset
                and stat.st_mtime_ns == mtime_ns
            ):
                return DeltaFetch(
                    mode="none",
                    cursor=dict(cursor),
                    metadata={"path": str(path)},
                )
            if stat.st_size > offset:
                tail = _read(offset)
                return DeltaFetch(
                    mode="append",
                    cursor=_cursor(offset + len(tail), stat.st_mtime_ns),
                    payload=tail,
                    metadata={
                        "path": str(path),
                        "size": len(tail),
                        "offset": offset,
                    },
                )
        payload = _read(0)
        return DeltaFetch(
            mode="full",
            cursor=_cursor(len(payload), stat.st_mtime_ns),
            payload=payload,
            metadata={"path": str(path), "size": len(payload)},
        )

    def estimate_bytes(self, config: Mapping[str, Any]) -> int | None:
        """File size by stat — never reads the payload."""
        try:
            return self._resolve(config).stat().st_size
        except (ConnectorError, OSError):
            return None

    def store(self, config: Mapping[str, Any], payload: bytes) -> None:
        path = self._resolve(config)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_bytes(payload)
        except OSError as exc:
            raise ConnectorError(f"cannot write {path}: {exc}") from exc

    @staticmethod
    def _resolve(config: Mapping[str, Any]) -> Path:
        source = config.get("source")
        if not source:
            raise ConnectorError("file connector needs a 'source' path")
        path = Path(str(source))
        base_dir = config.get("base_dir")
        if base_dir and not path.is_absolute():
            path = Path(str(base_dir)) / path
        return path
