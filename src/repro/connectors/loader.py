"""Data-object loading: connector + format + schema → Table.

This is the runtime behind the flow file's data section: given a data
object's configuration (protocol, source, format, payload options) and its
declared schema, produce a table.  Protocol defaults follow the paper's
examples — a bare ``source: file.csv`` implies the file protocol, a
``source: https://...`` URL implies HTTP.

Two ingestion fast paths live here:

* **Streaming decode** — a data object configured with ``stream: true``
  whose connector exposes ``fetch_chunks`` and whose format sets
  ``supports_chunks`` decodes from an iterator of byte chunks, never
  holding the raw payload in memory.
* **Parallel loading** — :meth:`DataObjectLoader.load_many` fetches and
  decodes several independent data objects on a
  :class:`~repro.engine.scheduler.WorkerPool` (thread- or
  process-backed; see ``docs/parallelism.md``).  Workers run pure
  fetch+decode; the coordinator resolves protocols and formats in spec
  order up front and replays spans, metrics and the first failure in
  that same canonical order, so results *and telemetry* are identical
  at every parallelism and executor (span durations for the replayed
  ``connector.fetch``/``format.decode`` spans are nominal — the
  worker-measured wall times feed the duration histograms instead).
  Jobs whose sources all estimate under
  :attr:`DataObjectLoader.small_job_bytes` skip the pool entirely:
  sequential loading wins below a few MB per source, so the fallback
  (logged, counted in ``repro_ingest_parallel_fallback_total``) is
  what makes ``parallelism`` safe to leave on.
"""

from __future__ import annotations

import logging
import os
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Iterator, Mapping, Sequence

from repro.connectors.registry import (
    ConnectorRegistry,
    default_connector_registry,
)
from repro.data import Schema, Table
from repro.engine.scheduler import ProcessPool, WorkerPool
from repro.errors import ConnectorError
from repro.formats.registry import FormatRegistry, default_format_registry
from repro.observability import Observability
from repro.observability.instruments import (
    CONNECTOR_BYTES,
    CONNECTOR_FETCH_DURATION,
    CONNECTOR_FETCHES,
    INGEST_PARALLEL_FALLBACK,
    record_encode_fallbacks,
    record_ingest,
)

_LOG = logging.getLogger("repro.ingest")


@dataclass
class DeltaLoad:
    """What :meth:`DataObjectLoader.load_delta` produced for one source.

    ``mode`` mirrors the connector's delta modes:

    * ``"none"`` — nothing changed; ``table`` is ``None``.
    * ``"append"`` — ``table`` holds *only the new rows* since the last
      state.
    * ``"full"`` — ``table`` holds the whole current source (first load,
      rewritten file, or a connector/format without delta support).

    ``state`` is the opaque token to hand back on the next call; callers
    persist it per source between refresh cycles.
    """

    mode: str
    table: Table | None
    state: dict[str, Any] | None = field(default=None)


class DataObjectLoader:
    """Loads (and stores) data objects through the registries.

    Every fetch runs inside a ``connector.fetch`` span and records
    per-protocol fetch counts, latency histograms and payload bytes
    into the observability registry; every decode runs inside a
    ``format.decode`` span and records per-format row counts and
    decode latency.
    """

    #: per-source size under which :meth:`load_many` skips the pool —
    #: fetch+decode of a few MB finishes before a pool amortizes its
    #: startup, so small jobs run sequentially (0 disables the check)
    DEFAULT_SMALL_JOB_BYTES = 8 << 20

    def __init__(
        self,
        connectors: ConnectorRegistry | None = None,
        formats: FormatRegistry | None = None,
        observability: Observability | None = None,
    ):
        self.connectors = connectors or default_connector_registry()
        self.formats = formats or default_format_registry()
        self.observability = observability or Observability()
        # the instance default is overridable per call (load_many),
        # per process (REPRO_SMALL_JOB_BYTES), or by assignment
        self.small_job_bytes = default_small_job_bytes()

    def load(self, schema: Schema, config: Mapping[str, Any]) -> Table:
        """Fetch + decode a data object into a table."""
        protocol = infer_protocol(config)
        connector = self.connectors.get(protocol)
        stream = self._stream_plan(connector, config)
        if stream is not None:
            return self._load_streaming(
                schema, config, protocol, connector, *stream
            )
        obs = self.observability
        with obs.tracer.span(
            "connector.fetch",
            protocol=protocol,
            source=str(config.get("source", "")),
        ) as span:
            result = connector.fetch(config)
            payload_bytes = (
                len(result.payload) if result.payload is not None else 0
            )
            span.set(bytes=payload_bytes)
        self._record_fetch(protocol, span.duration, payload_bytes)
        if result.table is not None:
            return _align(result.table, schema)
        format_name = infer_format(config)
        fmt = self.formats.get(format_name)
        with obs.tracer.span(
            "format.decode", format=format_name
        ) as decode_span:
            table = fmt.decode(
                result.payload or b"", schema, options=config
            )
            decode_span.set(rows=table.num_rows)
        record_ingest(
            obs.metrics, format_name, table.num_rows, decode_span.duration
        )
        record_encode_fallbacks(
            obs.metrics, format_name, table.encode_fallbacks
        )
        return table

    def load_delta(
        self,
        schema: Schema,
        config: Mapping[str, Any],
        state: Mapping[str, Any] | None = None,
    ) -> DeltaLoad:
        """Load only what changed since ``state`` (delta ingestion).

        The delta path needs a delta-capable connector (file: byte
        offset + mtime cursors) *and* a delta-capable format (a byte
        suffix decodes to the trailing rows: CSV, JSON lines).  Anything
        else degrades to a plain :meth:`load` reported as ``"full"``
        with no state, so callers can probe any source safely.

        Appended bytes are decoded as ``preamble + tail`` — the header
        captured at the last full read prefixed to the new bytes — so
        the *unchanged* decode path produces exactly the appended rows,
        byte-identically to how those rows decode inside a full read.
        """
        protocol = infer_protocol(config)
        connector = self.connectors.get(protocol)
        format_name = infer_format(config)
        try:
            fmt = self.formats.get(format_name)
        except Exception:
            fmt = None
        if (
            not getattr(connector, "supports_delta", False)
            or fmt is None
            or not getattr(fmt, "supports_delta", False)
        ):
            return DeltaLoad(
                mode="full", table=self.load(schema, config), state=None
            )
        state = dict(state or {})
        if not state.get("aligned", True):
            # The last read ended mid-line (no trailing newline), so an
            # appended suffix would join that partial row.  Dropping the
            # cursor turns the next fetch into a full read.
            state.pop("cursor", None)
        obs = self.observability
        with obs.tracer.span(
            "connector.fetch",
            protocol=protocol,
            source=str(config.get("source", "")),
            delta=True,
        ) as span:
            delta = connector.fetch_delta(config, state.get("cursor"))
            payload_len = (
                len(delta.payload) if delta.payload is not None else 0
            )
            span.set(bytes=payload_len, mode=delta.mode)
        self._record_fetch(protocol, span.duration, payload_len)
        if delta.mode == "none":
            return DeltaLoad(mode="none", table=None, state=state)
        if delta.mode == "append":
            preamble = state.get("preamble", b"")
            payload = preamble + (delta.payload or b"")
        else:
            payload = delta.payload or b""
            state["preamble"] = payload[
                : fmt.delta_preamble(payload, options=config)
            ]
        with obs.tracer.span(
            "format.decode", format=format_name
        ) as decode_span:
            table = fmt.decode(payload, schema, options=config)
            decode_span.set(rows=table.num_rows)
        record_ingest(
            obs.metrics, format_name, table.num_rows, decode_span.duration
        )
        record_encode_fallbacks(
            obs.metrics, format_name, table.encode_fallbacks
        )
        state["cursor"] = delta.cursor
        raw = delta.payload or b""
        state["aligned"] = (not raw) or raw.endswith(b"\n")
        return DeltaLoad(mode=delta.mode, table=table, state=state)

    def load_many(
        self,
        specs: Sequence[tuple[Schema, Mapping[str, Any]]],
        parallelism: int = 1,
        executor: str = "threads",
        pool: ProcessPool | None = None,
        small_job_bytes: int | None = None,
    ) -> list[Table]:
        """Load several data objects, optionally concurrently.

        ``specs`` is a sequence of ``(schema, config)`` pairs; tables
        come back in spec order.  Protocols, connectors and stream plans
        resolve in spec order before any worker starts; workers run pure
        fetch+decode with no tracer or metrics access (each unit returns
        its ``(state, table, error)`` triple, so nothing depends on
        shared memory and the ``processes`` executor works unchanged);
        the coordinator then replays each spec's spans and metrics — and
        re-raises the first failure inside the span it escaped from — in
        canonical spec order.  Tables, span trees and metric counters
        are therefore identical at every ``parallelism`` and
        ``executor``.

        One deliberate exception: when every source's estimated payload
        is under :attr:`small_job_bytes`, a ``parallelism > 1`` call
        falls back to sequential loading (pool startup would cost more
        than it saves — the recorded 1145 ms-vs-973 ms regression) and
        increments ``repro_ingest_parallel_fallback_total``.  That
        counter is the only telemetry allowed to differ between
        parallelism settings; set ``small_job_bytes = 0`` to disable
        the fallback (the determinism tests do).

        ``small_job_bytes`` (``None`` = this loader's configured
        default) overrides the threshold for one call — the CLI
        ``--small-job-bytes`` flag and the REST ``?small_job_bytes=``
        parameter land here.  ``pool`` lends a warm
        :class:`~repro.engine.scheduler.ProcessPool` for the
        ``processes`` executor; without one the cold fork path runs as
        before.
        """
        specs = list(specs)
        if not specs:
            return []
        plans = [
            self._plan_spec(schema, config) for schema, config in specs
        ]
        threshold = (
            self.small_job_bytes
            if small_job_bytes is None
            else max(0, int(small_job_bytes))
        )
        reason = self._sequential_fallback_reason(
            plans, parallelism, threshold
        )
        if reason is not None:
            _LOG.info("parallel loading fell back to sequential: %s", reason)
            self.observability.metrics.counter(
                INGEST_PARALLEL_FALLBACK,
                "Parallel load_many calls that ran sequentially",
            ).inc(reason="small-job")
            parallelism = 1
        workers = WorkerPool(parallelism, executor=executor, pool=pool)
        thunks = [_LoadUnit(plan, self.formats) for plan in plans]
        tables: list[Table] = []
        for plan, outcome in zip(plans, workers.map_ordered(thunks)):
            if outcome.failed:
                # The unit itself never raises — this is executor-level
                # breakage (lost worker, transport): surface it as a
                # fetch-phase failure so it lands inside a span.
                state, table, error = _fresh_state(), None, outcome.error
            else:
                state, table, error = outcome.value
            tables.append(self._replay_unit(plan, state, table, error))
        return tables

    def _sequential_fallback_reason(
        self,
        plans: Sequence[Mapping[str, Any]],
        parallelism: int,
        threshold: int | None = None,
    ) -> str | None:
        """Why a parallel load should run sequentially, or None.

        Only trips when *every* source has a known estimate below the
        threshold — an unknown size (HTTP, JDBC) is assumed large
        enough that fetch latency overlaps usefully.
        """
        if parallelism <= 1 or len(plans) <= 1:
            return None
        if threshold is None:
            threshold = self.small_job_bytes
        if threshold <= 0:
            return None
        largest = 0
        for plan in plans:
            estimate = plan["connector"].estimate_bytes(plan["config"])
            if estimate is None or estimate >= threshold:
                return None
            largest = max(largest, estimate)
        return (
            f"all {len(plans)} sources estimate below the "
            f"{threshold}-byte small-job threshold (largest ~{largest})"
        )

    def save(self, table: Table, config: Mapping[str, Any]) -> None:
        """Encode + store a sink table."""
        protocol = infer_protocol(config)
        connector = self.connectors.get(protocol)
        # JDBC writes structured rows; everything else writes a payload.
        store_table = getattr(connector, "store_table", None)
        if store_table is not None and protocol == "jdbc":
            store_table(config, table)
            return
        fmt = self.formats.get(infer_format(config))
        connector.store(config, fmt.encode(table, options=config))

    # -- streaming fast path ---------------------------------------------

    def _stream_plan(
        self, connector: Any, config: Mapping[str, Any]
    ) -> tuple[str, Any] | None:
        """``(format_name, fmt)`` when this data object stream-decodes.

        Streaming is opt-in (``stream: true``) and requires a chunked
        connector and a chunk-capable format; anything else — including
        an unknown format name, whose error belongs on the whole-payload
        path — falls back to whole-payload loading.
        """
        if not _as_bool(config.get("stream", False)):
            return None
        if getattr(connector, "fetch_chunks", None) is None:
            return None
        format_name = infer_format(config)
        try:
            fmt = self.formats.get(format_name)
        except Exception:
            return None
        if not fmt.supports_chunks:
            return None
        return format_name, fmt

    def _load_streaming(
        self,
        schema: Schema,
        config: Mapping[str, Any],
        protocol: str,
        connector: Any,
        format_name: str,
        fmt: Any,
    ) -> Table:
        obs = self.observability
        with obs.tracer.span(
            "connector.fetch",
            protocol=protocol,
            source=str(config.get("source", "")),
        ) as fetch_span:
            chunks = connector.fetch_chunks(config)
        self._record_fetch(protocol, fetch_span.duration, 0)
        counted = _CountingChunks(chunks)
        with obs.tracer.span(
            "format.decode", format=format_name
        ) as decode_span:
            table = fmt.decode(counted, schema, options=config)
            decode_span.set(rows=table.num_rows)
        # Byte count is only known once the decoder drained the stream;
        # span attributes are read at trace() time, so setting it after
        # the span closed is equivalent.
        fetch_span.set(bytes=counted.total)
        self._record_bytes(protocol, counted.total)
        record_ingest(
            obs.metrics, format_name, table.num_rows, decode_span.duration
        )
        record_encode_fallbacks(
            obs.metrics, format_name, table.encode_fallbacks
        )
        return table

    # -- parallel loading ------------------------------------------------

    def _plan_spec(
        self, schema: Schema, config: Mapping[str, Any]
    ) -> dict[str, Any]:
        """Coordinator-side resolution, in canonical spec order."""
        protocol = infer_protocol(config)
        connector = self.connectors.get(protocol)
        return {
            "schema": schema,
            "config": config,
            "protocol": protocol,
            "connector": connector,
            "source": str(config.get("source", "")),
            "stream": self._stream_plan(connector, config),
        }

    def _load_unit(
        self, plan: Mapping[str, Any]
    ) -> tuple[dict[str, Any], Table | None, Exception | None]:
        """Pure fetch+decode for one spec (worker-side; no telemetry)."""
        return _LoadUnit(plan, self.formats)()

    def _fetch_decode(
        self, plan: Mapping[str, Any], state: dict[str, Any]
    ) -> Table:
        return _fetch_decode(plan, state, self.formats)

    def _replay_unit(
        self,
        plan: Mapping[str, Any],
        state: Mapping[str, Any],
        table: Table | None,
        error: Exception | None,
    ) -> Table:
        """Emit one spec's telemetry exactly as :meth:`load` would.

        A captured worker failure re-raises inside the span it escaped
        from (fetch/decode) or between spans (resolve/align), so traces
        carry the same ``error`` attributes as sequential loading.
        """
        obs = self.observability
        protocol = plan["protocol"]
        streaming = plan["stream"] is not None
        failed_phase = state["phase"] if error is not None else None
        with obs.tracer.span(
            "connector.fetch", protocol=protocol, source=plan["source"]
        ) as fetch_span:
            if failed_phase == "fetch":
                raise error
            if not streaming:
                fetch_span.set(bytes=state["bytes"])
        self._record_fetch(
            protocol,
            state["fetch_seconds"],
            0 if streaming else state["bytes"],
        )
        if failed_phase in ("resolve", "align"):
            raise error
        if state["phase"] == "align":
            return table
        with obs.tracer.span(
            "format.decode", format=state["format"]
        ) as decode_span:
            if failed_phase == "decode":
                raise error
            decode_span.set(rows=state["rows"])
        if streaming:
            fetch_span.set(bytes=state["bytes"])
            self._record_bytes(protocol, state["bytes"])
        record_ingest(
            obs.metrics,
            state["format"],
            state["rows"],
            state["decode_seconds"],
        )
        return table

    # -- shared metric shapes --------------------------------------------

    def _record_fetch(
        self, protocol: str, seconds: float, payload_bytes: int
    ) -> None:
        metrics = self.observability.metrics
        metrics.counter(
            CONNECTOR_FETCHES, "Data-object fetches by protocol"
        ).inc(protocol=protocol)
        metrics.histogram(
            CONNECTOR_FETCH_DURATION, "Connector fetch wall time"
        ).observe(seconds, protocol=protocol)
        if payload_bytes:
            self._record_bytes(protocol, payload_bytes)

    def _record_bytes(self, protocol: str, payload_bytes: int) -> None:
        if not payload_bytes:
            return
        self.observability.metrics.counter(
            CONNECTOR_BYTES, "Raw payload bytes fetched by protocol"
        ).inc(payload_bytes, protocol=protocol)


def default_small_job_bytes() -> int:
    """The small-job threshold for new loaders.

    ``REPRO_SMALL_JOB_BYTES`` overrides the built-in 8 MiB default per
    process (0 disables the sequential fallback); an unparsable value
    is ignored rather than failing loader construction.
    """
    raw = os.environ.get("REPRO_SMALL_JOB_BYTES")
    if raw is not None:
        try:
            return max(0, int(raw))
        except ValueError:
            pass
    return DataObjectLoader.DEFAULT_SMALL_JOB_BYTES


class _LoadUnit:
    """One spec's pure fetch+decode, as a picklable callable.

    Module-level (rather than a bound-method closure) so the warm
    process pool can pickle it into an already-forked worker; carries
    only the resolved plan and the format registry.  Returns
    ``(state, table, error)`` — everything the coordinator needs to
    replay telemetry travels in the return value, never through shared
    state, so the unit behaves identically on every executor.
    Exceptions are captured (not raised) because the half-filled
    ``state`` must survive for the replay to raise them inside the
    right span.
    """

    __slots__ = ("plan", "formats")

    def __init__(self, plan: Mapping[str, Any], formats: FormatRegistry):
        self.plan = plan
        self.formats = formats

    def __call__(
        self,
    ) -> tuple[dict[str, Any], Table | None, Exception | None]:
        state = _fresh_state()
        try:
            return state, _fetch_decode(self.plan, state, self.formats), None
        except Exception as exc:
            return state, None, exc


def _fetch_decode(
    plan: Mapping[str, Any],
    state: dict[str, Any],
    formats: FormatRegistry,
) -> Table:
    schema = plan["schema"]
    config = plan["config"]
    connector = plan["connector"]
    if plan["stream"] is not None:
        format_name, fmt = plan["stream"]
        state["format"] = format_name
        start = perf_counter()
        chunks = connector.fetch_chunks(config)
        state["fetch_seconds"] = perf_counter() - start
        counted = _CountingChunks(chunks)
        state["phase"] = "decode"
        start = perf_counter()
        table = fmt.decode(counted, schema, options=config)
        state["decode_seconds"] = perf_counter() - start
        state["bytes"] = counted.total
        state["rows"] = table.num_rows
        return table
    start = perf_counter()
    result = connector.fetch(config)
    state["fetch_seconds"] = perf_counter() - start
    state["bytes"] = (
        len(result.payload) if result.payload is not None else 0
    )
    if result.table is not None:
        state["phase"] = "align"
        return _align(result.table, schema)
    state["phase"] = "resolve"
    format_name = infer_format(config)
    state["format"] = format_name
    fmt = formats.get(format_name)
    state["phase"] = "decode"
    start = perf_counter()
    table = fmt.decode(result.payload or b"", schema, options=config)
    state["decode_seconds"] = perf_counter() - start
    state["rows"] = table.num_rows
    return table


def _fresh_state() -> dict[str, Any]:
    """Per-spec slots a worker fills for the coordinator's replay."""
    return {
        "phase": "fetch",
        "bytes": 0,
        "rows": 0,
        "fetch_seconds": 0.0,
        "decode_seconds": 0.0,
        "format": None,
    }


class _CountingChunks:
    """Chunk-iterator wrapper counting bytes as the decoder pulls them."""

    __slots__ = ("_chunks", "total")

    def __init__(self, chunks: Iterator[bytes]):
        self._chunks = chunks
        self.total = 0

    def __iter__(self) -> Iterator[bytes]:
        for chunk in self._chunks:
            self.total += len(chunk)
            yield chunk


def infer_protocol(config: Mapping[str, Any]) -> str:
    """Decide which connector serves a data object."""
    protocol = config.get("protocol")
    if protocol:
        return str(protocol).lower()
    if config.get("rows") is not None:
        return "inline"
    source = str(config.get("source", ""))
    if source.startswith("https://"):
        return "https"
    if source.startswith("http://"):
        return "http"
    if source.startswith("ftp://"):
        return "ftp"
    if source.startswith("jdbc:") or config.get("query") or config.get("table"):
        return "jdbc"
    if source:
        return "file"
    raise ConnectorError(
        "data object has no 'source', 'rows' or 'protocol' configuration"
    )


def infer_format(config: Mapping[str, Any]) -> str:
    """Decide the payload format, from ``format:`` or the source suffix."""
    fmt = config.get("format")
    if fmt:
        return str(fmt).lower()
    source = str(config.get("source", "")).split("?", 1)[0].lower()
    for suffix, name in (
        (".csv", "csv"),
        (".tsv", "csv"),
        (".json", "json"),
        (".jsonl", "jsonl"),
        (".xml", "xml"),
        (".avro", "avro"),
        (".txt", "csv"),
    ):
        if source.endswith(suffix):
            return name
    return "csv"


def _align(table: Table, schema: Schema) -> Table:
    """Project/rename a structured result onto the declared schema.

    JDBC results come back with database column names; the declared schema
    may rename them via ``=>`` mappings or select a subset.  Runs column
    at a time: present source columns are adopted as copies, absent ones
    become null columns.
    """
    if table.schema.names == schema.names:
        return table
    available = set(table.schema.names)
    length = table.num_rows
    columns: dict[str, list[Any]] = {}
    for column in schema:
        key = column.source_path or column.name
        if key in available:
            columns[column.name] = list(table.column(key))
        else:
            columns[column.name] = [None] * length
    return Table.from_columns(
        schema, columns, length if schema.names else 0
    )


def _as_bool(value: Any) -> bool:
    if isinstance(value, str):
        return value.strip().lower() in ("true", "yes", "1")
    return bool(value)
