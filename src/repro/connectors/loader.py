"""Data-object loading: connector + format + schema → Table.

This is the runtime behind the flow file's data section: given a data
object's configuration (protocol, source, format, payload options) and its
declared schema, produce a table.  Protocol defaults follow the paper's
examples — a bare ``source: file.csv`` implies the file protocol, a
``source: https://...`` URL implies HTTP.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.connectors.registry import (
    ConnectorRegistry,
    default_connector_registry,
)
from repro.data import Schema, Table
from repro.errors import ConnectorError
from repro.formats.registry import FormatRegistry, default_format_registry
from repro.observability import Observability
from repro.observability.instruments import (
    CONNECTOR_BYTES,
    CONNECTOR_FETCH_DURATION,
    CONNECTOR_FETCHES,
)


class DataObjectLoader:
    """Loads (and stores) data objects through the registries.

    Every fetch runs inside a ``connector.fetch`` span and records
    per-protocol fetch counts, latency histograms and payload bytes
    into the observability registry.
    """

    def __init__(
        self,
        connectors: ConnectorRegistry | None = None,
        formats: FormatRegistry | None = None,
        observability: Observability | None = None,
    ):
        self.connectors = connectors or default_connector_registry()
        self.formats = formats or default_format_registry()
        self.observability = observability or Observability()

    def load(self, schema: Schema, config: Mapping[str, Any]) -> Table:
        """Fetch + decode a data object into a table."""
        protocol = infer_protocol(config)
        connector = self.connectors.get(protocol)
        obs = self.observability
        with obs.tracer.span(
            "connector.fetch",
            protocol=protocol,
            source=str(config.get("source", "")),
        ) as span:
            result = connector.fetch(config)
            payload_bytes = (
                len(result.payload) if result.payload is not None else 0
            )
            span.set(bytes=payload_bytes)
        obs.metrics.counter(
            CONNECTOR_FETCHES, "Data-object fetches by protocol"
        ).inc(protocol=protocol)
        obs.metrics.histogram(
            CONNECTOR_FETCH_DURATION, "Connector fetch wall time"
        ).observe(span.duration, protocol=protocol)
        if payload_bytes:
            obs.metrics.counter(
                CONNECTOR_BYTES, "Raw payload bytes fetched by protocol"
            ).inc(payload_bytes, protocol=protocol)
        if result.table is not None:
            return _align(result.table, schema)
        format_name = infer_format(config)
        fmt = self.formats.get(format_name)
        with obs.tracer.span("format.decode", format=format_name):
            return fmt.decode(
                result.payload or b"", schema, options=config
            )

    def save(self, table: Table, config: Mapping[str, Any]) -> None:
        """Encode + store a sink table."""
        protocol = infer_protocol(config)
        connector = self.connectors.get(protocol)
        # JDBC writes structured rows; everything else writes a payload.
        store_table = getattr(connector, "store_table", None)
        if store_table is not None and protocol == "jdbc":
            store_table(config, table)
            return
        fmt = self.formats.get(infer_format(config))
        connector.store(config, fmt.encode(table, options=config))


def infer_protocol(config: Mapping[str, Any]) -> str:
    """Decide which connector serves a data object."""
    protocol = config.get("protocol")
    if protocol:
        return str(protocol).lower()
    if config.get("rows") is not None:
        return "inline"
    source = str(config.get("source", ""))
    if source.startswith("https://"):
        return "https"
    if source.startswith("http://"):
        return "http"
    if source.startswith("ftp://"):
        return "ftp"
    if source.startswith("jdbc:") or config.get("query") or config.get("table"):
        return "jdbc"
    if source:
        return "file"
    raise ConnectorError(
        "data object has no 'source', 'rows' or 'protocol' configuration"
    )


def infer_format(config: Mapping[str, Any]) -> str:
    """Decide the payload format, from ``format:`` or the source suffix."""
    fmt = config.get("format")
    if fmt:
        return str(fmt).lower()
    source = str(config.get("source", "")).split("?", 1)[0].lower()
    for suffix, name in (
        (".csv", "csv"),
        (".tsv", "csv"),
        (".json", "json"),
        (".jsonl", "jsonl"),
        (".xml", "xml"),
        (".avro", "avro"),
        (".txt", "csv"),
    ):
        if source.endswith(suffix):
            return name
    return "csv"


def _align(table: Table, schema: Schema) -> Table:
    """Project/rename a structured result onto the declared schema.

    JDBC results come back with database column names; the declared schema
    may rename them via ``=>`` mappings or select a subset.
    """
    if table.schema.names == schema.names:
        return table
    records = []
    for row in table.rows():
        records.append(
            {
                column.name: row.get(column.source_path or column.name)
                for column in schema
            }
        )
    return Table.from_rows(schema, records)
