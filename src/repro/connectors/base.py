"""Connector extension API (paper §4.2, "Connectors").

A connector fetches the raw payload for a data object given its flow-file
configuration (``source:``, ``protocol:`` and protocol parameters).  Some
connectors (JDBC) produce rows directly instead of bytes; the
:class:`FetchResult` union carries either.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.data import Table


@dataclass
class FetchResult:
    """What a connector returned.

    Exactly one of ``payload`` (raw bytes, to be decoded by a format) or
    ``table`` (already-structured rows, e.g. from JDBC) is set.
    ``metadata`` carries transport details (status code, content type...)
    surfaced in execution logs.
    """

    payload: bytes | None = None
    table: Table | None = None
    metadata: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if (self.payload is None) == (self.table is None):
            raise ValueError(
                "FetchResult needs exactly one of payload or table"
            )


class Connector(abc.ABC):
    """Base class for protocol connectors."""

    #: Protocol name used in the flow file (``protocol: http``).
    name: str = ""

    @abc.abstractmethod
    def fetch(self, config: Mapping[str, Any]) -> FetchResult:
        """Fetch the payload described by the data-object ``config``."""

    def store(self, config: Mapping[str, Any], payload: bytes) -> None:
        """Write a sink payload.  Optional; default raises."""
        raise NotImplementedError(
            f"connector {self.name!r} does not support writes"
        )

    def estimate_bytes(self, config: Mapping[str, Any]) -> int | None:
        """Cheap payload-size estimate, or None when unknowable.

        Used by :meth:`~repro.connectors.loader.DataObjectLoader.load_many`
        to skip pool overhead when every source is small; must never
        fetch — a stat call is the ceiling.  ``None`` (the default)
        means "unknown, assume large enough to parallelize".
        """
        return None

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
