"""Connector extension API (paper §4.2, "Connectors").

A connector fetches the raw payload for a data object given its flow-file
configuration (``source:``, ``protocol:`` and protocol parameters).  Some
connectors (JDBC) produce rows directly instead of bytes; the
:class:`FetchResult` union carries either.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.data import Table
from repro.errors import ConnectorError


@dataclass
class FetchResult:
    """What a connector returned.

    Exactly one of ``payload`` (raw bytes, to be decoded by a format) or
    ``table`` (already-structured rows, e.g. from JDBC) is set.
    ``metadata`` carries transport details (status code, content type...)
    surfaced in execution logs.
    """

    payload: bytes | None = None
    table: Table | None = None
    metadata: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if (self.payload is None) == (self.table is None):
            raise ValueError(
                "FetchResult needs exactly one of payload or table"
            )


@dataclass
class DeltaFetch:
    """What :meth:`Connector.fetch_delta` returned.

    ``mode`` is one of:

    * ``"none"`` — the source is unchanged since ``cursor``; ``payload``
      is ``None`` and the caller can skip decoding entirely.
    * ``"append"`` — ``payload`` holds only the bytes written *after*
      the cursor position (the new rows).
    * ``"full"`` — the source changed in a way the connector cannot
      express as an append (truncated, rewritten in place); ``payload``
      holds the whole current payload and downstream state must reset.

    ``cursor`` is the new opaque cursor to hand back on the next call.
    """

    mode: str
    cursor: Any
    payload: bytes | None = None
    metadata: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.mode not in ("none", "append", "full"):
            raise ValueError(f"invalid delta mode {self.mode!r}")
        if (self.payload is None) != (self.mode == "none"):
            raise ValueError(
                "DeltaFetch payload must be set exactly when mode != 'none'"
            )


class Connector(abc.ABC):
    """Base class for protocol connectors."""

    #: Protocol name used in the flow file (``protocol: http``).
    name: str = ""

    #: Whether :meth:`fetch_delta` is implemented for real.  Connectors
    #: without a cheap change-detection story leave this False and the
    #: loader falls back to a full reload per refresh.
    supports_delta: bool = False

    @abc.abstractmethod
    def fetch(self, config: Mapping[str, Any]) -> FetchResult:
        """Fetch the payload described by the data-object ``config``."""

    def fetch_delta(
        self, config: Mapping[str, Any], cursor: Any = None
    ) -> DeltaFetch:
        """Fetch only what changed since ``cursor``.

        The default implementation is the honest fallback: every call is
        a full fetch with a ``None`` cursor, so callers that probe
        blindly still get correct (if not incremental) behavior.
        """
        result = self.fetch(config)
        if result.payload is None:
            raise ConnectorError(
                f"connector {self.name!r} returns tables, not payloads; "
                "delta fetch is undefined"
            )
        return DeltaFetch(
            mode="full",
            cursor=None,
            payload=result.payload,
            metadata=dict(result.metadata),
        )

    def store(self, config: Mapping[str, Any], payload: bytes) -> None:
        """Write a sink payload.  Optional; default raises."""
        raise NotImplementedError(
            f"connector {self.name!r} does not support writes"
        )

    def estimate_bytes(self, config: Mapping[str, Any]) -> int | None:
        """Cheap payload-size estimate, or None when unknowable.

        Used by :meth:`~repro.connectors.loader.DataObjectLoader.load_many`
        to skip pool overhead when every source is small; must never
        fetch — a stat call is the ceiling.  ``None`` (the default)
        means "unknown, assume large enough to parallelize".
        """
        return None

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
