"""FTP connector with an in-process simulated server.

Models the subset of FTP a data pipeline uses: CWD-free absolute paths,
RETR (fetch) and STOR (store), with per-user credentials.  The simulated
server also backs the platform's SFTP-style extension-upload interface
(paper §4.3.2) in :mod:`repro.extensions`.
"""

from __future__ import annotations

import random
from typing import Any, Mapping
from urllib.parse import urlsplit

from repro.connectors.base import Connector, FetchResult
from repro.errors import (
    ConnectorAuthError,
    ConnectorError,
    ConnectorNotFoundError,
    TransientConnectorError,
)
from repro.resilience import Clock, RetryPolicy, SimulatedClock


class SimulatedFtpServer:
    """An in-memory path → bytes store with credential checks.

    Failures are *classified*: a bad login raises
    :class:`ConnectorAuthError` and a missing file
    :class:`ConnectorNotFoundError` — both permanent, so the retry
    layer fails fast instead of pointlessly re-logging-in.
    ``set_flaky`` injects seeded transient connection drops
    (:class:`TransientConnectorError`, retryable) to exercise the
    connector's retry path.
    """

    def __init__(self, users: Mapping[str, str] | None = None):
        # Default account mirrors the anonymous-FTP convention.
        self._users = dict(users or {"anonymous": ""})
        self._files: dict[str, bytes] = {}
        self._flaky_rate = 0.0
        self._random = random.Random(0)

    def add_user(self, username: str, password: str) -> None:
        self._users[username] = password

    def put(self, path: str, payload: bytes) -> None:
        self._files[_normalize(path)] = payload

    def set_flaky(self, rate: float, seed: int = 0) -> None:
        """Drop connections with probability ``rate`` (seeded)."""
        self._flaky_rate = rate
        self._random = random.Random(seed)

    def authenticate(self, username: str, password: str) -> bool:
        return self._users.get(username) == password

    def _maybe_drop(self, path: str) -> None:
        if self._flaky_rate and self._random.random() < self._flaky_rate:
            raise TransientConnectorError(
                f"FTP connection dropped while transferring {path} "
                f"(simulated)"
            )

    def retr(self, path: str, username: str, password: str) -> bytes:
        if not self.authenticate(username, password):
            raise ConnectorAuthError(
                f"FTP login failed for {username!r} (permanent; "
                f"not retried)"
            )
        key = _normalize(path)
        if key not in self._files:
            raise ConnectorNotFoundError(
                f"FTP file not found: {path} (permanent; not retried)"
            )
        self._maybe_drop(path)
        return self._files[key]

    def stor(
        self, path: str, payload: bytes, username: str, password: str
    ) -> None:
        if not self.authenticate(username, password):
            raise ConnectorAuthError(
                f"FTP login failed for {username!r} (permanent; "
                f"not retried)"
            )
        self._maybe_drop(path)
        self._files[_normalize(path)] = payload

    def listdir(self, prefix: str) -> list[str]:
        prefix = _normalize(prefix).rstrip("/") + "/"
        return sorted(
            path for path in self._files if path.startswith(prefix)
        )


def _normalize(path: str) -> str:
    return "/" + path.strip("/")


class FtpConnector(Connector):
    name = "ftp"

    def __init__(
        self,
        server: SimulatedFtpServer | None = None,
        retry_policy: RetryPolicy | None = None,
        clock: Clock | None = None,
    ):
        self._server = server or SimulatedFtpServer()
        self._policy = retry_policy or RetryPolicy(
            max_attempts=3, base_delay=0.1
        )
        self._clock = clock or SimulatedClock()

    @property
    def server(self) -> SimulatedFtpServer:
        return self._server

    def _policy_for(self, config: Mapping[str, Any]) -> RetryPolicy:
        if "retries" in config:
            return self._policy.with_attempts(
                max(0, int(config["retries"])) + 1
            )
        return self._policy

    def fetch(self, config: Mapping[str, Any]) -> FetchResult:
        path, username, password = self._credentials(config)
        payload = self._policy_for(config).call(
            lambda _n: self._server.retr(path, username, password),
            clock=self._clock,
            key=path,
        )
        return FetchResult(
            payload=payload, metadata={"path": path, "size": len(payload)}
        )

    def store(self, config: Mapping[str, Any], payload: bytes) -> None:
        path, username, password = self._credentials(config)
        self._policy_for(config).call(
            lambda _n: self._server.stor(
                path, payload, username, password
            ),
            clock=self._clock,
            key=path,
        )

    @staticmethod
    def _credentials(config: Mapping[str, Any]) -> tuple[str, str, str]:
        source = config.get("source")
        if not source:
            raise ConnectorError("ftp connector needs a 'source' path")
        source = str(source)
        # Accept both ftp://host/path URLs and bare paths.
        if source.startswith("ftp://"):
            parts = urlsplit(source)
            path = parts.path
        else:
            path = source
        username = str(config.get("username", "anonymous"))
        password = str(config.get("password", ""))
        return path, username, password
