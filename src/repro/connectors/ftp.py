"""FTP connector with an in-process simulated server.

Models the subset of FTP a data pipeline uses: CWD-free absolute paths,
RETR (fetch) and STOR (store), with per-user credentials.  The simulated
server also backs the platform's SFTP-style extension-upload interface
(paper §4.3.2) in :mod:`repro.extensions`.
"""

from __future__ import annotations

from typing import Any, Mapping
from urllib.parse import urlsplit

from repro.connectors.base import Connector, FetchResult
from repro.errors import ConnectorError


class SimulatedFtpServer:
    """An in-memory path → bytes store with credential checks."""

    def __init__(self, users: Mapping[str, str] | None = None):
        # Default account mirrors the anonymous-FTP convention.
        self._users = dict(users or {"anonymous": ""})
        self._files: dict[str, bytes] = {}

    def add_user(self, username: str, password: str) -> None:
        self._users[username] = password

    def put(self, path: str, payload: bytes) -> None:
        self._files[_normalize(path)] = payload

    def authenticate(self, username: str, password: str) -> bool:
        return self._users.get(username) == password

    def retr(self, path: str, username: str, password: str) -> bytes:
        if not self.authenticate(username, password):
            raise ConnectorError(f"FTP login failed for {username!r}")
        key = _normalize(path)
        if key not in self._files:
            raise ConnectorError(f"FTP file not found: {path}")
        return self._files[key]

    def stor(
        self, path: str, payload: bytes, username: str, password: str
    ) -> None:
        if not self.authenticate(username, password):
            raise ConnectorError(f"FTP login failed for {username!r}")
        self._files[_normalize(path)] = payload

    def listdir(self, prefix: str) -> list[str]:
        prefix = _normalize(prefix).rstrip("/") + "/"
        return sorted(
            path for path in self._files if path.startswith(prefix)
        )


def _normalize(path: str) -> str:
    return "/" + path.strip("/")


class FtpConnector(Connector):
    name = "ftp"

    def __init__(self, server: SimulatedFtpServer | None = None):
        self._server = server or SimulatedFtpServer()

    @property
    def server(self) -> SimulatedFtpServer:
        return self._server

    def fetch(self, config: Mapping[str, Any]) -> FetchResult:
        path, username, password = self._credentials(config)
        payload = self._server.retr(path, username, password)
        return FetchResult(
            payload=payload, metadata={"path": path, "size": len(payload)}
        )

    def store(self, config: Mapping[str, Any], payload: bytes) -> None:
        path, username, password = self._credentials(config)
        self._server.stor(path, payload, username, password)

    @staticmethod
    def _credentials(config: Mapping[str, Any]) -> tuple[str, str, str]:
        source = config.get("source")
        if not source:
            raise ConnectorError("ftp connector needs a 'source' path")
        source = str(source)
        # Accept both ftp://host/path URLs and bare paths.
        if source.startswith("ftp://"):
            parts = urlsplit(source)
            path = parts.path
        else:
            path = source
        username = str(config.get("username", "anonymous"))
        password = str(config.get("password", ""))
        return path, username, password
