"""HTTP/S connector with an in-process simulated transport.

The paper's data objects can "directly talk to the provider APIs"
(Fig. 6: a Stack Exchange GET with custom headers).  Offline, we route
requests through :class:`SimulatedHttpTransport`: a registry of URL
handlers with optional latency and fault injection (transient 5xx,
timeouts, slow responses), so retries, headers, query parameters,
pagination and error handling are all exercised exactly as they would
be against a live endpoint.

Error handling rides the shared resilience layer
(:mod:`repro.resilience`): transient failures (5xx, timeouts) retry
under a :class:`RetryPolicy` with deterministic backoff, permanent 4xx
responses fail fast, and an optional per-host circuit breaker stops
hammering a dead endpoint.

Flow-file keys honoured: ``source`` (URL), ``request_type`` (get/post),
``http_headers`` (mapping), ``body`` (POST payload), ``retries``.
"""

from __future__ import annotations

import fnmatch
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping
from urllib.parse import parse_qsl, urlsplit

from repro.connectors.base import Connector, FetchResult
from repro.errors import (
    ConnectorError,
    ConnectorNotFoundError,
    ConnectorTimeoutError,
    TransientConnectorError,
)
from repro.resilience import (
    CircuitBreaker,
    Clock,
    RetryPolicy,
    SimulatedClock,
)


@dataclass
class HttpRequest:
    """A request as seen by a simulated endpoint handler."""

    url: str
    method: str = "GET"
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes | None = None

    @property
    def path(self) -> str:
        return urlsplit(self.url).path

    @property
    def query(self) -> dict[str, str]:
        return dict(parse_qsl(urlsplit(self.url).query))


@dataclass
class HttpResponse:
    status: int = 200
    body: bytes = b""
    headers: dict[str, str] = field(default_factory=dict)


Handler = Callable[[HttpRequest], HttpResponse]


class SimulatedHttpTransport:
    """URL-pattern → handler registry standing in for the network.

    Failure injection, all deterministic via ``seed``:

    - ``failure_rate`` — probability of a transient 503;
    - ``timeout_rate`` — probability the request times out
      (:class:`ConnectorTimeoutError`, retryable);
    - ``slow_rate`` — probability of a slow response: the reply is
      correct but arrives after ``slow_seconds`` on the transport's
      clock, and carries an ``X-Simulated-Latency`` header.

    ``fail_next()`` / ``timeout_next()`` queue exact failures for
    deterministic tests (circuit-breaker transitions, retry schedules).
    """

    def __init__(
        self,
        failure_rate: float = 0.0,
        seed: int = 0,
        timeout_rate: float = 0.0,
        slow_rate: float = 0.0,
        slow_seconds: float = 1.0,
        clock: Clock | None = None,
    ):
        self._handlers: list[tuple[str, Handler]] = []
        self._failure_rate = failure_rate
        self._timeout_rate = timeout_rate
        self._slow_rate = slow_rate
        self._slow_seconds = slow_seconds
        self._random = random.Random(seed)
        self.clock = clock or SimulatedClock()
        self.request_log: list[HttpRequest] = []
        #: queued forced outcomes: an int status or the string "timeout"
        self._forced: list[int | str] = []

    def register(self, url_pattern: str, handler: Handler) -> None:
        """Route requests whose URL matches ``url_pattern`` (fnmatch glob)."""
        self._handlers.append((url_pattern, handler))

    def register_static(
        self,
        url_pattern: str,
        body: bytes,
        status: int = 200,
        content_type: str = "application/json",
    ) -> None:
        """Convenience: always answer with a fixed payload."""

        def handler(_request: HttpRequest) -> HttpResponse:
            return HttpResponse(
                status=status,
                body=body,
                headers={"Content-Type": content_type},
            )

        self.register(url_pattern, handler)

    def fail_next(self, count: int = 1, status: int = 503) -> None:
        """Force the next ``count`` requests to fail with ``status``."""
        self._forced.extend([status] * count)

    def timeout_next(self, count: int = 1) -> None:
        """Force the next ``count`` requests to time out."""
        self._forced.extend(["timeout"] * count)

    def send(self, request: HttpRequest) -> HttpResponse:
        self.request_log.append(request)
        if self._forced:
            forced = self._forced.pop(0)
            if forced == "timeout":
                raise ConnectorTimeoutError(
                    f"HTTP request to {request.url} timed out (simulated)"
                )
            return HttpResponse(
                status=int(forced), body=b"simulated forced failure"
            )
        if (
            self._timeout_rate
            and self._random.random() < self._timeout_rate
        ):
            raise ConnectorTimeoutError(
                f"HTTP request to {request.url} timed out (simulated)"
            )
        if self._failure_rate and self._random.random() < self._failure_rate:
            return HttpResponse(status=503, body=b"simulated outage")
        slow = bool(
            self._slow_rate and self._random.random() < self._slow_rate
        )
        response = None
        for pattern, handler in self._handlers:
            bare = request.url.split("?", 1)[0]
            if fnmatch.fnmatch(request.url, pattern) or fnmatch.fnmatch(
                bare, pattern
            ):
                response = handler(request)
                break
        if response is None:
            response = HttpResponse(status=404, body=b"no such endpoint")
        if slow:
            self.clock.sleep(self._slow_seconds)
            response.headers.setdefault(
                "X-Simulated-Latency", str(self._slow_seconds)
            )
        return response


class HttpConnector(Connector):
    """HTTP connector: shared retry policy + optional circuit breaker.

    ``breaker_threshold`` > 0 enables a per-host circuit breaker: that
    many consecutive transport failures (5xx/timeout) open the circuit
    and further calls to the host fail fast with ``CircuitOpenError``
    until ``breaker_reset`` seconds pass on the connector's clock.
    """

    name = "http"

    def __init__(
        self,
        transport: SimulatedHttpTransport | None = None,
        retry_policy: RetryPolicy | None = None,
        breaker_threshold: int = 0,
        breaker_reset: float = 30.0,
        clock: Clock | None = None,
    ):
        self._transport = transport or SimulatedHttpTransport()
        self._clock = clock or self._transport.clock
        self._policy = retry_policy or RetryPolicy(
            max_attempts=3, base_delay=0.1
        )
        self._breaker_threshold = breaker_threshold
        self._breaker_reset = breaker_reset
        self._breakers: dict[str, CircuitBreaker] = {}

    @property
    def transport(self) -> SimulatedHttpTransport:
        return self._transport

    def breaker_for(self, host: str) -> CircuitBreaker | None:
        """The host's circuit breaker (None when breaking is disabled)."""
        if self._breaker_threshold <= 0:
            return None
        breaker = self._breakers.get(host)
        if breaker is None:
            breaker = CircuitBreaker(
                failure_threshold=self._breaker_threshold,
                reset_timeout=self._breaker_reset,
                clock=self._clock,
                name=host,
            )
            self._breakers[host] = breaker
        return breaker

    def fetch(self, config: Mapping[str, Any]) -> FetchResult:
        url = config.get("source")
        if not url:
            raise ConnectorError("http connector needs a 'source' URL")
        url = str(url)
        method = str(config.get("request_type", "get")).upper()
        headers = {
            str(k): str(v)
            for k, v in (config.get("http_headers") or {}).items()
        }
        body = config.get("body")
        if isinstance(body, str):
            body = body.encode("utf-8")
        # Clamp misconfigured negative retry counts to "no retries"
        # rather than silently skipping the request loop entirely.
        retries = max(0, int(config.get("retries", 2)))
        policy = self._policy.with_attempts(retries + 1)
        request = HttpRequest(
            url=url, method=method, headers=headers, body=body
        )
        host = urlsplit(url).netloc or url
        breaker = self.breaker_for(host)
        attempts_used = 0

        def send_once() -> HttpResponse:
            # Transport-level faults (5xx, timeout) raise here so the
            # circuit breaker counts them; 4xx means the host is alive.
            response = self._transport.send(request)
            if response.status >= 500:
                raise TransientConnectorError(
                    f"HTTP {method} {url} failed with status "
                    f"{response.status}"
                )
            return response

        def attempt(number: int) -> FetchResult:
            nonlocal attempts_used
            attempts_used = number
            response = (
                breaker.call(send_once) if breaker else send_once()
            )
            if response.status == 200:
                return FetchResult(
                    payload=response.body,
                    metadata={
                        "status": response.status,
                        "url": url,
                        "headers": response.headers,
                        "attempts": number,
                    },
                )
            if response.status == 404:
                raise ConnectorNotFoundError(
                    f"HTTP {method} {url} failed with status 404: "
                    f"no route or resource at this URL (permanent; "
                    f"not retried)"
                )
            raise ConnectorError(
                f"HTTP {method} {url} failed with status "
                f"{response.status}: permanent client error (4xx; "
                f"not retried)"
            )

        try:
            return policy.call(attempt, clock=self._clock, key=host)
        except TransientConnectorError as exc:
            raise TransientConnectorError(
                f"HTTP {method} {url} failed after {attempts_used} "
                f"attempt(s): {exc}"
            ) from exc


class HttpsConnector(HttpConnector):
    """Alias so flow files can say ``protocol: https``."""

    name = "https"
