"""HTTP/S connector with an in-process simulated transport.

The paper's data objects can "directly talk to the provider APIs"
(Fig. 6: a Stack Exchange GET with custom headers).  Offline, we route
requests through :class:`SimulatedHttpTransport`: a registry of URL
handlers with optional latency and fault injection, so retries, headers,
query parameters, pagination and error handling are all exercised exactly
as they would be against a live endpoint.

Flow-file keys honoured: ``source`` (URL), ``request_type`` (get/post),
``http_headers`` (mapping), ``body`` (POST payload), ``retries``.
"""

from __future__ import annotations

import fnmatch
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping
from urllib.parse import parse_qsl, urlsplit

from repro.connectors.base import Connector, FetchResult
from repro.errors import ConnectorError


@dataclass
class HttpRequest:
    """A request as seen by a simulated endpoint handler."""

    url: str
    method: str = "GET"
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes | None = None

    @property
    def path(self) -> str:
        return urlsplit(self.url).path

    @property
    def query(self) -> dict[str, str]:
        return dict(parse_qsl(urlsplit(self.url).query))


@dataclass
class HttpResponse:
    status: int = 200
    body: bytes = b""
    headers: dict[str, str] = field(default_factory=dict)


Handler = Callable[[HttpRequest], HttpResponse]


class SimulatedHttpTransport:
    """URL-pattern → handler registry standing in for the network.

    ``failure_rate`` injects transient 503s (deterministically, via the
    provided ``seed``) to exercise the connector's retry loop.
    """

    def __init__(self, failure_rate: float = 0.0, seed: int = 0):
        self._handlers: list[tuple[str, Handler]] = []
        self._failure_rate = failure_rate
        self._random = random.Random(seed)
        self.request_log: list[HttpRequest] = []

    def register(self, url_pattern: str, handler: Handler) -> None:
        """Route requests whose URL matches ``url_pattern`` (fnmatch glob)."""
        self._handlers.append((url_pattern, handler))

    def register_static(
        self,
        url_pattern: str,
        body: bytes,
        status: int = 200,
        content_type: str = "application/json",
    ) -> None:
        """Convenience: always answer with a fixed payload."""

        def handler(_request: HttpRequest) -> HttpResponse:
            return HttpResponse(
                status=status,
                body=body,
                headers={"Content-Type": content_type},
            )

        self.register(url_pattern, handler)

    def send(self, request: HttpRequest) -> HttpResponse:
        self.request_log.append(request)
        if self._failure_rate and self._random.random() < self._failure_rate:
            return HttpResponse(status=503, body=b"simulated outage")
        for pattern, handler in self._handlers:
            bare = request.url.split("?", 1)[0]
            if fnmatch.fnmatch(request.url, pattern) or fnmatch.fnmatch(
                bare, pattern
            ):
                return handler(request)
        return HttpResponse(status=404, body=b"no such endpoint")


class HttpConnector(Connector):
    name = "http"

    def __init__(self, transport: SimulatedHttpTransport | None = None):
        self._transport = transport or SimulatedHttpTransport()

    @property
    def transport(self) -> SimulatedHttpTransport:
        return self._transport

    def fetch(self, config: Mapping[str, Any]) -> FetchResult:
        url = config.get("source")
        if not url:
            raise ConnectorError("http connector needs a 'source' URL")
        method = str(config.get("request_type", "get")).upper()
        headers = {
            str(k): str(v)
            for k, v in (config.get("http_headers") or {}).items()
        }
        body = config.get("body")
        if isinstance(body, str):
            body = body.encode("utf-8")
        retries = int(config.get("retries", 2))
        request = HttpRequest(
            url=str(url), method=method, headers=headers, body=body
        )
        last_status = 0
        for _attempt in range(retries + 1):
            response = self._transport.send(request)
            last_status = response.status
            if response.status == 200:
                return FetchResult(
                    payload=response.body,
                    metadata={
                        "status": response.status,
                        "url": str(url),
                        "headers": response.headers,
                    },
                )
            if response.status < 500:
                break  # 4xx will not improve on retry
        raise ConnectorError(
            f"HTTP {method} {url} failed with status {last_status} "
            f"after {retries + 1} attempt(s)"
        )


class HttpsConnector(HttpConnector):
    """Alias so flow files can say ``protocol: https``."""

    name = "https"
