"""JDBC connector backed by SQLite.

The paper supports "JDBC, ad-hoc queries over JDBC" as protocols.  We back
the connector with the standard-library ``sqlite3`` engine — a real SQL
database, so query pushdown, parameter binding and type mapping are all
genuine.  ``source`` names a database (a file path or ``:memory:`` handle
registered on the connector); either ``table`` or ``query`` selects rows.

Unlike byte-oriented connectors this one returns a structured
:class:`~repro.connectors.base.FetchResult` with a table, bypassing the
format layer (there is no serialized payload on a JDBC wire worth
modelling).
"""

from __future__ import annotations

import sqlite3
from typing import Any, Mapping

from repro.connectors.base import Connector, FetchResult
from repro.data import Schema, Table
from repro.errors import ConnectorError, TransientConnectorError
from repro.resilience import Clock, RetryPolicy, SimulatedClock

#: sqlite3 error fragments that a retry can cure (lock contention)
_TRANSIENT_SQL = ("locked", "busy")


def _classify_sql_error(exc: sqlite3.Error, action: str) -> ConnectorError:
    """Map a sqlite3 error onto the platform's retryability taxonomy."""
    message = str(exc).lower()
    if isinstance(exc, sqlite3.OperationalError) and any(
        fragment in message for fragment in _TRANSIENT_SQL
    ):
        return TransientConnectorError(f"JDBC {action} failed: {exc}")
    return ConnectorError(f"JDBC {action} failed: {exc}")


class JdbcConnector(Connector):
    name = "jdbc"

    def __init__(
        self,
        retry_policy: RetryPolicy | None = None,
        clock: Clock | None = None,
    ) -> None:
        self._databases: dict[str, sqlite3.Connection] = {}
        self._policy = retry_policy or RetryPolicy(
            max_attempts=3, base_delay=0.1
        )
        self._clock = clock or SimulatedClock()

    def register_database(
        self, name: str, connection: sqlite3.Connection | None = None
    ) -> sqlite3.Connection:
        """Register (or create in-memory) a named database.

        Returns the connection so callers can load fixture tables.
        """
        if connection is None:
            connection = sqlite3.connect(":memory:")
        self._databases[name] = connection
        return connection

    def fetch(self, config: Mapping[str, Any]) -> FetchResult:
        connection = self._connection(config)
        query = config.get("query")
        if not query:
            table_name = config.get("table")
            if not table_name:
                raise ConnectorError(
                    "jdbc connector needs a 'query' or a 'table'"
                )
            if not str(table_name).replace("_", "").isalnum():
                raise ConnectorError(f"invalid table name {table_name!r}")
            query = f"SELECT * FROM {table_name}"
        params = config.get("params") or []
        policy = self._policy
        if "retries" in config:
            policy = policy.with_attempts(
                max(0, int(config["retries"])) + 1
            )

        def execute(_attempt: int):
            # Lock contention ("database is locked"/"busy") is
            # transient and retried with backoff; everything else
            # (bad SQL, missing table) fails fast.
            try:
                return connection.execute(str(query), list(params))
            except sqlite3.Error as exc:
                raise _classify_sql_error(exc, "query") from exc

        cursor = policy.call(execute, clock=self._clock, key=str(query))
        if cursor.description is None:
            raise ConnectorError("JDBC query returned no result set")
        columns = [d[0] for d in cursor.description]
        rows = cursor.fetchall()
        table = Table.from_rows(Schema.of(*columns), rows)
        return FetchResult(
            table=table,
            metadata={"query": str(query), "rows": table.num_rows},
        )

    def store(self, config: Mapping[str, Any], payload: bytes) -> None:
        raise ConnectorError(
            "jdbc sinks are written via store_table, not raw payloads"
        )

    def store_table(self, config: Mapping[str, Any], table: Table) -> None:
        """Write ``table`` into the configured database table."""
        connection = self._connection(config)
        table_name = config.get("table")
        if not table_name:
            raise ConnectorError("jdbc sink needs a 'table' name")
        if not str(table_name).replace("_", "").isalnum():
            raise ConnectorError(f"invalid table name {table_name!r}")
        names = table.schema.names
        columns_sql = ", ".join(f'"{n}"' for n in names)
        placeholders = ", ".join("?" for _ in names)
        def write(_attempt: int) -> None:
            try:
                connection.execute(
                    f'DROP TABLE IF EXISTS "{table_name}"'
                )
                connection.execute(
                    f'CREATE TABLE "{table_name}" ({columns_sql})'
                )
                connection.executemany(
                    f'INSERT INTO "{table_name}" VALUES ({placeholders})',
                    [
                        tuple(_to_sql(v) for v in row)
                        for row in table.row_tuples()
                    ],
                )
                connection.commit()
            except sqlite3.Error as exc:
                raise _classify_sql_error(exc, "write") from exc

        self._policy.call(write, clock=self._clock, key=str(table_name))

    def _connection(self, config: Mapping[str, Any]) -> sqlite3.Connection:
        source = config.get("source")
        if not source:
            raise ConnectorError("jdbc connector needs a 'source' database")
        source = str(source)
        if source in self._databases:
            return self._databases[source]
        # Fall back to opening a database file on disk.
        try:
            connection = sqlite3.connect(source)
        except sqlite3.Error as exc:
            raise ConnectorError(
                f"cannot open database {source!r}: {exc}"
            ) from exc
        self._databases[source] = connection
        return connection


def _to_sql(value: Any) -> Any:
    if isinstance(value, (list, dict)):
        return str(value)
    return value
