"""Protocol connectors for data objects.

The data section configures how each data object's payload is fetched
(paper §3.2: "File (local, remote), HTTP/S, FTP, JDBC, ad-hoc queries over
JDBC").  Network transports are simulated in-process (see DESIGN.md
substitution table) so every connector code path runs offline.
"""

from repro.connectors.base import Connector, FetchResult
from repro.connectors.registry import (
    ConnectorRegistry,
    default_connector_registry,
)
from repro.connectors.file import FileConnector
from repro.connectors.http import HttpConnector, SimulatedHttpTransport
from repro.connectors.ftp import FtpConnector, SimulatedFtpServer
from repro.connectors.jdbc import JdbcConnector
from repro.connectors.inline import InlineConnector
from repro.connectors.loader import DataObjectLoader

__all__ = [
    "Connector",
    "FetchResult",
    "ConnectorRegistry",
    "default_connector_registry",
    "FileConnector",
    "HttpConnector",
    "SimulatedHttpTransport",
    "FtpConnector",
    "SimulatedFtpServer",
    "JdbcConnector",
    "InlineConnector",
    "DataObjectLoader",
]
