"""Inline (literal) connector.

Small reference tables — the IPL examples' team dimension, lat/long lookup
— can be embedded directly in the flow file under a ``rows:`` key, or
provided programmatically when assembling a dashboard.  This keeps
quickstart examples self-contained.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.connectors.base import Connector, FetchResult
from repro.data import Schema, Table
from repro.errors import ConnectorError


class InlineConnector(Connector):
    name = "inline"

    def fetch(self, config: Mapping[str, Any]) -> FetchResult:
        rows = config.get("rows")
        if rows is None:
            raise ConnectorError("inline connector needs a 'rows' list")
        if not isinstance(rows, list):
            raise ConnectorError("'rows' must be a list of rows")
        schema_names = config.get("schema")
        if schema_names:
            schema = Schema(list(schema_names))
        elif rows and isinstance(rows[0], Mapping):
            schema = Schema(list(rows[0].keys()))
        else:
            raise ConnectorError(
                "inline connector needs a 'schema' when rows are not dicts"
            )
        table = Table.from_rows(schema, rows)
        return FetchResult(table=table, metadata={"rows": table.num_rows})
