"""Connector registry (extension services, paper §4.2)."""

from __future__ import annotations

from repro.connectors.base import Connector
from repro.errors import ConnectorError, ExtensionError


class ConnectorRegistry:
    """Protocol name → :class:`Connector` lookup."""

    def __init__(self) -> None:
        self._connectors: dict[str, Connector] = {}

    def register(self, connector: Connector, replace: bool = False) -> None:
        if not connector.name:
            raise ExtensionError(f"connector {connector!r} has no name")
        key = connector.name.lower()
        if key in self._connectors and not replace:
            raise ExtensionError(
                f"connector {connector.name!r} already registered"
            )
        self._connectors[key] = connector

    def get(self, name: str) -> Connector:
        connector = self._connectors.get(name.lower())
        if connector is None:
            raise ConnectorError(
                f"unknown protocol {name!r}; known: {sorted(self._connectors)}"
            )
        return connector

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and name.lower() in self._connectors

    def names(self) -> list[str]:
        return sorted(self._connectors)


def default_connector_registry() -> ConnectorRegistry:
    """A registry pre-loaded with the built-in connectors.

    Each call builds fresh connector instances (and therefore fresh
    simulated transports/servers), keeping platform instances isolated.
    """
    from repro.connectors.file import FileConnector
    from repro.connectors.ftp import FtpConnector
    from repro.connectors.http import HttpConnector, HttpsConnector
    from repro.connectors.inline import InlineConnector
    from repro.connectors.jdbc import JdbcConnector

    registry = ConnectorRegistry()
    registry.register(FileConnector())
    http = HttpConnector()
    registry.register(http)
    # https shares the http transport so one registration serves both.
    registry.register(HttpsConnector(transport=http.transport))
    registry.register(FtpConnector())
    registry.register(JdbcConnector())
    registry.register(InlineConnector())
    return registry
